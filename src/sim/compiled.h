// Compiled-simulation ABI: the contract between the Simulator and
// AOT-compiled process functions produced by hlsav_codegen.
//
// A compiled process is one C function driving the whole FSMD of that
// process: straight-line native uint64_t arithmetic for every scheduled
// op, direct gotos between blocks, and callbacks into the Simulator for
// the ops that touch shared state (stream handshakes, extern calls,
// assertion machinery) or wall-clock (deadline polls). All mutable
// per-process state lives in buffers the Simulator owns and passes in,
// so a compiled function is reentrant and never blocks: when a stream
// op cannot complete it records its resume position in the state words
// and returns kRetBlocked; the next call re-enters at exactly that op.
//
// The simulator side of the contract lives here (sim must not depend on
// codegen); the generated-code side is a prelude hlsav_codegen emits
// from these same constants, so the numeric surface cannot drift. The
// only hand-synchronized text is the two typedefs below -- bump
// kCompiledAbiVersion whenever anything in this file changes shape, and
// stale cached .so files are rejected by their embedded version symbol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlsav::sim {

/// Bump on any ABI change (state-word layout, callback table, return
/// encoding, exported symbol set). Part of the on-disk cache key and
/// embedded in every generated object.
inline constexpr std::uint32_t kCompiledAbiVersion = 1;

/// Execution engine selection (SimOptions::engine).
enum class SimEngine : std::uint8_t {
  kInterpreter,  // always interpret (the default)
  kCompiled,     // use attached compiled functions; interpret what they decline
  kAuto,         // same as kCompiled when a handle is attached, else interpret
};

// ---- per-process state words (the `st` argument) -----------------------
// All simulator<->compiled communication besides registers and memories
// goes through this fixed array of uint64 slots.
inline constexpr std::uint32_t kStCycle = 0;        // local clock
inline constexpr std::uint32_t kStBlockEntry = 1;   // local clock at block entry
inline constexpr std::uint32_t kStPipeStart = 2;    // pipelined loop start cycle
inline constexpr std::uint32_t kStPipeIter = 3;     // pipelined loop iteration
inline constexpr std::uint32_t kStMaxCycles = 4;    // SimOptions::max_cycles
inline constexpr std::uint32_t kStResumeBlock = 5;  // BlockId to resume in
inline constexpr std::uint32_t kStResumeOp = 6;     // op index to resume at
inline constexpr std::uint32_t kStProgress = 7;     // any op/retire progressed
inline constexpr std::uint32_t kStHalt = 8;         // design halted (finish block, then return)
inline constexpr std::uint32_t kStInPipe = 9;       // resume position is inside a pipelined loop
inline constexpr std::uint32_t kStFlags = 10;       // bit 0: deadline armed
inline constexpr std::uint32_t kStWords = 11;

inline constexpr std::uint64_t kStFlagDeadline = 1;

// ---- callback table (the `cb` argument) --------------------------------
inline constexpr std::uint32_t kCbStreamRead = 0;
inline constexpr std::uint32_t kCbStreamWrite = 1;
inline constexpr std::uint32_t kCbExtern = 2;
inline constexpr std::uint32_t kCbAssert = 3;
inline constexpr std::uint32_t kCbPoll = 4;
inline constexpr std::uint32_t kCbCount = 5;

/// Callback results.
inline constexpr std::uint32_t kCbOk = 0;
inline constexpr std::uint32_t kCbBlocked = 1;  // stream op cannot complete; resume here
inline constexpr std::uint32_t kCbHalt = 2;     // op completed and halted the design

/// Op callback: executes op `op` of block `block` of process `pidx` at
/// local time `at`. Slots kCbStreamRead..kCbAssert. Mirrored verbatim
/// in the generated prelude -- keep in sync with codegen::emit.
using OpCallbackFn = std::uint32_t (*)(void* sim, std::uint32_t pidx, std::uint32_t block,
                                       std::uint32_t op, std::uint64_t at);
/// Deadline poll callback (slot kCbPoll): returns nonzero when the
/// wall-clock watchdog expired (the simulator has already halted).
using PollCallbackFn = std::uint32_t (*)(void* sim);

// ---- compiled process entry point --------------------------------------
/// Runs the process until it finishes, blocks, halts or trips a cycle
/// limit. Returns (tag << 32) | payload.
using CompiledProcFn = std::uint64_t (*)(std::uint64_t* regs, std::uint64_t* st,
                                         std::uint64_t* const* mems, void* sim,
                                         const void* const* cb);

inline constexpr std::uint32_t kRetDone = 0;
inline constexpr std::uint32_t kRetBlocked = 1;  // resume position saved in st
inline constexpr std::uint32_t kRetHalted = 2;
inline constexpr std::uint32_t kRetCycleLimit = 3;
inline constexpr std::uint32_t kRetCycleLimitPipe = 4;  // payload: LoopInfo index

[[nodiscard]] inline std::uint32_t ret_tag(std::uint64_t r) {
  return static_cast<std::uint32_t>(r >> 32);
}
[[nodiscard]] inline std::uint32_t ret_payload(std::uint64_t r) {
  return static_cast<std::uint32_t>(r);
}

// ---- what the simulator consumes ---------------------------------------
/// One compiled application process, matched to the design by name.
struct CompiledProc {
  std::string process;
  CompiledProcFn fn = nullptr;
};

/// The compiled design as the Simulator sees it: a borrowed view into a
/// loaded shared object. codegen::CompiledDesign owns the dlopen handle
/// and must outlive every Simulator its handle is attached to.
struct CompiledDesignHandle {
  /// Compiled processes (a subset of the application processes when
  /// codegen declined some). Matched by name; unmatched processes
  /// interpret as usual.
  std::vector<CompiledProc> procs;
  /// Content-address of the generated source (cache key component);
  /// informational.
  std::string key;
};

}  // namespace hlsav::sim
