#include "sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>

#include "assertions/coverage.h"
#include "support/table.h"
#include "trace/binary.h"
#include "trace/replay.h"
#include "trace/vcd.h"

namespace hlsav::sim {

const char* fault_outcome_name(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kBenign: return "benign";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kSilentCorruption: return "silent-corruption";
    case FaultOutcome::kHangDetected: return "hang-detected";
    case FaultOutcome::kHangTimeout: return "hang-timeout";
  }
  HLSAV_UNREACHABLE("bad FaultOutcome");
}

namespace {

/// CPU-visible data outputs in stream-id order (the comparison basis
/// for silent-corruption classification).
std::vector<std::pair<std::string, std::vector<std::uint64_t>>> collect_outputs(
    const ir::Design& design, const Simulator& sim) {
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> out;
  for (ir::StreamId id : design.live_stream_ids()) {
    const ir::Stream& s = design.stream(id);
    if (s.consumer.kind != ir::StreamEndpoint::Kind::kCpu) continue;
    if (s.role != ir::StreamRole::kData) continue;
    out.emplace_back(s.name, sim.received(s.name));
  }
  return out;
}

}  // namespace

GoldenRef golden_run(const ir::Design& design, const sched::DesignSchedule& schedule,
                     const ExternRegistry& externs,
                     const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                     const SimOptions& base) {
  SimOptions opts = base;
  opts.faults = FaultEngine{};
  Simulator sim(design, schedule, externs, opts);
  for (const auto& [name, values] : feeds) sim.feed(name, values);
  RunResult r = sim.run();
  HLSAV_CHECK(r.completed() && r.failures.empty(),
              "campaign golden run did not complete cleanly on design '" + design.name + "'");
  GoldenRef g;
  g.cycles = r.cycles;
  g.outputs = collect_outputs(design, sim);
  return g;
}

FaultResult run_fault(const ir::Design& design, const sched::DesignSchedule& schedule,
                      const ExternRegistry& externs,
                      const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                      const GoldenRef& golden, const FaultSpec& fault, const SimOptions& base,
                      std::uint64_t max_cycles) {
  SimOptions opts = base;
  opts.mode = SimMode::kHardware;  // faults model circuit behaviour
  opts.max_cycles = max_cycles;
  opts.faults = FaultEngine{};
  opts.faults.add(fault);

  Simulator sim(design, schedule, externs, opts);
  for (const auto& [name, values] : feeds) sim.feed(name, values);
  RunResult r = sim.run();

  FaultResult res;
  res.site = fault;
  res.cycles = r.cycles;
  for (const assertions::Failure& f : r.failures) res.detected_by.push_back(f.assertion_id);
  std::sort(res.detected_by.begin(), res.detected_by.end());
  res.detected_by.erase(std::unique(res.detected_by.begin(), res.detected_by.end()),
                        res.detected_by.end());

  switch (r.status) {
    case RunStatus::kAborted:
      res.outcome = FaultOutcome::kDetected;
      break;
    case RunStatus::kHung:
      res.outcome = r.hang && r.hang->kind == HangKind::kCycleLimit
                        ? FaultOutcome::kHangTimeout
                        : FaultOutcome::kHangDetected;
      break;
    case RunStatus::kCompleted:
      if (!r.failures.empty()) {
        res.outcome = FaultOutcome::kDetected;  // NABORT: reported, kept running
      } else if (collect_outputs(design, sim) == golden.outputs) {
        res.outcome = FaultOutcome::kBenign;
      } else {
        res.outcome = FaultOutcome::kSilentCorruption;
      }
      break;
  }
  return res;
}

CampaignReport run_campaign(const ir::Design& design, const sched::DesignSchedule& schedule,
                            const ExternRegistry& externs,
                            const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                            const CampaignOptions& opt) {
  GoldenRef golden = golden_run(design, schedule, externs, feeds, opt.sim);
  std::uint64_t max_cycles =
      opt.max_cycles != 0 ? opt.max_cycles : std::max<std::uint64_t>(10'000, 16 * golden.cycles);

  std::vector<FaultSpec> sites = enumerate_fault_sites(design, schedule);

  CampaignReport report;
  report.seed = opt.seed;
  report.sites_total = sites.size();
  report.golden_cycles = golden.cycles;

  // Sampling only chooses *which* sites run; the list and the ids are
  // seed-independent, so campaigns stay comparable across seeds.
  std::vector<std::size_t> order(sites.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (opt.max_faults != 0 && opt.max_faults < sites.size()) {
    std::mt19937_64 rng(opt.seed);
    std::shuffle(order.begin(), order.end(), rng);
    order.resize(opt.max_faults);
    std::sort(order.begin(), order.end());
  }

  unsigned threads = opt.threads != 0 ? opt.threads
                                      : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, std::max<std::size_t>(
                                                                     order.size(), 1)));
  report.threads = threads;

  if (threads <= 1) {
    report.results.reserve(order.size());
    for (std::size_t idx : order) {
      report.results.push_back(
          run_fault(design, schedule, externs, feeds, golden, sites[idx], opt.sim, max_cycles));
    }
    return report;
  }

  // Parallel sweep: every worker owns its Simulators (one fresh instance
  // per fault run); the shared design/schedule/externs/feeds/golden are
  // read-only. Results land in preallocated site-order slots, so the
  // report is byte-identical to the serial loop's.
  report.results.assign(order.size(), FaultResult{});
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= order.size()) return;
      try {
        report.results[i] =
            run_fault(design, schedule, externs, feeds, golden, sites[order[i]], opt.sim,
                      max_cycles);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return report;
}

std::size_t CampaignReport::count(FaultOutcome o) const {
  std::size_t n = 0;
  for (const FaultResult& r : results) {
    if (r.outcome == o) ++n;
  }
  return n;
}

double CampaignReport::detection_rate() const {
  std::size_t effectual = results.size() - count(FaultOutcome::kBenign);
  if (effectual == 0) return 0.0;
  return static_cast<double>(count(FaultOutcome::kDetected)) /
         static_cast<double>(effectual);
}

std::string CampaignReport::render(const ir::Design& design) const {
  std::ostringstream os;

  TextTable t("Fault-injection campaign: " + design.name + " (" + std::to_string(results.size()) +
              "/" + std::to_string(sites_total) + " sites, seed " + std::to_string(seed) + ")");
  t.header({"site", "fault", "outcome", "detected by", "cycles"});
  for (const FaultResult& r : results) {
    std::string by;
    for (std::uint32_t id : r.detected_by) {
      if (!by.empty()) by += ' ';
      by += '#';
      by += std::to_string(id);
    }
    std::string site = "s";
    site += std::to_string(r.site.id);
    t.row({site, r.site.describe(design), fault_outcome_name(r.outcome), by,
           std::to_string(r.cycles)});
  }
  os << t.render();

  os << "summary: benign " << count(FaultOutcome::kBenign) << ", detected "
     << count(FaultOutcome::kDetected) << ", silent-corruption "
     << count(FaultOutcome::kSilentCorruption) << ", hang-detected "
     << count(FaultOutcome::kHangDetected) << ", hang-timeout "
     << count(FaultOutcome::kHangTimeout) << " (golden run: " << golden_cycles << " cycles)\n";
  os << "assertion detection rate over effectual faults: "
     << fmt_double(100.0 * detection_rate(), 1) << "%\n";

  assertions::CoverageTable coverage(design);
  for (const FaultResult& r : results) {
    if (r.outcome == FaultOutcome::kBenign) continue;
    coverage.record_fault(fault_kind_name(r.site.kind),
                          r.outcome == FaultOutcome::kDetected);
    for (std::uint32_t id : r.detected_by) {
      coverage.record_detection(id, fault_kind_name(r.site.kind));
    }
  }
  os << coverage.render();
  return os.str();
}

std::vector<TraceArtifact> trace_nonbenign_sites(
    const ir::Design& design, const sched::DesignSchedule& schedule,
    const ExternRegistry& externs,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const CampaignReport& report, const CampaignOptions& opt,
    const TraceRerunOptions& trace_opt) {
  std::vector<TraceArtifact> out;
  GoldenRef golden = golden_run(design, schedule, externs, feeds, opt.sim);
  std::uint64_t max_cycles =
      opt.max_cycles != 0 ? opt.max_cycles : std::max<std::uint64_t>(10'000, 16 * golden.cycles);
  std::filesystem::create_directories(trace_opt.dir);

  for (const FaultResult& r : report.results) {
    if (r.outcome == FaultOutcome::kBenign) continue;
    if (trace_opt.max_sites != 0 && out.size() >= trace_opt.max_sites) break;

    // Same deterministic run as the sweep, this time with capture armed
    // (the engine only observes; outcomes cannot shift).
    trace::TraceEngine engine(design, trace_opt.config);
    SimOptions opts = opt.sim;
    opts.mode = SimMode::kHardware;
    opts.max_cycles = max_cycles;
    opts.faults = FaultEngine{};
    opts.faults.add(r.site);
    opts.ela = &engine;
    Simulator sim(design, schedule, externs, opts);
    for (const auto& [name, values] : feeds) sim.feed(name, values);
    RunResult rr = sim.run();
    std::vector<trace::TraceRecord> window = engine.window();

    TraceArtifact art;
    art.site = r.site;
    art.outcome = r.outcome;
    std::string base = (std::filesystem::path(trace_opt.dir) /
                        (trace_opt.stem + "_s" + std::to_string(r.site.id)))
                           .string();
    art.vcd_path = base + ".vcd";
    trace::VcdWriter writer(design, trace_opt.config.filter);
    writer.write_file(art.vcd_path, window);
    if (trace_opt.write_binary) {
      art.bin_path = base + ".bin";
      trace::write_binary_trace_file(art.bin_path, window);
    }

    std::ostringstream os;
    os << "site s" << r.site.id << " (" << r.site.describe(design)
       << "): " << fault_outcome_name(r.outcome) << "\n";
    trace::ReplayOptions ro;
    ro.last_cycles = trace_opt.last_cycles;
    ro.sm = trace_opt.sm;
    os << trace::render_replay(design, window, ro);
    if (r.outcome == FaultOutcome::kSilentCorruption) {
      auto outputs = collect_outputs(design, sim);
      for (std::size_t i = 0; i < outputs.size() && i < golden.outputs.size(); ++i) {
        if (outputs[i] != golden.outputs[i]) {
          os << "first divergent output stream: '" << outputs[i].first << "' ("
             << outputs[i].second.size() << " words vs golden "
             << golden.outputs[i].second.size() << ")\n";
          break;
        }
      }
    }
    if (rr.status == RunStatus::kHung) os << rr.hang_report;
    art.replay = os.str();
    out.push_back(std::move(art));
  }
  return out;
}

}  // namespace hlsav::sim
