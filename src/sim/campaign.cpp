#include "sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <thread>

#include "assertions/coverage.h"
#include "sim/journal.h"
#include "support/table.h"
#include "trace/binary.h"
#include "trace/replay.h"
#include "trace/vcd.h"

namespace hlsav::sim {

const char* fault_outcome_name(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kBenign: return "benign";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kSilentCorruption: return "silent-corruption";
    case FaultOutcome::kHangDetected: return "hang-detected";
    case FaultOutcome::kHangTimeout: return "hang-timeout";
    case FaultOutcome::kBudgetExceeded: return "budget-exceeded";
    case FaultOutcome::kWorkerCrashed: return "worker-crashed";
  }
  HLSAV_UNREACHABLE("bad FaultOutcome");
}

std::string format_campaign_heartbeat(std::size_t done, std::size_t total, double elapsed_s,
                                      const std::size_t tally[kNumFaultOutcomes]) {
  double rate = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0.0;
  double eta = rate > 0 ? static_cast<double>(total - done) / rate : 0.0;
  std::ostringstream os;
  os << "campaign: " << done << "/" << total << " sites, " << fmt_double(rate, 1)
     << " sites/s, ETA ";
  if (rate > 0 && std::isfinite(eta)) {
    os << fmt_double(eta, 0) << "s";
  } else {
    os << "--:--";  // no rate yet: an unknown ETA, never inf/garbage
  }
  os << "; benign " << tally[static_cast<std::size_t>(FaultOutcome::kBenign)]
     << ", detected " << tally[static_cast<std::size_t>(FaultOutcome::kDetected)]
     << ", silent " << tally[static_cast<std::size_t>(FaultOutcome::kSilentCorruption)]
     << ", hang "
     << tally[static_cast<std::size_t>(FaultOutcome::kHangDetected)] +
            tally[static_cast<std::size_t>(FaultOutcome::kHangTimeout)]
     << ", budget " << tally[static_cast<std::size_t>(FaultOutcome::kBudgetExceeded)];
  return os.str();
}

namespace {

/// CPU-visible data outputs in stream-id order (the comparison basis
/// for silent-corruption classification).
std::vector<std::pair<std::string, std::vector<std::uint64_t>>> collect_outputs(
    const ir::Design& design, const Simulator& sim) {
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> out;
  for (ir::StreamId id : design.live_stream_ids()) {
    const ir::Stream& s = design.stream(id);
    if (s.consumer.kind != ir::StreamEndpoint::Kind::kCpu) continue;
    if (s.role != ir::StreamRole::kData) continue;
    out.emplace_back(s.name, sim.received(s.name));
  }
  return out;
}

/// Campaign runs keep only the attribution totals: timelines would cost
/// memory per site and nobody loads a thousand traces.
metrics::ProfileConfig campaign_profile_config() {
  metrics::ProfileConfig pc;
  pc.timeline = false;
  return pc;
}

/// Transient-failure shield around run_fault: a thrown error (resource
/// exhaustion in a worker, a failed allocation under memory pressure)
/// gets bounded retries with exponential backoff before it is allowed
/// to kill the sweep. Deterministic failures simply fail again and
/// propagate after the last attempt -- a retry never changes what a
/// site *is*, only whether a flaky host got a second chance.
FaultResult run_fault_with_retry(const ir::Design& design, const sched::DesignSchedule& schedule,
                                 const ExternRegistry& externs,
                                 const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                                 const GoldenRef& golden, const FaultSpec& fault,
                                 const SimOptions& base, std::uint64_t max_cycles,
                                 metrics::ProfileSummary* profile_out,
                                 const CampaignOptions& opt) {
  for (unsigned attempt = 0;; ++attempt) {
    try {
      return run_fault(design, schedule, externs, feeds, golden, fault, base, max_cycles,
                       profile_out, opt.site_wall_ms);
    } catch (...) {
      if (attempt >= opt.site_retries) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(1u << attempt));
    }
  }
}

/// Shared heartbeat state for the serial and parallel sweeps. Emission
/// is mutex-serialized; tallies update under the same lock, so a line
/// never reports a torn classification count.
class Heartbeat {
 public:
  Heartbeat(const CampaignOptions& opt, std::size_t total)
      : opt_(opt), total_(total), start_(std::chrono::steady_clock::now()),
        last_emit_(start_) {}

  void site_done(FaultOutcome o) {
    if (!opt_.progress) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    ++tally_[static_cast<std::size_t>(o)];
    auto now = std::chrono::steady_clock::now();
    double since_last = std::chrono::duration<double>(now - last_emit_).count();
    if (opt_.progress_interval_s > 0 && since_last < opt_.progress_interval_s &&
        done_ != total_) {
      return;
    }
    last_emit_ = now;
    emit(now);
  }

 private:
  void emit(std::chrono::steady_clock::time_point now) {
    double elapsed = std::chrono::duration<double>(now - start_).count();
    std::string line = format_campaign_heartbeat(done_, total_, elapsed, tally_);
    if (opt_.progress_sink) {
      opt_.progress_sink(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  const CampaignOptions& opt_;
  std::size_t total_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_emit_;
  std::mutex mu_;
  std::size_t done_ = 0;
  std::size_t tally_[kNumFaultOutcomes] = {};
};

}  // namespace

GoldenRef golden_run(const ir::Design& design, const sched::DesignSchedule& schedule,
                     const ExternRegistry& externs,
                     const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                     const SimOptions& base, metrics::ProfileSummary* profile_out) {
  SimOptions opts = base;
  opts.faults = FaultEngine{};
  std::optional<metrics::Profiler> prof;
  if (profile_out != nullptr) {
    prof.emplace(design, schedule, campaign_profile_config());
    opts.profile = &*prof;
  }
  Simulator sim(design, schedule, externs, opts);
  for (const auto& [name, values] : feeds) sim.feed(name, values);
  RunResult r = sim.run();
  if (profile_out != nullptr) *profile_out = prof->summary();
  const char* why = r.status == RunStatus::kHung       ? "hung (are all --feed inputs supplied?)"
                    : r.status == RunStatus::kAborted  ? "aborted on an assertion failure"
                    : r.status == RunStatus::kDeadline ? "exceeded its wall-clock budget"
                                                       : "logged assertion failures";
  HLSAV_CHECK(r.completed() && r.failures.empty(),
              "campaign golden run " + std::string(why) + " on design '" + design.name +
                  "' — the fault-free run must complete cleanly before a sweep can classify sites");
  GoldenRef g;
  g.cycles = r.cycles;
  g.outputs = collect_outputs(design, sim);
  return g;
}

FaultResult run_fault(const ir::Design& design, const sched::DesignSchedule& schedule,
                      const ExternRegistry& externs,
                      const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                      const GoldenRef& golden, const FaultSpec& fault, const SimOptions& base,
                      std::uint64_t max_cycles, metrics::ProfileSummary* profile_out,
                      double site_wall_ms) {
  SimOptions opts = base;
  opts.mode = SimMode::kHardware;  // faults model circuit behaviour
  opts.max_cycles = max_cycles;
  opts.faults = FaultEngine{};
  opts.faults.add(fault);
  // The watchdog budget starts at simulator construction, not campaign
  // start: every site gets its own clock.
  std::optional<Deadline> deadline;
  if (site_wall_ms > 0.0) {
    deadline = Deadline::in_ms(site_wall_ms);
    opts.deadline = &*deadline;
  }
  // Each call owns its Profiler, so parallel workers never share one.
  std::optional<metrics::Profiler> prof;
  if (profile_out != nullptr) {
    prof.emplace(design, schedule, campaign_profile_config());
    opts.profile = &*prof;
  }

  Simulator sim(design, schedule, externs, opts);
  for (const auto& [name, values] : feeds) sim.feed(name, values);
  RunResult r = sim.run();

  FaultResult res;
  res.site = fault;
  res.cycles = r.cycles;
  if (profile_out != nullptr) {
    *profile_out = prof->summary();
    res.profile = *profile_out;
  }
  for (const assertions::Failure& f : r.failures) res.detected_by.push_back(f.assertion_id);
  std::sort(res.detected_by.begin(), res.detected_by.end());
  res.detected_by.erase(std::unique(res.detected_by.begin(), res.detected_by.end()),
                        res.detected_by.end());

  switch (r.status) {
    case RunStatus::kAborted:
      res.outcome = FaultOutcome::kDetected;
      break;
    case RunStatus::kDeadline:
      res.outcome = FaultOutcome::kBudgetExceeded;
      break;
    case RunStatus::kHung:
      res.outcome = r.hang && r.hang->kind == HangKind::kCycleLimit
                        ? FaultOutcome::kHangTimeout
                        : FaultOutcome::kHangDetected;
      break;
    case RunStatus::kCompleted:
      if (!r.failures.empty()) {
        res.outcome = FaultOutcome::kDetected;  // NABORT: reported, kept running
      } else if (collect_outputs(design, sim) == golden.outputs) {
        res.outcome = FaultOutcome::kBenign;
      } else {
        res.outcome = FaultOutcome::kSilentCorruption;
      }
      break;
  }
  return res;
}

StatusOr<CampaignReport> run_campaign_st(
    const ir::Design& design, const sched::DesignSchedule& schedule,
    const ExternRegistry& externs,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const CampaignOptions& opt) {
  metrics::ProfileSummary golden_profile;
  GoldenRef golden;
  try {
    golden = golden_run(design, schedule, externs, feeds, opt.sim,
                        opt.profile ? &golden_profile : nullptr);
  } catch (const InternalError& e) {
    return Status::error(StatusCode::kSimError, e.what());
  }
  std::uint64_t max_cycles =
      opt.max_cycles != 0 ? opt.max_cycles : std::max<std::uint64_t>(10'000, 16 * golden.cycles);

  std::vector<FaultSpec> sites = enumerate_fault_sites(design, schedule);

  CampaignReport report;
  report.seed = opt.seed;
  report.sites_total = sites.size();
  report.golden_cycles = golden.cycles;
  if (opt.profile) report.golden_profile = golden_profile;

  // Sampling only chooses *which* sites run; the list and the ids are
  // seed-independent, so campaigns stay comparable across seeds.
  std::vector<std::size_t> order(sites.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (opt.max_faults != 0 && opt.max_faults < sites.size()) {
    std::mt19937_64 rng(opt.seed);
    std::shuffle(order.begin(), order.end(), rng);
    order.resize(opt.max_faults);
    std::sort(order.begin(), order.end());
  }

  // A shard (worker entrypoint) runs only its assigned subset of the
  // sampled selection; the journal header below still describes the
  // whole campaign, so every shard shares one resume fingerprint.
  if (!opt.only_sites.empty()) {
    std::vector<std::uint32_t> wanted = opt.only_sites;
    std::sort(wanted.begin(), wanted.end());
    std::vector<std::size_t> filtered;
    for (std::size_t idx : order) {
      if (std::binary_search(wanted.begin(), wanted.end(), sites[idx].id)) {
        filtered.push_back(idx);
      }
    }
    if (filtered.size() != wanted.size()) {
      return Status::invalid_argument(
          "only_sites names " + std::to_string(wanted.size()) + " site(s) but only " +
          std::to_string(filtered.size()) + " are in this campaign's sampled selection");
    }
    order = std::move(filtered);
  }

  unsigned threads = opt.threads != 0 ? opt.threads
                                      : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, std::max<std::size_t>(
                                                                     order.size(), 1)));
  report.threads = threads;

  // ---- crash-recovery journal (sim/journal.h). With --resume, sites
  // ---- the journal already classified are restored into their
  // ---- site-order slots and never re-run; the report still renders
  // ---- byte-identically to an uninterrupted campaign because slots,
  // ---- not completion order, define the output.
  std::unique_ptr<CampaignJournal> journal;
  report.results.assign(order.size(), FaultResult{});
  std::vector<char> done(order.size(), 0);  // restored or freshly classified
  if (!opt.journal.empty()) {
    JournalHeader hdr;
    hdr.design = design.name;
    hdr.seed = opt.seed;
    hdr.sites_total = sites.size();
    hdr.max_faults = opt.max_faults;
    hdr.max_cycles = max_cycles;
    hdr.golden_cycles = golden.cycles;
    hdr.site_wall_ms = opt.site_wall_ms;
    hdr.profile = opt.profile;

    bool reopen = false;
    std::uint64_t valid_bytes = 0;
    if (opt.resume) {
      StatusOr<JournalContents> loaded = load_journal(opt.journal);
      // An unreadable or foreign journal is not this campaign's log:
      // start fresh rather than mix outcomes from a different sweep.
      if (loaded.ok() && loaded->header.fingerprint() == hdr.fingerprint()) {
        reopen = true;
        valid_bytes = loaded->valid_bytes;
        for (std::size_t i = 0; i < order.size(); ++i) {
          auto it = loaded->results.find(sites[order[i]].id);
          if (it == loaded->results.end()) continue;
          report.results[i] = it->second;
          report.results[i].site = sites[order[i]];  // reattach the full spec
          done[i] = 1;
        }
      }
    }
    StatusOr<std::unique_ptr<CampaignJournal>> j =
        reopen ? CampaignJournal::append_to(opt.journal, valid_bytes)
               : CampaignJournal::create(opt.journal, hdr);
    if (!j.ok()) {
      return Status::error(j.status().code(), "cannot open campaign journal '" + opt.journal +
                                                  "': " + j.status().message());
    }
    journal = std::move(*j);
  }
  std::vector<char> restored = done;

  Heartbeat heartbeat(opt, order.size());
  metrics::ProfileSummary site_profile;
  metrics::ProfileSummary* site_profile_ptr = opt.profile ? &site_profile : nullptr;

  auto cancelled = [&] {
    return opt.cancel != nullptr && opt.cancel->load(std::memory_order_relaxed);
  };
  // Journal durability gates everything downstream of a site run: the
  // sink and heartbeat only see a site once its record can no longer be
  // lost, and a failed write/fsync stops the sweep with the path named.
  auto record = [&](std::size_t i) -> Status {
    if (journal != nullptr) {
      Status st = journal->append(report.results[i]);
      if (!st.ok()) {
        return Status::error(st.code(),
                             "campaign journal append failed: " + st.message());
      }
    }
    done[i] = 1;
    if (opt.site_sink) opt.site_sink(report.results[i]);
    heartbeat.site_done(report.results[i].outcome);
    return Status::ok_status();
  };
  // An interrupted sweep keeps exactly the classified sites, still in
  // site order -- the shape a --resume continuation rebuilds from.
  auto finish = [&]() -> CampaignReport {
    if (report.interrupted) {
      std::vector<FaultResult> kept;
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (done[i] != 0) kept.push_back(std::move(report.results[i]));
      }
      report.results = std::move(kept);
    }
    return std::move(report);
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (cancelled()) {
        report.interrupted = true;
        break;
      }
      if (restored[i] != 0) {
        heartbeat.site_done(report.results[i].outcome);
        continue;
      }
      if (opt.site_start_hook) opt.site_start_hook(sites[order[i]].id);
      try {
        report.results[i] =
            run_fault_with_retry(design, schedule, externs, feeds, golden, sites[order[i]],
                                 opt.sim, max_cycles, site_profile_ptr, opt);
      } catch (const InternalError& e) {
        return Status::internal(e.what());
      } catch (const std::exception& e) {
        return Status::internal(std::string("site run failed: ") + e.what());
      }
      HLSAV_RETURN_IF_ERROR(record(i));
    }
    return finish();
  }

  // Parallel sweep: every worker owns its Simulators (one fresh instance
  // per fault run); the shared design/schedule/externs/feeds/golden are
  // read-only. Results land in preallocated site-order slots, so the
  // report is byte-identical to the serial loop's. Journal appends
  // happen in completion order -- the loader keys by site id, so order
  // on disk is irrelevant.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  Status first_status;
  std::mutex error_mu;
  auto fail_with = [&](Status st) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_status.ok()) first_status = std::move(st);
    failed.store(true, std::memory_order_relaxed);
  };
  auto worker = [&] {
    // Worker-local summary slot; run_fault also copies it into the
    // FaultResult, which is all the report keeps.
    metrics::ProfileSummary local_profile;
    while (!failed.load(std::memory_order_relaxed) && !cancelled()) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= order.size()) return;
      if (restored[i] != 0) {
        heartbeat.site_done(report.results[i].outcome);
        continue;
      }
      if (opt.site_start_hook) opt.site_start_hook(sites[order[i]].id);
      try {
        report.results[i] =
            run_fault_with_retry(design, schedule, externs, feeds, golden, sites[order[i]],
                                 opt.sim, max_cycles,
                                 opt.profile ? &local_profile : nullptr, opt);
      } catch (const InternalError& e) {
        fail_with(Status::internal(e.what()));
        return;
      } catch (const std::exception& e) {
        fail_with(Status::internal(std::string("site run failed: ") + e.what()));
        return;
      }
      Status st = record(i);
      if (!st.ok()) {
        fail_with(std::move(st));
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (!first_status.ok()) return first_status;
  if (cancelled() && next.load(std::memory_order_relaxed) < order.size() + threads) {
    // At least one slot was never dispatched (or was abandoned): the
    // sweep is incomplete. A cancel that lands after the last site
    // finished is indistinguishable from a clean run and stays one.
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (done[i] == 0) {
        report.interrupted = true;
        break;
      }
    }
  }
  return finish();
}

CampaignReport run_campaign(const ir::Design& design, const sched::DesignSchedule& schedule,
                            const ExternRegistry& externs,
                            const std::map<std::string, std::vector<std::uint64_t>>& feeds,
                            const CampaignOptions& opt) {
  StatusOr<CampaignReport> r = run_campaign_st(design, schedule, externs, feeds, opt);
  HLSAV_CHECK(r.ok(), "campaign failed: " + r.status().to_string());
  return *std::move(r);
}

std::size_t CampaignReport::count(FaultOutcome o) const {
  std::size_t n = 0;
  for (const FaultResult& r : results) {
    if (r.outcome == o) ++n;
  }
  return n;
}

double CampaignReport::detection_rate() const {
  std::size_t effectual = results.size() - count(FaultOutcome::kBenign);
  if (effectual == 0) return 0.0;
  return static_cast<double>(count(FaultOutcome::kDetected)) /
         static_cast<double>(effectual);
}

std::string CampaignReport::render(const ir::Design& design) const {
  std::ostringstream os;

  TextTable t("Fault-injection campaign: " + design.name + " (" + std::to_string(results.size()) +
              "/" + std::to_string(sites_total) + " sites, seed " + std::to_string(seed) + ")");
  t.header({"site", "fault", "outcome", "detected by", "cycles"});
  for (const FaultResult& r : results) {
    std::string by;
    for (std::uint32_t id : r.detected_by) {
      if (!by.empty()) by += ' ';
      by += '#';
      by += std::to_string(id);
    }
    std::string site = "s";
    site += std::to_string(r.site.id);
    t.row({site, r.site.describe(design), fault_outcome_name(r.outcome), by,
           std::to_string(r.cycles)});
  }
  os << t.render();

  os << "summary: benign " << count(FaultOutcome::kBenign) << ", detected "
     << count(FaultOutcome::kDetected) << ", silent-corruption "
     << count(FaultOutcome::kSilentCorruption) << ", hang-detected "
     << count(FaultOutcome::kHangDetected) << ", hang-timeout "
     << count(FaultOutcome::kHangTimeout) << ", budget-exceeded "
     << count(FaultOutcome::kBudgetExceeded) << " (golden run: " << golden_cycles
     << " cycles)\n";
  os << "assertion detection rate over effectual faults: "
     << fmt_double(100.0 * detection_rate(), 1) << "%\n";

  assertions::CoverageTable coverage(design);
  for (const FaultResult& r : results) {
    if (r.outcome == FaultOutcome::kBenign) continue;
    coverage.record_fault(fault_kind_name(r.site.kind),
                          r.outcome == FaultOutcome::kDetected);
    for (std::uint32_t id : r.detected_by) {
      coverage.record_detection(id, fault_kind_name(r.site.kind));
    }
  }
  os << coverage.render();

  // Where did the faulted cycles go? Benign sites track the golden run
  // by construction, so only the interesting sites get a delta line.
  if (golden_profile.has_value()) {
    bool any = false;
    for (const FaultResult& r : results) {
      if (r.outcome == FaultOutcome::kBenign || !r.profile.has_value()) continue;
      if (!any) {
        os << "profile deltas vs golden (non-benign sites):\n";
        any = true;
      }
      os << "  s" << r.site.id << " (" << fault_outcome_name(r.outcome)
         << "): " << metrics::render_profile_delta(*golden_profile, *r.profile) << "\n";
    }
  }
  return os.str();
}

std::vector<TraceArtifact> trace_nonbenign_sites(
    const ir::Design& design, const sched::DesignSchedule& schedule,
    const ExternRegistry& externs,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const CampaignReport& report, const CampaignOptions& opt,
    const TraceRerunOptions& trace_opt) {
  std::vector<TraceArtifact> out;
  GoldenRef golden = golden_run(design, schedule, externs, feeds, opt.sim);
  std::uint64_t max_cycles =
      opt.max_cycles != 0 ? opt.max_cycles : std::max<std::uint64_t>(10'000, 16 * golden.cycles);
  std::filesystem::create_directories(trace_opt.dir);

  for (const FaultResult& r : report.results) {
    if (r.outcome == FaultOutcome::kBenign) continue;
    if (trace_opt.max_sites != 0 && out.size() >= trace_opt.max_sites) break;

    // Same deterministic run as the sweep, this time with capture armed
    // (the engine only observes; outcomes cannot shift).
    trace::TraceEngine engine(design, trace_opt.config);
    SimOptions opts = opt.sim;
    opts.mode = SimMode::kHardware;
    opts.max_cycles = max_cycles;
    opts.faults = FaultEngine{};
    opts.faults.add(r.site);
    opts.ela = &engine;
    Simulator sim(design, schedule, externs, opts);
    for (const auto& [name, values] : feeds) sim.feed(name, values);
    RunResult rr = sim.run();
    std::vector<trace::TraceRecord> window = engine.window();

    TraceArtifact art;
    art.site = r.site;
    art.outcome = r.outcome;
    std::string base = (std::filesystem::path(trace_opt.dir) /
                        (trace_opt.stem + "_s" + std::to_string(r.site.id)))
                           .string();
    art.vcd_path = base + ".vcd";
    trace::VcdWriter writer(design, trace_opt.config.filter);
    writer.write_file(art.vcd_path, window);
    if (trace_opt.write_binary) {
      art.bin_path = base + ".bin";
      trace::write_binary_trace_file(art.bin_path, window);
    }

    std::ostringstream os;
    os << "site s" << r.site.id << " (" << r.site.describe(design)
       << "): " << fault_outcome_name(r.outcome) << "\n";
    trace::ReplayOptions ro;
    ro.last_cycles = trace_opt.last_cycles;
    ro.sm = trace_opt.sm;
    os << trace::render_replay(design, window, ro);
    if (r.outcome == FaultOutcome::kSilentCorruption) {
      auto outputs = collect_outputs(design, sim);
      for (std::size_t i = 0; i < outputs.size() && i < golden.outputs.size(); ++i) {
        if (outputs[i] != golden.outputs[i]) {
          os << "first divergent output stream: '" << outputs[i].first << "' ("
             << outputs[i].second.size() << " words vs golden "
             << golden.outputs[i].second.size() << ")\n";
          break;
        }
      }
    }
    if (rr.status == RunStatus::kHung) os << rr.hang_report;
    art.replay = os.str();
    out.push_back(std::move(art));
  }
  return out;
}

}  // namespace hlsav::sim
