// Crash-safe campaign journal.
//
// A fault campaign over a real design can run for hours; a crash, OOM
// kill or pre-empted CI job must not throw the completed sites away.
// The journal is the classic append-only write-ahead log:
//
//  * One JSONL file. The first line is a header describing the campaign
//    (design, seed, sampling, resolved cycle backstop) -- its canonical
//    `fingerprint()` is what --resume matches against, so a journal can
//    never be replayed into a *different* campaign.
//  * One line per classified site, appended and fsync'd the moment the
//    site completes. Workers append in completion order; the aggregate
//    report is rebuilt in site order, so an interrupted-then-resumed
//    campaign renders byte-identically to an uninterrupted one at any
//    thread count.
//  * The header is written via write-temp-then-rename, so a crash
//    during creation leaves either no journal or a valid one -- never a
//    file with half a header.
//  * A kill mid-append leaves at most one torn trailing line. The
//    loader stops at the first unparseable line and reports how many
//    bytes were valid; resume truncates to that point before it starts
//    appending again.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/campaign.h"
#include "support/status.h"

namespace hlsav::sim {

/// Campaign identity, logged as the journal's first line. Two campaigns
/// with equal fingerprints enumerate the same sites with the same
/// backstops, so their per-site outcomes are interchangeable.
struct JournalHeader {
  std::string design;
  std::uint64_t seed = 0;
  std::uint64_t sites_total = 0;
  std::uint64_t max_faults = 0;
  std::uint64_t max_cycles = 0;  // resolved livelock backstop
  std::uint64_t golden_cycles = 0;
  double site_wall_ms = 0.0;
  bool profile = false;

  /// Canonical one-line identity (also the serialized header payload).
  [[nodiscard]] std::string fingerprint() const;
};

/// Everything load_journal() recovers from disk. Restored FaultResults
/// carry only the site *id* in `site` -- the caller re-attaches the
/// full FaultSpec from its own deterministic enumeration.
struct JournalContents {
  JournalHeader header;
  std::map<std::uint32_t, FaultResult> results;
  /// Prefix of the file that parsed cleanly; anything past it is a torn
  /// trailing write and must be truncated before appending resumes.
  std::uint64_t valid_bytes = 0;
  /// Bytes actually on disk. valid_bytes < total_bytes means the file
  /// ends in a torn line (crash mid-append).
  std::uint64_t total_bytes = 0;

  [[nodiscard]] bool torn_tail() const { return valid_bytes < total_bytes; }
};

/// Parses a journal file. kIoError when unreadable; kInvalidArgument
/// when even the header line is unusable.
[[nodiscard]] StatusOr<JournalContents> load_journal(const std::string& path);

/// The append handle. Not movable (owns a mutex and an fd); create()
/// hands back a unique_ptr.
class CampaignJournal {
 public:
  /// Starts a fresh journal at `path`: header written atomically
  /// (temp + rename), then reopened for appending.
  [[nodiscard]] static StatusOr<std::unique_ptr<CampaignJournal>> create(
      std::string path, const JournalHeader& header);

  /// Reopens an existing journal for appending, truncating to
  /// `valid_bytes` first (drops a torn trailing line, keeps everything
  /// that was durably recorded).
  [[nodiscard]] static StatusOr<std::unique_ptr<CampaignJournal>> append_to(
      std::string path, std::uint64_t valid_bytes);

  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Appends one classified site and fsyncs. Thread-safe: parallel
  /// workers call this directly in completion order.
  [[nodiscard]] Status append(const FaultResult& r);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  CampaignJournal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
};

/// Serialized JSONL form of one site outcome (exposed for tests).
[[nodiscard]] std::string journal_line(const FaultResult& r);

// ------------------------------------------------------- fault injection --

/// Injectable low-level IO used by CampaignJournal::append. Tests swap
/// these to simulate ENOSPC/EIO on a healthy filesystem; production
/// never touches them.
struct JournalIoHooks {
  ssize_t (*write_fn)(int fd, const void* buf, std::size_t count);
  int (*fsync_fn)(int fd);
};

/// Installs `hooks` for every subsequent append (nullptr restores the
/// real syscalls). Test-only; not thread-safe against in-flight appends.
void set_journal_io_hooks_for_test(const JournalIoHooks* hooks);

// ----------------------------------------------------------- shard merge --

/// What merge_journal_shards() recovers from a set of worker shard
/// journals. Same contract as JournalContents: restored results carry
/// only the site id, and the caller re-attaches FaultSpecs.
struct ShardMergeResult {
  JournalHeader header;
  std::map<std::uint32_t, FaultResult> results;
  std::size_t shards_loaded = 0;
  /// Shards whose files ended in a torn line (crashed workers).
  std::size_t torn_shards = 0;
};

/// Merges K worker shard journals into one result map. Every shard must
/// carry the same header fingerprint (kInvalidArgument otherwise --
/// shards of different campaigns can never be mixed); an unreadable
/// shard is kIoError. A site id appearing in several shards is fine iff
/// every copy serializes to identical bytes (a worker died after the
/// append landed but before the supervisor saw it, then the site was
/// reassigned); disagreeing duplicates are an error, because they mean
/// the determinism contract broke.
///
/// Two degenerate inputs are typed errors, never an empty-merge
/// success: an empty `paths` list (kInvalidArgument -- the caller lost
/// track of its shards), and a merge where *every* shard ends in a torn
/// tail and not a single classified site survived (kIoError -- all
/// workers crashed mid-append and reporting "0 sites, ok" would
/// silently discard the campaign). Header-only shards without torn
/// tails still merge to an ok empty result: a drained-before-first-site
/// campaign is a real, resumable state.
[[nodiscard]] StatusOr<ShardMergeResult> merge_journal_shards(
    const std::vector<std::string>& paths);

}  // namespace hlsav::sim
