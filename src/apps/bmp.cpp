#include "apps/bmp.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "support/str.h"

namespace hlsav::apps::img {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& b, std::size_t off) {
  if (off + 4 > b.size()) return 0;
  return static_cast<std::uint32_t>(b[off]) | (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> encode_bmp(const Image& img) {
  const unsigned row_stride = (img.width + 3) & ~3u;  // rows pad to 4 bytes
  const std::uint32_t palette_bytes = 256 * 4;
  const std::uint32_t data_offset = 14 + 40 + palette_bytes;
  const std::uint32_t data_bytes = row_stride * img.height;

  std::vector<std::uint8_t> out;
  out.reserve(data_offset + data_bytes);
  // BITMAPFILEHEADER.
  out.push_back('B');
  out.push_back('M');
  put_u32(out, data_offset + data_bytes);
  put_u32(out, 0);
  put_u32(out, data_offset);
  // BITMAPINFOHEADER.
  put_u32(out, 40);
  put_u32(out, img.width);
  put_u32(out, img.height);
  put_u16(out, 1);   // planes
  put_u16(out, 8);   // bpp
  put_u32(out, 0);   // no compression
  put_u32(out, data_bytes);
  put_u32(out, 2835);
  put_u32(out, 2835);
  put_u32(out, 256);
  put_u32(out, 0);
  // Grayscale palette.
  for (unsigned i = 0; i < 256; ++i) {
    out.push_back(static_cast<std::uint8_t>(i));
    out.push_back(static_cast<std::uint8_t>(i));
    out.push_back(static_cast<std::uint8_t>(i));
    out.push_back(0);
  }
  // Pixel rows, bottom-up.
  for (unsigned y = 0; y < img.height; ++y) {
    unsigned src_y = img.height - 1 - y;
    for (unsigned x = 0; x < img.width; ++x) {
      out.push_back(static_cast<std::uint8_t>(std::min<std::uint16_t>(img.at(x, src_y), 255)));
    }
    for (unsigned x = img.width; x < row_stride; ++x) out.push_back(0);
  }
  return out;
}

Image decode_bmp(const std::vector<std::uint8_t>& b) {
  Image img;
  if (b.size() < 54 || b[0] != 'B' || b[1] != 'M') return img;
  std::uint32_t data_offset = get_u32(b, 10);
  std::uint32_t width = get_u32(b, 18);
  std::uint32_t height = get_u32(b, 22);
  if (width == 0 || height == 0 || width > 1u << 15 || height > 1u << 15) return img;
  std::uint16_t bpp = static_cast<std::uint16_t>(b[28] | (b[29] << 8));
  if (bpp != 8) return img;
  const unsigned row_stride = (width + 3) & ~3u;
  if (data_offset + static_cast<std::uint64_t>(row_stride) * height > b.size()) return img;

  img.width = width;
  img.height = height;
  img.pixels.assign(static_cast<std::size_t>(width) * height, 0);
  for (unsigned y = 0; y < height; ++y) {
    unsigned dst_y = height - 1 - y;
    for (unsigned x = 0; x < width; ++x) {
      img.set(x, dst_y, b[data_offset + static_cast<std::size_t>(y) * row_stride + x]);
    }
  }
  return img;
}

bool write_bmp_file(const std::string& path, const Image& image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  std::vector<std::uint8_t> bytes = encode_bmp(image);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

Image read_bmp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode_bmp(bytes);
}

Image synthetic_image(unsigned width, unsigned height, std::uint64_t seed) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.assign(static_cast<std::size_t>(width) * height, 0);
  SplitMix64 rng(seed);
  // Flat background with rectangles and a diagonal bar: crisp edges for
  // the detector, deterministic content for the tests.
  std::uint16_t bg = static_cast<std::uint16_t>(40 + rng.next_below(40));
  for (auto& p : img.pixels) p = bg;
  for (int rect = 0; rect < 4; ++rect) {
    unsigned x0 = static_cast<unsigned>(rng.next_below(width));
    unsigned y0 = static_cast<unsigned>(rng.next_below(height));
    unsigned w = 4 + static_cast<unsigned>(rng.next_below(width / 2 + 1));
    unsigned h = 4 + static_cast<unsigned>(rng.next_below(height / 2 + 1));
    std::uint16_t v = static_cast<std::uint16_t>(100 + rng.next_below(150));
    for (unsigned y = y0; y < std::min(height, y0 + h); ++y) {
      for (unsigned x = x0; x < std::min(width, x0 + w); ++x) img.set(x, y, v);
    }
  }
  for (unsigned d = 0; d < std::min(width, height); ++d) img.set(d, d, 230);
  return img;
}

}  // namespace hlsav::apps::img
