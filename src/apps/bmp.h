// Minimal grayscale BMP reader/writer.
//
// The edge-detection case study (paper §5.2) reads a grayscale bitmap on
// the CPU, streams it to the FPGA and writes the edge image back. This
// is the CPU side: 8-bit-palette BMP (the common grayscale encoding)
// plus an in-memory Image type used by the golden model, the stream
// marshalling, and the synthetic test-image generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlsav::apps::img {

struct Image {
  unsigned width = 0;
  unsigned height = 0;
  std::vector<std::uint16_t> pixels;  // row-major

  [[nodiscard]] std::uint16_t at(unsigned x, unsigned y) const {
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
  void set(unsigned x, unsigned y, std::uint16_t v) {
    pixels[static_cast<std::size_t>(y) * width + x] = v;
  }
  [[nodiscard]] bool valid() const {
    return width > 0 && height > 0 && pixels.size() == static_cast<std::size_t>(width) * height;
  }
};

/// Serializes as an 8-bit grayscale-palette BMP (values clamped to 255).
[[nodiscard]] std::vector<std::uint8_t> encode_bmp(const Image& image);

/// Parses an 8-bit-palette BMP produced by encode_bmp (or compatible).
/// Returns an empty image on malformed input.
[[nodiscard]] Image decode_bmp(const std::vector<std::uint8_t>& bytes);

bool write_bmp_file(const std::string& path, const Image& image);
[[nodiscard]] Image read_bmp_file(const std::string& path);

/// Deterministic synthetic test image (shapes with crisp edges).
[[nodiscard]] Image synthetic_image(unsigned width, unsigned height, std::uint64_t seed = 1);

}  // namespace hlsav::apps::img
