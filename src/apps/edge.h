// Edge-detection case study (paper §5.2, Table 2).
//
// The FPGA kernel processes a fixed-size grayscale image with a 5x5
// window pipeline: four block-RAM line buffers feed a 25-register
// window; the edge response is dx^2 + dy^2 over the window's column/row
// sums. Two in-circuit assertions check that the streamed image's width
// and height match the hardware configuration -- the paper's exact
// scenario.
//
// The golden model is a C++ transcription of the same streaming
// algorithm (including line-buffer warm-up), so hardware runs are
// compared bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/bmp.h"

namespace hlsav::apps::edge {

/// HLS-C source of the kernel configured for width x height.
/// Process "edge": stream_in<16> "in" (width, height, then pixels in
/// raster order), stream_out<16> "out" (edge map, same pixel count).
[[nodiscard]] std::string hlsc_source(unsigned width, unsigned height);

/// Golden model: exactly the streaming algorithm the kernel implements.
[[nodiscard]] img::Image golden_edge(const img::Image& input);

/// Marshals an image into the kernel's input stream (header + pixels).
[[nodiscard]] std::vector<std::uint64_t> to_word_stream(const img::Image& image);

/// Unmarshals the kernel's output stream back into an image.
[[nodiscard]] img::Image from_word_stream(const std::vector<std::uint64_t>& words,
                                          unsigned width, unsigned height);

}  // namespace hlsav::apps::edge
