// Shared front-door for the application case studies: compile HLS-C
// source text through the full pipeline into an ir::Design.
#pragma once

#include <memory>
#include <string>

#include "ir/ir.h"
#include "lang/ast.h"
#include "lang/sema.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace hlsav::apps {

/// A compiled application: owns the source buffers and the lowered
/// design. The design still contains kAssert ops; run
/// assertions::synthesize on a clone per configuration.
struct CompiledApp {
  SourceManager sm;
  DiagnosticEngine diags;
  std::unique_ptr<lang::Program> program;
  lang::SemaResult sema;
  ir::Design design;
};

/// Parses, analyzes and lowers `source`. Throws InternalError with the
/// rendered diagnostics if the source does not compile (application
/// sources are generated, so failure is a bug).
[[nodiscard]] std::unique_ptr<CompiledApp> compile_app(const std::string& design_name,
                                                       const std::string& file_name,
                                                       const std::string& source);

}  // namespace hlsav::apps
