#include "apps/des.h"

#include <sstream>

#include "support/diagnostics.h"

namespace hlsav::apps::des {

namespace {

// FIPS 46-3 tables. Bit positions are 1-based from the MSB, as in the
// standard.
constexpr std::uint8_t kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::uint8_t kFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr std::uint8_t kE[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::uint8_t kP[32] = {16, 7,  20, 21, 29, 12, 28, 17, 1,  15, 23,
                                 26, 5,  18, 31, 10, 2,  8,  24, 14, 32, 27,
                                 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::uint8_t kPc1[56] = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18, 10, 2,  59, 51, 43,
    35, 27, 19, 11, 3,  60, 52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7,  62, 54,
    46, 38, 30, 22, 14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::uint8_t kPc2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                                   23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                                   41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                                   44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::uint8_t kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

/// Extracts bit `pos` (1-based from MSB of a `width`-bit value).
constexpr std::uint64_t bit_from_msb(std::uint64_t v, unsigned pos, unsigned width) {
  return (v >> (width - pos)) & 1;
}

std::uint64_t permute(std::uint64_t v, const std::uint8_t* table, unsigned out_bits,
                      unsigned in_bits) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < out_bits; ++i) {
    out = (out << 1) | bit_from_msb(v, table[i], in_bits);
  }
  return out;
}

std::uint32_t feistel(std::uint32_t r, std::uint64_t k48) {
  std::uint64_t e = permute(r, kE, 48, 32) ^ k48;
  std::uint32_t out = 0;
  for (unsigned s = 0; s < 8; ++s) {
    std::uint32_t chunk = static_cast<std::uint32_t>((e >> (42 - 6 * s)) & 0x3f);
    std::uint32_t row = ((chunk >> 4) & 2) | (chunk & 1);
    std::uint32_t col = (chunk >> 1) & 0xf;
    out = (out << 4) | kSbox[s][row * 16 + col];
  }
  return static_cast<std::uint32_t>(permute(out, kP, 32, 32));
}

constexpr std::uint32_t rotl28(std::uint32_t v, unsigned n) {
  return ((v << n) | (v >> (28 - n))) & 0x0fffffff;
}

}  // namespace

std::array<std::uint64_t, 16> key_schedule(std::uint64_t key) {
  std::uint64_t pc1 = permute(key, kPc1, 56, 64);
  std::uint32_t c = static_cast<std::uint32_t>(pc1 >> 28) & 0x0fffffff;
  std::uint32_t d = static_cast<std::uint32_t>(pc1) & 0x0fffffff;
  std::array<std::uint64_t, 16> out{};
  for (unsigned round = 0; round < 16; ++round) {
    c = rotl28(c, kShifts[round]);
    d = rotl28(d, kShifts[round]);
    std::uint64_t cd = (static_cast<std::uint64_t>(c) << 28) | d;
    out[round] = permute(cd, kPc2, 48, 56);
  }
  return out;
}

std::uint64_t des_block(std::uint64_t block, std::uint64_t key, bool decrypt) {
  std::array<std::uint64_t, 16> ks = key_schedule(key);
  std::uint64_t ip = permute(block, kIp, 64, 64);
  std::uint32_t l = static_cast<std::uint32_t>(ip >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(ip);
  for (unsigned round = 0; round < 16; ++round) {
    std::uint64_t k = ks[decrypt ? 15 - round : round];
    std::uint32_t next_r = l ^ feistel(r, k);
    l = r;
    r = next_r;
  }
  std::uint64_t preout = (static_cast<std::uint64_t>(r) << 32) | l;  // final swap
  return permute(preout, kFp, 64, 64);
}

std::uint64_t triple_des_encrypt(std::uint64_t block, const std::array<std::uint64_t, 3>& keys) {
  std::uint64_t x = des_block(block, keys[0], false);
  x = des_block(x, keys[1], true);
  return des_block(x, keys[2], false);
}

std::uint64_t triple_des_decrypt(std::uint64_t block, const std::array<std::uint64_t, 3>& keys) {
  std::uint64_t x = des_block(block, keys[2], true);
  x = des_block(x, keys[1], false);
  return des_block(x, keys[0], true);
}

std::vector<std::uint64_t> pack_text(const std::string& text) {
  std::vector<std::uint64_t> blocks;
  for (std::size_t i = 0; i < text.size(); i += 8) {
    std::uint64_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      char c = i + j < text.size() ? text[i + j] : ' ';
      b = (b << 8) | static_cast<unsigned char>(c);
    }
    blocks.push_back(b);
  }
  return blocks;
}

std::string unpack_text(const std::vector<std::uint64_t>& blocks) {
  std::string out;
  for (std::uint64_t b : blocks) {
    for (int j = 7; j >= 0; --j) {
      out.push_back(static_cast<char>((b >> (8 * j)) & 0xff));
    }
  }
  return out;
}

std::array<std::uint64_t, 48> decrypt_subkeys(const std::array<std::uint64_t, 3>& keys) {
  // EDE decrypt = D(k3), E(k2), D(k1). Decryption applies the schedule
  // in reverse, so the streamed kernel sees one flat 48-entry ROM.
  std::array<std::uint64_t, 48> out{};
  std::array<std::uint64_t, 16> k3 = key_schedule(keys[2]);
  std::array<std::uint64_t, 16> k2 = key_schedule(keys[1]);
  std::array<std::uint64_t, 16> k1 = key_schedule(keys[0]);
  for (unsigned i = 0; i < 16; ++i) out[i] = k3[15 - i];
  for (unsigned i = 0; i < 16; ++i) out[16 + i] = k2[i];
  for (unsigned i = 0; i < 16; ++i) out[32 + i] = k1[15 - i];
  return out;
}

std::vector<std::uint64_t> to_word_stream(const std::vector<std::uint64_t>& blocks) {
  std::vector<std::uint64_t> words;
  words.push_back(blocks.size());
  for (std::uint64_t b : blocks) {
    words.push_back(b >> 32);
    words.push_back(b & 0xffffffffull);
  }
  return words;
}

namespace {

template <typename T>
void emit_table(std::ostringstream& os, const char* type, const char* name, const T* data,
                unsigned n) {
  os << "  const " << type << " " << name << "[" << n << "] = {";
  for (unsigned i = 0; i < n; ++i) {
    if (i != 0) os << ", ";
    if (i % 12 == 0) os << "\n    ";
    os << static_cast<std::uint64_t>(data[i]);
  }
  os << "};\n";
}

}  // namespace

std::string hlsc_decrypt_source(const std::array<std::uint64_t, 3>& keys) {
  std::array<std::uint64_t, 48> ks = decrypt_subkeys(keys);
  std::uint8_t sbox_flat[512];
  for (unsigned s = 0; s < 8; ++s) {
    for (unsigned i = 0; i < 64; ++i) sbox_flat[s * 64 + i] = kSbox[s][i];
  }

  std::ostringstream os;
  os << "// Triple-DES (EDE) streaming decryptor -- generated HLS-C.\n"
     << "// Input: word count, then hi/lo 32-bit words per 64-bit block.\n"
     << "// Output: decrypted characters, each bound-checked as printable\n"
     << "// ASCII by the two in-circuit assertions of the paper's Table 1\n"
     << "// case study.\n"
     << "void des3(stream_in<32> in, stream_out<8> txt) {\n";
  emit_table(os, "uint8", "ip_t", kIp, 64);
  emit_table(os, "uint8", "fp_t", kFp, 64);
  emit_table(os, "uint8", "e_t", kE, 48);
  emit_table(os, "uint8", "p_t", kP, 32);
  emit_table(os, "uint8", "sbox_t", sbox_flat, 512);
  emit_table(os, "uint64", "ks_t", ks.data(), 48);
  os << R"(
  uint32 nblocks;
  nblocks = stream_read(in);
  for (uint32 blk = 0; blk < nblocks; blk++) {
    uint64 hi;
    uint64 lo;
    hi = stream_read(in);
    lo = stream_read(in);
    uint64 b;
    b = (hi << 32) | lo;

    // Initial permutation.
    uint64 x;
    x = 0;
    for (uint32 j1 = 0; j1 < 64; j1++) {
      x = x | (((b >> (64 - ip_t[j1])) & 1) << (63 - j1));
    }
    uint32 l;
    uint32 r;
    l = x >> 32;
    r = x;

    // Three DES passes (D-E-D), 16 rounds each, flat subkey ROM.
    for (uint32 pass = 0; pass < 3; pass++) {
      for (uint32 rd = 0; rd < 16; rd++) {
        uint64 k;
        k = ks_t[pass * 16 + rd];
        // Expansion E(r) xor k.
        uint64 e;
        e = 0;
        uint64 r64;
        r64 = r;
        for (uint32 j2 = 0; j2 < 48; j2++) {
          e = e | (((r64 >> (32 - e_t[j2])) & 1) << (47 - j2));
        }
        e = e ^ k;
        // S-boxes.
        uint32 fo;
        fo = 0;
        for (uint32 s = 0; s < 8; s++) {
          uint32 chunk;
          chunk = e >> (42 - 6 * s);
          chunk = chunk & 63;
          uint32 row;
          uint32 col;
          row = ((chunk >> 4) & 2) | (chunk & 1);
          col = (chunk >> 1) & 15;
          uint32 sval;
          sval = sbox_t[s * 64 + row * 16 + col];
          fo = fo | (sval << (28 - 4 * s));
        }
        // P permutation.
        uint32 f;
        f = 0;
        uint64 fo64;
        fo64 = fo;
        for (uint32 j3 = 0; j3 < 32; j3++) {
          f = f | (((fo64 >> (32 - p_t[j3])) & 1) << (31 - j3));
        }
        uint32 nr;
        nr = l ^ f;
        l = r;
        r = nr;
      }
      // Between passes the halves swap back (each pass is a full DES
      // with final swap); undo the last round's swap.
      uint32 tmp;
      tmp = l;
      l = r;
      r = tmp;
    }

    // Pre-output (r:l after the final swap) and final permutation.
    uint64 pre;
    uint64 l64;
    l64 = l;
    uint64 r64b;
    r64b = r;
    pre = (l64 << 32) | r64b;
    uint64 pt;
    pt = 0;
    for (uint32 j4 = 0; j4 < 64; j4++) {
      pt = pt | (((pre >> (64 - fp_t[j4])) & 1) << (63 - j4));
    }

    // Emit the eight decrypted characters, bound-checked (Table 1's two
    // assertions: printable ASCII or whitespace).
    for (uint32 cpos = 0; cpos < 8; cpos++) {
      uint8 ch;
      ch = pt >> (56 - 8 * cpos);
      assert(ch >= 9);
      assert(ch <= 126);
      stream_write(txt, ch);
    }
  }
}
)";
  return os.str();
}

}  // namespace hlsav::apps::des
