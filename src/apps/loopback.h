// Streaming-loopback scalability study (paper §5.3, Figs. 4-5).
//
// N chained processes; each stage stores the incoming word into a small
// block RAM, reads it back, asserts it is greater than zero (the paper's
// per-process assertion) and forwards it. Every process therefore adds
// one assertion and -- in the unshared configuration -- one failure
// stream, which is exactly the pessimistic scenario the paper uses to
// measure assertion scalability.
#pragma once

#include <memory>
#include <string>

#include "apps/appbuild.h"

namespace hlsav::apps::loopback {

/// HLS-C source with `stages` chained processes (stage0..stageN-1),
/// each looping over `words` values.
[[nodiscard]] std::string hlsc_source(unsigned stages, unsigned words);

/// Compiles the source and wires the chain: CPU -> stage0 -> ... ->
/// stage{N-1} -> CPU. Input stream: "stage0.a"; output: "stageN-1.b".
[[nodiscard]] std::unique_ptr<CompiledApp> build(unsigned stages, unsigned words);

/// Stream names for feeding/collecting.
[[nodiscard]] std::string input_stream(unsigned stages);
[[nodiscard]] std::string output_stream(unsigned stages);

}  // namespace hlsav::apps::loopback
