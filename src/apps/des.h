// FIPS 46-3 DES / Triple-DES.
//
// Two faces, one source of truth for every table:
//  * a C++ golden model (key schedule, single-block DES, 3DES EDE) used
//    by the tests and as the oracle for the hardware runs, and
//  * a generator that emits the HLS-C source of the paper's first case
//    study (§5.2): a streaming Triple-DES decryptor whose decrypted
//    characters are bound-checked by two ANSI-C assertions.
//
// The HLS-C text inlines the round subkeys (precomputed, in application
// order) and the permutation/S-box tables as const ROMs, so the emitted
// program is self-contained and the frontend compiles it like any other
// source file.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace hlsav::apps::des {

/// 16 round subkeys (48 bits each, in encryption order).
[[nodiscard]] std::array<std::uint64_t, 16> key_schedule(std::uint64_t key);

/// Encrypts/decrypts one 64-bit block with single DES.
[[nodiscard]] std::uint64_t des_block(std::uint64_t block, std::uint64_t key, bool decrypt);

/// Triple-DES EDE: encrypt = E(k1) D(k2) E(k3); decrypt reverses it.
[[nodiscard]] std::uint64_t triple_des_encrypt(std::uint64_t block,
                                               const std::array<std::uint64_t, 3>& keys);
[[nodiscard]] std::uint64_t triple_des_decrypt(std::uint64_t block,
                                               const std::array<std::uint64_t, 3>& keys);

/// Packs text into 64-bit blocks (big-endian chars, space padded).
[[nodiscard]] std::vector<std::uint64_t> pack_text(const std::string& text);
[[nodiscard]] std::string unpack_text(const std::vector<std::uint64_t>& blocks);

/// The 48 subkeys (3 passes x 16 rounds) that the streaming decryptor
/// applies in order for EDE decryption.
[[nodiscard]] std::array<std::uint64_t, 48> decrypt_subkeys(
    const std::array<std::uint64_t, 3>& keys);

/// Emits the Triple-DES decryptor as HLS-C. Process name: "des3".
/// Ports: stream_in<32> "in" (word count, then hi/lo per block),
/// stream_out<8> "txt" (decrypted characters). Contains the two ASCII
/// bound assertions of the paper's Table 1 case study.
[[nodiscard]] std::string hlsc_decrypt_source(const std::array<std::uint64_t, 3>& keys);

/// Splits blocks into the decryptor's input word stream.
[[nodiscard]] std::vector<std::uint64_t> to_word_stream(const std::vector<std::uint64_t>& blocks);

}  // namespace hlsav::apps::des
