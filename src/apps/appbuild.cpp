#include "apps/appbuild.h"

#include "ir/lower.h"
#include "lang/parser.h"

namespace hlsav::apps {

std::unique_ptr<CompiledApp> compile_app(const std::string& design_name,
                                         const std::string& file_name,
                                         const std::string& source) {
  auto app = std::make_unique<CompiledApp>();
  app->diags.attach(&app->sm);
  app->design.name = design_name;
  app->program = lang::parse_source(app->sm, app->diags, file_name, source);
  if (app->diags.has_errors()) {
    internal_error("apps", 0, "generated source failed to parse:\n" + app->diags.render());
  }
  app->sema = lang::analyze(*app->program, app->sm, app->diags);
  if (!app->sema.ok) {
    internal_error("apps", 0, "generated source failed sema:\n" + app->diags.render());
  }
  if (!ir::lower_all_processes(app->design, *app->program, app->sm, app->diags).ok()) {
    internal_error("apps", 0, "generated source failed lowering:\n" + app->diags.render());
  }
  ir::verify(app->design);
  return app;
}

}  // namespace hlsav::apps
