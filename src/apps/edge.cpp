#include "apps/edge.h"

#include <array>
#include <sstream>

#include "support/diagnostics.h"

namespace hlsav::apps::edge {

std::string hlsc_source(unsigned width, unsigned height) {
  HLSAV_CHECK(width >= 5 && height >= 5, "edge kernel needs at least a 5x5 image");
  std::ostringstream os;
  os << "// 5x5 window edge detector -- generated HLS-C, configured for a\n"
     << "// fixed " << width << "x" << height << " image. The two assertions are the\n"
     << "// paper's Table 2 case study: the streamed image size must match\n"
     << "// the hardware configuration.\n"
     << "void edge(stream_in<16> in, stream_out<16> out) {\n";
  for (int i = 0; i < 4; ++i) {
    os << "  uint16 lb" << i << "[" << width << "];\n";
  }
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) os << "  uint16 w" << r << c << ";\n";
  }
  os << "  uint32 width;\n  uint32 height;\n"
     << "  width = stream_read(in);\n  height = stream_read(in);\n"
     << "  assert(width == " << width << ");\n"
     << "  assert(height == " << height << ");\n"
     << "  for (uint32 y = 0; y < " << height << "; y++) {\n"
     << "    #pragma HLS pipeline\n"
     << "    for (uint32 x = 0; x < " << width << "; x++) {\n"
     << "      uint16 px;\n      px = stream_read(in);\n";
  // Read the stored column, then rotate the line buffers.
  for (int i = 0; i < 4; ++i) os << "      uint16 c" << i << ";\n      c" << i << " = lb" << i
                                 << "[x];\n";
  os << "      lb0[x] = c1;\n      lb1[x] = c2;\n      lb2[x] = c3;\n      lb3[x] = px;\n";
  // Shift the 5x5 window left; new right column is (c0..c3, px).
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 4; ++c) {
      os << "      w" << r << c << " = w" << r << c + 1 << ";\n";
    }
    if (r < 4) {
      os << "      w" << r << 4 << " = c" << r << ";\n";
    } else {
      os << "      w" << r << 4 << " = px;\n";
    }
  }
  // Column/row gradient sums (right-left, bottom-top) and the response.
  auto sum_cols = [&os](const char* name, int c_lo, int c_hi) {
    os << "      int32 " << name << ";\n      " << name << " = ";
    bool first = true;
    for (int r = 0; r < 5; ++r) {
      for (int c = c_lo; c <= c_hi; ++c) {
        if (!first) os << " + ";
        os << 'w' << r << c;
        first = false;
      }
    }
    os << ";\n";
  };
  auto sum_rows = [&os](const char* name, int r_lo, int r_hi) {
    os << "      int32 " << name << ";\n      " << name << " = ";
    bool first = true;
    for (int r = r_lo; r <= r_hi; ++r) {
      for (int c = 0; c < 5; ++c) {
        if (!first) os << " + ";
        os << 'w' << r << c;
        first = false;
      }
    }
    os << ";\n";
  };
  sum_cols("xr", 3, 4);
  sum_cols("xl", 0, 1);
  sum_rows("yb", 3, 4);
  sum_rows("yt", 0, 1);
  os << R"(      int32 dx;
      dx = xr - xl;
      int32 dy;
      dy = yb - yt;
      int32 gsq;
      gsq = dx * dx + dy * dy;
      uint16 ev;
      ev = gsq >> 8;
      stream_write(out, ev);
    }
  }
}
)";
  return os.str();
}

img::Image golden_edge(const img::Image& input) {
  HLSAV_CHECK(input.valid(), "golden_edge on invalid image");
  const unsigned width = input.width;
  const unsigned height = input.height;
  img::Image out;
  out.width = width;
  out.height = height;
  out.pixels.assign(static_cast<std::size_t>(width) * height, 0);

  std::array<std::vector<std::uint16_t>, 4> lb;
  for (auto& l : lb) l.assign(width, 0);
  std::uint16_t w[5][5] = {};

  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      std::uint16_t px = input.at(x, y);
      std::uint16_t c[4];
      for (int i = 0; i < 4; ++i) c[i] = lb[static_cast<std::size_t>(i)][x];
      lb[0][x] = c[1];
      lb[1][x] = c[2];
      lb[2][x] = c[3];
      lb[3][x] = px;
      for (int r = 0; r < 5; ++r) {
        for (int cc = 0; cc < 4; ++cc) w[r][cc] = w[r][cc + 1];
      }
      for (int r = 0; r < 4; ++r) w[r][4] = c[r];
      w[4][4] = px;

      std::int32_t xr = 0;
      std::int32_t xl = 0;
      std::int32_t yb = 0;
      std::int32_t yt = 0;
      for (int r = 0; r < 5; ++r) {
        for (int cc = 3; cc <= 4; ++cc) xr += w[r][cc];
        for (int cc = 0; cc <= 1; ++cc) xl += w[r][cc];
      }
      for (int cc = 0; cc < 5; ++cc) {
        for (int r = 3; r <= 4; ++r) yb += w[r][cc];
        for (int r = 0; r <= 1; ++r) yt += w[r][cc];
      }
      std::int32_t dx = xr - xl;
      std::int32_t dy = yb - yt;
      std::int32_t gsq = dx * dx + dy * dy;
      out.set(x, y, static_cast<std::uint16_t>((static_cast<std::uint32_t>(gsq) >> 8) & 0xffff));
    }
  }
  return out;
}

std::vector<std::uint64_t> to_word_stream(const img::Image& image) {
  std::vector<std::uint64_t> words;
  words.reserve(image.pixels.size() + 2);
  words.push_back(image.width);
  words.push_back(image.height);
  for (std::uint16_t p : image.pixels) words.push_back(p);
  return words;
}

img::Image from_word_stream(const std::vector<std::uint64_t>& words, unsigned width,
                            unsigned height) {
  img::Image out;
  out.width = width;
  out.height = height;
  out.pixels.assign(static_cast<std::size_t>(width) * height, 0);
  for (std::size_t i = 0; i < out.pixels.size() && i < words.size(); ++i) {
    out.pixels[i] = static_cast<std::uint16_t>(words[i]);
  }
  return out;
}

}  // namespace hlsav::apps::edge
