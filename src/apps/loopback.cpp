#include "apps/loopback.h"

#include <sstream>

namespace hlsav::apps::loopback {

std::string hlsc_source(unsigned stages, unsigned words) {
  std::ostringstream os;
  os << "// " << stages << "-process streaming loopback -- generated HLS-C.\n"
     << "// Each stage stores and retrieves the value and asserts it is\n"
     << "// positive (one assertion and one potential failure stream per\n"
     << "// process: the paper's Fig. 4/5 scalability stressor).\n";
  for (unsigned k = 0; k < stages; ++k) {
    os << "void stage" << k << "(stream_in<32> a, stream_out<32> b) {\n"
       << "  uint32 buf[16];\n"
       << "  for (uint32 i = 0; i < " << words << "; i++) {\n"
       << "    uint32 v;\n"
       << "    v = stream_read(a);\n"
       << "    buf[i & 15] = v;\n"
       << "    uint32 w;\n"
       << "    w = buf[i & 15];\n"
       << "    assert(w > 0);\n"
       << "    stream_write(b, w);\n"
       << "  }\n"
       << "}\n";
  }
  return os.str();
}

std::unique_ptr<CompiledApp> build(unsigned stages, unsigned words) {
  auto app = compile_app("loopback" + std::to_string(stages), "loopback.c",
                         hlsc_source(stages, words));
  // Chain the stages: stage{k}.b feeds stage{k+1}.a.
  for (unsigned k = 0; k + 1 < stages; ++k) {
    std::string producer = "stage" + std::to_string(k);
    std::string consumer = "stage" + std::to_string(k + 1);
    ir::StreamId link = app->design.find_process(producer)->find_port("b")->stream;
    app->design.connect_consumer(link, consumer, "a");
  }
  ir::verify(app->design);
  return app;
}

std::string input_stream(unsigned stages) {
  (void)stages;
  return "stage0.a";
}

std::string output_stream(unsigned stages) {
  return "stage" + std::to_string(stages - 1) + ".b";
}

}  // namespace hlsav::apps::loopback
