// The whole compile pipeline behind one Status-returning call.
//
// parse -> sema -> IR lowering -> (assertion synthesis) -> IR verify ->
// schedule, with every stage's failure surfaced as a StatusOr instead
// of an exception: user errors arrive as kParseError/kSemaError/
// kLowerError with the diagnostics collected in the caller's engine,
// and internal invariant violations (ir::verify, the scheduler) are
// caught and downgraded to kInternal -- so `hlsavc`, the bench
// harnesses and the mutation fuzzer can compile arbitrary input and
// always get either a Compiled design or a renderable Status, never a
// terminating exception.
#pragma once

#include <memory>
#include <string>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "ir/ir.h"
#include "ir/optimize.h"
#include "lang/ast.h"
#include "lang/sema.h"
#include "sched/schedule.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"
#include "support/status.h"

namespace hlsav::pipeline {

struct CompileOptions {
  assertions::Options assert_opts = assertions::Options::optimized();
  sched::SchedOptions sched_opts;
  /// Run the IR optimizer between lowering and synthesis.
  bool optimize_ir = false;
  /// Software-mode simulation runs the design pre-synthesis (assert
  /// statements evaluated in place); set false to skip synthesis.
  bool synthesize_assertions = true;
};

/// Everything downstream consumers need: the AST (for sema info), the
/// synthesized design, and its schedule.
struct Compiled {
  std::unique_ptr<lang::Program> program;
  lang::SemaResult sema;
  ir::Design design;
  assertions::SynthesisReport synth;
  sched::DesignSchedule schedule;
  /// Populated iff CompileOptions::optimize_ir.
  ir::OptReport opt_report;
};

/// Compiles an already-loaded buffer. Diagnostics land in `diags`;
/// the Status summarizes the first failing stage.
[[nodiscard]] StatusOr<Compiled> compile_buffer(const SourceManager& sm, DiagnosticEngine& diags,
                                                FileId file, std::string design_name,
                                                const CompileOptions& opt = {});

/// Loads `path` into `sm` and compiles it (kIoError if unreadable).
[[nodiscard]] StatusOr<Compiled> compile_file(SourceManager& sm, DiagnosticEngine& diags,
                                              const std::string& path,
                                              const CompileOptions& opt = {});

/// Adds `text` as a named buffer and compiles it (the fuzz harness's
/// entry point).
[[nodiscard]] StatusOr<Compiled> compile_source(SourceManager& sm, DiagnosticEngine& diags,
                                                std::string name, std::string text,
                                                const CompileOptions& opt = {});

}  // namespace hlsav::pipeline
