#include "pipeline/compile.h"

#include "ir/lower.h"
#include "ir/optimize.h"
#include "lang/parser.h"

namespace hlsav::pipeline {

StatusOr<Compiled> compile_buffer(const SourceManager& sm, DiagnosticEngine& diags, FileId file,
                                  std::string design_name, const CompileOptions& opt) {
  Compiled c;
  c.design.name = std::move(design_name);

  // Frontend stages report through `diags`; the lexer and parser also
  // recover (skip-bad-char, synchronize-on-';'/'}'), so one run surfaces
  // every diagnostic it can find before the Status comes back.
  Status st = catch_internal([&] {
    lang::Parser parser(sm, file, diags);
    c.program = parser.parse_program();
  });
  HLSAV_RETURN_IF_ERROR(st);
  if (diags.has_errors()) {
    return Status::from_diagnostics(StatusCode::kParseError, diags, "parse");
  }

  st = catch_internal([&] { c.sema = lang::analyze(*c.program, sm, diags); });
  HLSAV_RETURN_IF_ERROR(st);
  if (!c.sema.ok || diags.has_errors()) {
    return Status::from_diagnostics(StatusCode::kSemaError, diags, "semantic analysis");
  }

  Status lowered;
  st = catch_internal(
      [&] { lowered = ir::lower_all_processes(c.design, *c.program, sm, diags); });
  HLSAV_RETURN_IF_ERROR(st);
  HLSAV_RETURN_IF_ERROR(lowered);

  if (opt.optimize_ir) {
    st = catch_internal([&] { c.opt_report = ir::optimize(c.design); });
    HLSAV_RETURN_IF_ERROR(st);
  }

  // Backend stages assert internal invariants (HLSAV_CHECK); on
  // malformed-but-lowerable designs those must degrade to a Status, not
  // take the process down.
  if (opt.synthesize_assertions) {
    st = catch_internal([&] { c.synth = assertions::synthesize(c.design, opt.assert_opts); });
    if (!st.ok()) {
      return Status::error(StatusCode::kSynthesisError, st.message());
    }
  }
  st = catch_internal([&] { ir::verify(c.design); });
  if (!st.ok()) {
    return Status::error(StatusCode::kSynthesisError, st.message());
  }
  st = catch_internal([&] { c.schedule = sched::schedule_design(c.design, opt.sched_opts); });
  if (!st.ok()) {
    return Status::error(StatusCode::kScheduleError, st.message());
  }
  return c;
}

StatusOr<Compiled> compile_file(SourceManager& sm, DiagnosticEngine& diags,
                                const std::string& path, const CompileOptions& opt) {
  FileId file = sm.load_file(path);
  if (file == 0) return Status::io_error("cannot open '" + path + "'");
  return compile_buffer(sm, diags, file, path, opt);
}

StatusOr<Compiled> compile_source(SourceManager& sm, DiagnosticEngine& diags, std::string name,
                                  std::string text, const CompileOptions& opt) {
  FileId file = sm.add_buffer(std::move(name), std::move(text));
  std::string design_name = std::string(sm.name(file));
  return compile_buffer(sm, diags, file, design_name, opt);
}

}  // namespace hlsav::pipeline
