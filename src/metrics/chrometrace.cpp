#include "metrics/chrometrace.h"

#include "support/io.h"

#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace hlsav::metrics {

namespace {

std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_trace_events(const std::vector<TraceEvent>& events, std::ostream& os) {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\": \"" << e.ph << "\", \"pid\": " << e.pid << ", \"tid\": " << e.tid
       << ", \"name\": \"" << esc(e.name) << "\"";
    switch (e.ph) {
      case 'X':
        os << ", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us;
        break;
      case 'i':
        os << ", \"s\": \"t\", \"ts\": " << e.ts_us;
        break;
      case 'M':
        os << ", \"args\": {\"name\": \"" << esc(e.label) << "\"}";
        break;
      default:
        break;
    }
    os << "}";
  }
  os << "\n]}\n";
}

void write_chrome_trace(const ProfileReport& report, std::ostream& os) {
  // Track ids: process i -> compute tid 2i+1, stall tid 2i+2 (tid 0
  // renders oddly in some viewers).
  std::map<std::string, int> track;
  for (std::size_t i = 0; i < report.processes.size(); ++i) {
    track[report.processes[i].process] = static_cast<int>(2 * i + 1);
  }
  // Spans may mention a process with no ProcRow only if the report was
  // assembled by hand; give it a track past the known ones.
  int next = static_cast<int>(2 * report.processes.size() + 1);
  auto tid_of = [&track, &next](const std::string& process) {
    auto it = track.find(process);
    if (it == track.end()) it = track.emplace(process, (next += 2) - 2).first;
    return it->second;
  };

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto sep = [&os, &first] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  sep();
  os << "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \"args\": {\"name\": "
        "\"hlsav simulation\"}}";
  for (const ProfileReport::ProcRow& p : report.processes) {
    int tid = tid_of(p.process);
    sep();
    os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \"" << esc(p.process) << "\"}}";
    sep();
    os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid + 1
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \"" << esc(p.process)
       << " stalls\"}}";
  }

  for (const ProfileReport::Span& s : report.spans) {
    int tid = tid_of(s.process) + (s.stall ? 1 : 0);
    sep();
    os << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << tid << ", \"name\": \"" << esc(s.name)
       << "\", \"ts\": " << s.start << ", \"dur\": " << s.end - s.start << "}";
  }
  for (const ProfileReport::Instant& in : report.instants) {
    sep();
    os << "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": " << tid_of(in.process)
       << ", \"name\": \"" << esc(in.name) << "\", \"ts\": " << in.cycle << "}";
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const ProfileReport& report, const std::string& path,
                             std::string* error) {
  std::ostringstream os;
  write_chrome_trace(report, os);
  Status st = write_file_atomic(path, os.str());
  if (!st.ok()) {
    if (error != nullptr) *error = st.to_string();
    return false;
  }
  return true;
}

namespace {

// Minimal recursive-descent JSON parser: validates syntax and lets the
// caller walk just enough structure for the trace-event contract. Values
// are parsed into a tiny variant good enough for field checks.
class JsonParser {
 public:
  struct Value {
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
    std::string str;                               // kString
    double num = 0;                                // kNumber
    std::vector<Value> items;                      // kArray
    std::vector<std::pair<std::string, Value>> fields;  // kObject

    [[nodiscard]] const Value* field(std::string_view name) const {
      for (const auto& [k, v] : fields) {
        if (k == name) return &v;
      }
      return nullptr;
    }
  };

  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(Value& out, std::string& error) {
    pos_ = 0;
    if (!value(out, error)) return false;
    ws();
    if (pos_ != text_.size()) {
      error = at() + "trailing content after JSON value";
      return false;
    }
    return true;
  }

 private:
  std::string at() const { return "offset " + std::to_string(pos_) + ": "; }

  void ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool lit(std::string_view s) {
    if (text_.substr(pos_, s.size()) != s) return false;
    pos_ += s.size();
    return true;
  }

  bool string(std::string& out, std::string& error) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      error = at() + "expected string";
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              error = at() + "truncated \\u escape";
              return false;
            }
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                error = at() + "bad \\u escape";
                return false;
              }
            }
            out += '?';  // code point value irrelevant for validation
            pos_ += 4;
            break;
          }
          default:
            error = at() + "bad escape '\\" + std::string(1, e) + "'";
            return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        error = at() + "raw control character in string";
        return false;
      } else {
        out += c;
      }
    }
    error = at() + "unterminated string";
    return false;
  }

  bool number(Value& out, std::string& error) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      error = at() + "expected number";
      return false;
    }
    try {
      out.num = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      error = "offset " + std::to_string(start) + ": malformed number";
      return false;
    }
    out.kind = Value::kNumber;
    return true;
  }

  bool value(Value& out, std::string& error) {
    ws();
    if (pos_ >= text_.size()) {
      error = at() + "unexpected end of input";
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Value::kObject;
      ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        ws();
        std::string key;
        if (!string(key, error)) return false;
        ws();
        if (!lit(":")) {
          error = at() + "expected ':'";
          return false;
        }
        Value v;
        if (!value(v, error)) return false;
        out.fields.emplace_back(std::move(key), std::move(v));
        ws();
        if (lit(",")) continue;
        if (lit("}")) return true;
        error = at() + "expected ',' or '}'";
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = Value::kArray;
      ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Value v;
        if (!value(v, error)) return false;
        out.items.push_back(std::move(v));
        ws();
        if (lit(",")) continue;
        if (lit("]")) return true;
        error = at() + "expected ',' or ']'";
        return false;
      }
    }
    if (c == '"') {
      out.kind = Value::kString;
      return string(out.str, error);
    }
    if (lit("true")) {
      out.kind = Value::kBool;
      return true;
    }
    if (lit("false")) {
      out.kind = Value::kBool;
      return true;
    }
    if (lit("null")) {
      out.kind = Value::kNull;
      return true;
    }
    return number(out, error);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool require_number(const JsonParser::Value& ev, std::string_view field, std::size_t index,
                    std::string& error) {
  const JsonParser::Value* v = ev.field(field);
  if (v == nullptr || v->kind != JsonParser::Value::kNumber) {
    error = "traceEvents[" + std::to_string(index) + "]: missing numeric \"" +
            std::string(field) + "\"";
    return false;
  }
  return true;
}

}  // namespace

ChromeTraceCheck validate_chrome_trace(std::string_view json) {
  ChromeTraceCheck check;
  JsonParser::Value root;
  JsonParser parser(json);
  if (!parser.parse(root, check.error)) return check;
  if (root.kind != JsonParser::Value::kObject) {
    check.error = "top-level value is not an object";
    return check;
  }
  const JsonParser::Value* events = root.field("traceEvents");
  if (events == nullptr || events->kind != JsonParser::Value::kArray) {
    check.error = "missing \"traceEvents\" array";
    return check;
  }
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const JsonParser::Value& ev = events->items[i];
    std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (ev.kind != JsonParser::Value::kObject) {
      check.error = where + ": not an object";
      return check;
    }
    const JsonParser::Value* ph = ev.field("ph");
    if (ph == nullptr || ph->kind != JsonParser::Value::kString || ph->str.size() != 1) {
      check.error = where + ": missing one-char \"ph\"";
      return check;
    }
    const JsonParser::Value* name = ev.field("name");
    if (name == nullptr || name->kind != JsonParser::Value::kString || name->str.empty()) {
      check.error = where + ": missing \"name\"";
      return check;
    }
    switch (ph->str[0]) {
      case 'X':
        if (!require_number(ev, "ts", i, check.error) ||
            !require_number(ev, "dur", i, check.error) ||
            !require_number(ev, "pid", i, check.error) ||
            !require_number(ev, "tid", i, check.error)) {
          return check;
        }
        if (ev.field("dur")->num < 0) {
          check.error = where + ": negative \"dur\"";
          return check;
        }
        break;
      case 'i':
        if (!require_number(ev, "ts", i, check.error) ||
            !require_number(ev, "pid", i, check.error) ||
            !require_number(ev, "tid", i, check.error)) {
          return check;
        }
        break;
      case 'M':
        if (!require_number(ev, "pid", i, check.error)) return check;
        break;
      default:
        check.error = where + ": unsupported phase '" + ph->str + "'";
        return check;
    }
    ++check.events;
  }
  check.ok = true;
  return check;
}

ChromeTraceCheck validate_chrome_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    ChromeTraceCheck check;
    check.error = "cannot open '" + path + "'";
    return check;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return validate_chrome_trace(buf.str());
}

}  // namespace hlsav::metrics
