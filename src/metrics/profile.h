// Cycle-attribution profiler for the FSMD simulator.
//
// Armed via SimOptions::profile (same borrowed-pointer pattern as
// SimOptions::ela: disabled cost is one pointer test per hook site, and
// no hook fires per op -- only at block/pipeline retire, stream stalls,
// and assertion evaluations, so the simulator's fast path stays on).
//
// Attribution taxonomy. Every local-clock cycle of every process lands
// in exactly one bucket:
//
//   compute      -- FSM states of retired sequential blocks that issue
//                   at least one application op (or no op at all:
//                   latency/chaining padding states), plus all cycles of
//                   pipelined-loop executions (latency + (n-1)*ii).
//   assertion    -- FSM states that issue *only* assertion machinery
//                   (inlined assert conditions, taps, fail wires, cycle
//                   markers -- extraction ops excluded, they merge into
//                   application states by the scheduler's own rule).
//                   Classified statically from the schedule, so the
//                   hot path just adds a precomputed per-block count.
//   stream-stall -- read-side stalls: the producer's FIFO timestamp was
//                   ahead of this process's clock, charged per channel.
//   tail         -- RunResult::cycles minus the process's final local
//                   clock: idle-after-finish, blocked-on-stream (the
//                   deadlock share, per channel and direction), cycle
//                   limit, or halted mid-block by an abort.
//
// The bookkeeping is exact, not sampled: stall cycles accumulate as
// *pending* and only commit when the enclosing block or pipeline
// retires -- by the simulator's timing algebra,
//     clock-at-entry + committed-stalls + retire-states == clock-at-retire
// holds for every retire, so per-process
//     compute + assertion + stall + tail == RunResult::cycles
// exactly, in every run mode (completed, NABORT, aborted, hung, fault
// injected). Stalls of a block that never retires (the process hung or
// the run halted mid-block) are *discarded* -- counted, reported, and
// provably zero for completed runs. Write-blocked processes lose no
// local-clock cycles in this timing model; write pressure shows up as
// blocked-poll counters and as the tail's blocked-write share instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ir.h"
#include "metrics/metrics.h"
#include "sched/schedule.h"

namespace hlsav {
class SourceManager;
}

namespace hlsav::metrics {

/// Why a process's tail exists (its state at run end).
enum class EndKind : std::uint8_t {
  kFinished,      // returned; tail is idle-after-finish
  kBlockedRead,   // stuck in stream_read at run end (deadlock share)
  kBlockedWrite,  // stuck in stream_write at run end (deadlock share)
  kCycleLimit,    // livelock backstop fired
  kHalted,        // run aborted with this process mid-block
};

[[nodiscard]] const char* end_kind_name(EndKind k);

struct ProfileConfig {
  /// Record timeline spans/instants for the Chrome trace export.
  bool timeline = true;
  /// Span cap; further spans are counted as dropped, cycle accounting
  /// is unaffected.
  std::size_t timeline_limit = 1u << 20;
  /// Rows kept in the hottest-states table of the report.
  std::size_t max_hot_states = 16;
};

/// Compact per-run totals, cheap enough to keep for every campaign site
/// and diff against the golden run.
struct ProfileSummary {
  std::uint64_t run_cycles = 0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t assert_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t tail_cycles = 0;
  std::uint64_t discarded_stall_cycles = 0;
  std::uint64_t blocked_polls = 0;
  std::uint64_t assert_evals = 0;
  std::uint64_t assert_failures = 0;
  /// Channel with the most read-stall cycles ("" when no stalls).
  std::string hottest_stall_stream;
  std::uint64_t hottest_stall_cycles = 0;
};

/// Self-contained (all names resolved) profile of one simulation run.
struct ProfileReport {
  std::uint64_t run_cycles = 0;
  bool completed = false;

  struct StreamStall {
    std::string stream;
    std::uint64_t read_stall_cycles = 0;
    std::uint64_t read_stall_events = 0;
    std::uint64_t read_polls = 0;   // times found empty (scheduler retries)
    std::uint64_t write_polls = 0;  // times found full
  };

  struct ProcRow {
    std::string process;
    std::uint64_t compute_cycles = 0;
    std::uint64_t assert_cycles = 0;
    std::uint64_t stall_cycles = 0;  // committed read stalls
    std::uint64_t tail_cycles = 0;
    EndKind end = EndKind::kFinished;
    std::string end_stream;  // blocking channel for kBlockedRead/Write
    std::uint64_t discarded_stall_cycles = 0;
    /// Occupancy cross-check inputs: cycles of retired sequential
    /// states (Σ executions x num_states) and of pipelined executions.
    /// seq_state_cycles + pipe_cycles == compute + assertion, always.
    std::uint64_t seq_state_cycles = 0;
    std::uint64_t pipe_cycles = 0;
    std::vector<StreamStall> streams;  // stall/poll breakdown, by channel

    /// Every cycle this row accounts for; == run_cycles by the
    /// attribution invariant.
    [[nodiscard]] std::uint64_t attributed() const {
      return compute_cycles + assert_cycles + stall_cycles + tail_cycles;
    }
  };

  /// One FSM state (or pipeline stage) in the hottest-states table.
  struct StateRow {
    std::string process;
    std::string block;   // sanitized hierarchical block name
    unsigned state = 0;  // state index within the block
    std::uint64_t occupancy = 0;      // executions through this state
    std::uint64_t stall_cycles = 0;   // read stalls charged to it
    std::string source;               // "file:line" / "line N" / ""
    [[nodiscard]] std::uint64_t cost() const { return occupancy + stall_cycles; }
  };

  struct AssertStat {
    std::uint32_t id = 0;
    std::string label;  // "function:line 'condition'" when known
    std::uint64_t evals = 0;
    std::uint64_t failures = 0;
  };

  // Timeline (Chrome trace-event export; see metrics/chrometrace.h).
  struct Span {
    std::string process;
    bool stall = false;   // rendered on the process's stall track
    std::string name;     // block name / "stall 'stream'"
    std::uint64_t start = 0;
    std::uint64_t end = 0;
  };
  struct Instant {
    std::string process;
    std::string name;  // "assert #id FAIL"
    std::uint64_t cycle = 0;
  };

  std::vector<ProcRow> processes;
  std::vector<StateRow> hottest_states;  // by cost(), descending
  std::vector<AssertStat> assertions;    // evaluated assertions, by id
  std::vector<Span> spans;
  std::vector<Instant> instants;
  std::uint64_t spans_dropped = 0;
  // Snapshot of the profiler's metrics registry.
  std::vector<Counter> counters;
  std::vector<Histogram> histograms;

  /// True iff every process's attributed cycles equal run_cycles and
  /// (for completed runs) nothing was discarded.
  [[nodiscard]] bool attribution_exact() const;
  [[nodiscard]] ProfileSummary summary() const;
  /// Source-level tables: per-process attribution, hottest states,
  /// per-channel stalls, assertion activity.
  [[nodiscard]] std::string render_table() const;
  /// Whole report as a JSON object (embeddable in BENCH_*.json).
  [[nodiscard]] std::string to_json() const;
};

/// Renders a golden-vs-faulted summary delta ("cycles +128, stall +96
/// on 'chan', ..."), the campaign's per-site profile annotation.
[[nodiscard]] std::string render_profile_delta(const ProfileSummary& golden,
                                               const ProfileSummary& faulted);

class Profiler {
 public:
  /// `design` and `schedule` must outlive the profiler and be the exact
  /// objects the simulator runs (the static per-block state
  /// classification indexes the same BlockSchedules).
  Profiler(const ir::Design& design, const sched::DesignSchedule& schedule,
           ProfileConfig config = {});

  // ---- hook API (simulator side; hot, so index-addressed) ----

  /// Stable slot for a process; resolve once at simulator init.
  [[nodiscard]] std::size_t index_of(const ir::Process* proc) const;

  /// A sequential block retired: local clock advanced to `retire_cycle`.
  void block_retired(std::size_t idx, ir::BlockId block, std::uint64_t retire_cycle);
  /// A pipelined loop exited after `iters` iterations of `body`.
  void pipe_retired(std::size_t idx, ir::BlockId body, std::uint64_t retire_cycle,
                    std::uint64_t iters);
  /// A stream_read found data timestamped `cycles` ahead of local time
  /// `at` (state `state` of `block`); pending until the block retires.
  void read_stall(std::size_t idx, ir::BlockId block, unsigned state, ir::StreamId stream,
                  std::uint64_t at, std::uint64_t cycles);
  /// A stream op found the FIFO empty (read) / full (write) and the
  /// process suspended; counted per scheduler retry.
  void blocked_poll(std::size_t idx, ir::StreamId stream, bool write);
  /// An assertion evaluated (inline, checker, fail wire or cycle
  /// marker) with the given verdict.
  void assert_eval(std::size_t idx, std::uint32_t assert_id, bool failed, std::uint64_t at);
  /// Run teardown: the process's final local clock and end state.
  void process_end(std::size_t idx, std::uint64_t local_clock, EndKind end,
                   ir::StreamId blocked_stream);
  /// Run teardown, after every process_end.
  void run_end(std::uint64_t run_cycles, bool completed);

  // ---- reporting side ----

  [[nodiscard]] ProfileReport report(const SourceManager* sm = nullptr) const;
  [[nodiscard]] ProfileSummary summary() const;
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }

 private:
  struct BlockStatic {
    unsigned num_states = 0;
    unsigned assert_states = 0;  // assertion-only states (sequential)
    bool pipelined = false;
    unsigned ii = 0;
    unsigned latency = 0;
    /// Unoptimized inline assertions have no assert op at runtime: the
    /// check is a branch whose false edge enters a failure block. Both
    /// are classified statically; retiring the branch block counts an
    /// evaluation, retiring the failure block counts a failure.
    std::uint32_t assert_branch = ir::kNoAssertTag;
    std::uint32_t assert_fail = ir::kNoAssertTag;
  };

  struct ProcAccum {
    const ir::Process* proc = nullptr;
    const BlockStatic* blocks = nullptr;  // into block_static_, by BlockId
    /// Shared op->state->source table (borrows the schedule's vectors).
    ir::ProcessDebugInfo dbg;
    std::uint64_t compute = 0;
    std::uint64_t assert_cycles = 0;
    std::uint64_t stall_committed = 0;
    std::uint64_t clock = 0;  // attributed local clock
    std::uint64_t seq_state_cycles = 0;
    std::uint64_t pipe_cycles = 0;
    std::uint64_t discarded = 0;
    // Pending read stalls of the not-yet-retired block, per channel
    // (tiny: a block rarely reads more than a few streams).
    std::vector<std::pair<ir::StreamId, std::uint64_t>> pending;
    std::uint64_t pending_total = 0;
    std::unordered_map<ir::StreamId, std::uint64_t> stall_by_stream;
    std::unordered_map<ir::StreamId, std::uint64_t> stall_events_by_stream;
    std::unordered_map<ir::StreamId, std::uint64_t> read_polls;
    std::unordered_map<ir::StreamId, std::uint64_t> write_polls;
    std::vector<std::uint64_t> block_execs;  // by BlockId
    /// (block << 16 | state) -> stall cycles charged to that state.
    std::unordered_map<std::uint64_t, std::uint64_t> stall_by_state;
    EndKind end = EndKind::kFinished;
    ir::StreamId end_stream = ir::kNoStream;
    std::uint64_t tail = 0;
  };

  struct AssertAccum {
    std::uint64_t evals = 0;
    std::uint64_t failures = 0;
  };

  void commit_pending(ProcAccum& a);
  void add_span(const ProcAccum& a, bool stall, std::string name, std::uint64_t start,
                std::uint64_t end);

  const ir::Design& design_;
  const sched::DesignSchedule& schedule_;
  ProfileConfig config_;
  std::vector<ProcAccum> procs_;
  std::unordered_map<const ir::Process*, std::size_t> index_;
  // Per-process per-block statics, laid out flat (procs_[i].blocks
  // points at its slice); stable because reserved up front.
  std::vector<BlockStatic> block_static_;
  std::unordered_map<std::uint32_t, AssertAccum> asserts_;
  std::vector<ProfileReport::Span> spans_;
  std::vector<ProfileReport::Instant> instants_;
  std::uint64_t spans_dropped_ = 0;
  std::uint64_t run_cycles_ = 0;
  bool completed_ = false;
  bool ended_ = false;

  MetricsRegistry registry_;
  // Hot-path counter/histogram handles, resolved once in the ctor.
  Counter* c_blocks_ = nullptr;
  Counter* c_pipes_ = nullptr;
  Counter* c_stall_cycles_ = nullptr;
  Counter* c_stall_events_ = nullptr;
  Counter* c_polls_read_ = nullptr;
  Counter* c_polls_write_ = nullptr;
  Counter* c_assert_evals_ = nullptr;
  Counter* c_assert_failures_ = nullptr;
  Counter* c_discarded_ = nullptr;
  Histogram* h_stall_ = nullptr;
  Histogram* h_pipe_iters_ = nullptr;
};

}  // namespace hlsav::metrics
