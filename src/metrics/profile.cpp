#include "metrics/profile.h"

#include <algorithm>
#include <sstream>

#include "rtl/names.h"
#include "support/source_manager.h"
#include "support/table.h"

namespace hlsav::metrics {

namespace {

/// An op that exists only for assertion machinery: the inlined condition
/// slice of an unoptimized assertion (extraction ops excluded -- the
/// scheduler merges those into application states) or one of the
/// dedicated assertion op kinds.
bool is_assert_op(const ir::Op& op) {
  switch (op.kind) {
    case ir::OpKind::kAssert:
    case ir::OpKind::kAssertTap:
    case ir::OpKind::kAssertFailWire:
    case ir::OpKind::kAssertCycles:
      return true;
    default:
      return op.assert_tag != ir::kNoAssertTag && !op.is_extraction;
  }
}

std::uint64_t state_key(ir::BlockId block, unsigned state) {
  return (static_cast<std::uint64_t>(block) << 16) | (state & 0xFFFFu);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string pct_of(std::uint64_t part, std::uint64_t total) {
  if (total == 0) return "0.0%";
  return fmt_double(100.0 * static_cast<double>(part) / static_cast<double>(total), 1) + "%";
}

std::string signed_delta(std::uint64_t golden, std::uint64_t faulted) {
  if (faulted >= golden) return "+" + std::to_string(faulted - golden);
  return "-" + std::to_string(golden - faulted);
}

}  // namespace

const char* end_kind_name(EndKind k) {
  switch (k) {
    case EndKind::kFinished: return "finished";
    case EndKind::kBlockedRead: return "blocked-read";
    case EndKind::kBlockedWrite: return "blocked-write";
    case EndKind::kCycleLimit: return "cycle-limit";
    case EndKind::kHalted: return "halted";
  }
  HLSAV_UNREACHABLE("bad EndKind");
}

Profiler::Profiler(const ir::Design& design, const sched::DesignSchedule& schedule,
                   ProfileConfig config)
    : design_(design), schedule_(schedule), config_(config) {
  // Hot-path handles first (registration order fixes the render order).
  c_blocks_ = registry_.counter("sim.blocks_retired");
  c_pipes_ = registry_.counter("sim.pipelines_retired");
  c_stall_cycles_ = registry_.counter("sim.read_stall_cycles");
  c_stall_events_ = registry_.counter("sim.read_stall_events");
  c_polls_read_ = registry_.counter("sim.blocked_polls_read");
  c_polls_write_ = registry_.counter("sim.blocked_polls_write");
  c_assert_evals_ = registry_.counter("sim.assert_evals");
  c_assert_failures_ = registry_.counter("sim.assert_failures");
  c_discarded_ = registry_.counter("sim.discarded_stall_cycles");
  h_stall_ = registry_.histogram("sim.stall_cycles_per_event");
  h_pipe_iters_ = registry_.histogram("sim.pipeline_iterations");

  std::vector<const ir::Process*> apps = design_.application_processes();
  std::size_t total_blocks = 0;
  for (const ir::Process* p : apps) total_blocks += p->blocks.size();
  block_static_.reserve(total_blocks);

  procs_.reserve(apps.size());
  for (const ir::Process* p : apps) {
    const sched::ProcessSchedule* ps = schedule_.find(p->name);
    HLSAV_CHECK(ps != nullptr, "profiler: no schedule for process " + p->name);
    ProcAccum a;
    a.proc = p;
    a.dbg = sched::debug_info(*p, *ps);
    a.block_execs.assign(p->blocks.size(), 0);
    std::size_t off = block_static_.size();
    for (const ir::BasicBlock& b : p->blocks) {
      const sched::BlockSchedule& bs = ps->of(b.id);
      BlockStatic st;
      st.num_states = bs.num_states;
      st.pipelined = bs.pipelined;
      st.ii = bs.ii;
      st.latency = bs.latency;
      if (!bs.pipelined) {
        // A state is assertion-attributed iff every op it issues is
        // assertion machinery (states with no ops are schedule padding:
        // compute). Matches the scheduler's no-sharing rule for
        // assert-tagged ops, so unoptimized inlined assertions land
        // here state-exactly.
        for (unsigned s = 0; s < st.num_states; ++s) {
          const std::vector<std::size_t>& issued = a.dbg.ops_in_state(b.id, s);
          bool all_assert = !issued.empty();
          for (std::size_t i : issued) all_assert &= is_assert_op(b.ops[i]);
          if (all_assert) ++st.assert_states;
        }
      }
      block_static_.push_back(st);
    }
    // Second pass: unoptimized inline assertions run as a branch into a
    // failure block (no assert op executes). A failure block's ops are
    // all machinery of one assertion; the block branching into it on
    // the false edge is the evaluation site.
    for (const ir::BasicBlock& b : p->blocks) {
      if (b.ops.empty()) continue;
      std::uint32_t tag = b.ops.front().assert_tag;
      if (tag == ir::kNoAssertTag) continue;
      bool all = true;
      for (const ir::Op& op : b.ops) all &= op.assert_tag == tag && is_assert_op(op);
      if (all) block_static_[off + b.id].assert_fail = tag;
    }
    for (const ir::BasicBlock& b : p->blocks) {
      if (b.term.kind != ir::TermKind::kBranch || b.term.on_false == ir::kNoBlock) continue;
      std::uint32_t tag = block_static_[off + b.term.on_false].assert_fail;
      if (tag != ir::kNoAssertTag) block_static_[off + b.id].assert_branch = tag;
    }
    a.blocks = block_static_.data() + off;
    index_.emplace(p, procs_.size());
    procs_.push_back(std::move(a));
  }
}

std::size_t Profiler::index_of(const ir::Process* proc) const {
  auto it = index_.find(proc);
  HLSAV_CHECK(it != index_.end(), "profiler: unregistered process");
  return it->second;
}

void Profiler::commit_pending(ProcAccum& a) {
  if (a.pending_total == 0) return;
  for (const auto& [stream, cycles] : a.pending) a.stall_by_stream[stream] += cycles;
  a.stall_committed += a.pending_total;
  a.clock += a.pending_total;
  a.pending.clear();
  a.pending_total = 0;
}

void Profiler::add_span(const ProcAccum& a, bool stall, std::string name, std::uint64_t start,
                        std::uint64_t end) {
  if (!config_.timeline || end <= start) return;
  if (spans_.size() >= config_.timeline_limit) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(ProfileReport::Span{a.proc->name, stall, std::move(name), start, end});
}

void Profiler::block_retired(std::size_t idx, ir::BlockId block, std::uint64_t retire_cycle) {
  ProcAccum& a = procs_[idx];
  const BlockStatic& st = a.blocks[block];
  std::uint64_t entry = a.clock;
  commit_pending(a);
  a.clock += st.num_states;
  // The simulator's timing algebra: entry clock + read stalls + block
  // states is exactly the retire clock. A mismatch means a hook site
  // regressed, and the attribution would silently drift -- fail loudly.
  HLSAV_CHECK(a.clock == retire_cycle,
              "profiler: attribution drift on '" + a.proc->name + "' block " +
                  std::to_string(block) + " (attributed " + std::to_string(a.clock) +
                  ", simulator at " + std::to_string(retire_cycle) + ")");
  a.compute += st.num_states - st.assert_states;
  a.assert_cycles += st.assert_states;
  a.seq_state_cycles += st.num_states;
  ++a.block_execs[block];
  c_blocks_->add();
  if (st.assert_branch != ir::kNoAssertTag) {
    ++asserts_[st.assert_branch].evals;
    c_assert_evals_->add();
  }
  if (st.assert_fail != ir::kNoAssertTag) {
    ++asserts_[st.assert_fail].failures;
    c_assert_failures_->add();
    if (config_.timeline) {
      instants_.push_back(ProfileReport::Instant{
          a.proc->name, "assert #" + std::to_string(st.assert_fail) + " FAIL", retire_cycle});
    }
  }
  if (st.num_states != 0) {
    add_span(a, false, rtl::sanitize_net_name(a.proc->blocks[block].name), entry, retire_cycle);
  }
}

void Profiler::pipe_retired(std::size_t idx, ir::BlockId body, std::uint64_t retire_cycle,
                            std::uint64_t iters) {
  ProcAccum& a = procs_[idx];
  const BlockStatic& st = a.blocks[body];
  std::uint64_t consumed =
      iters == 0 ? 1 : st.latency + (iters - 1) * static_cast<std::uint64_t>(st.ii);
  std::uint64_t entry = a.clock;
  commit_pending(a);
  a.clock += consumed;
  HLSAV_CHECK(a.clock == retire_cycle,
              "profiler: attribution drift on pipelined loop of '" + a.proc->name + "'");
  a.compute += consumed;
  a.pipe_cycles += consumed;
  a.block_execs[body] += iters;
  c_pipes_->add();
  h_pipe_iters_->record(iters);
  add_span(a, false, rtl::sanitize_net_name(a.proc->blocks[body].name) + "_pipe", entry,
           retire_cycle);
}

void Profiler::read_stall(std::size_t idx, ir::BlockId block, unsigned state,
                          ir::StreamId stream, std::uint64_t at, std::uint64_t cycles) {
  ProcAccum& a = procs_[idx];
  bool found = false;
  for (auto& [s, c] : a.pending) {
    if (s == stream) {
      c += cycles;
      found = true;
      break;
    }
  }
  if (!found) a.pending.emplace_back(stream, cycles);
  a.pending_total += cycles;
  ++a.stall_events_by_stream[stream];
  a.stall_by_state[state_key(block, state)] += cycles;
  c_stall_cycles_->add(cycles);
  c_stall_events_->add();
  h_stall_->record(cycles);
  if (config_.timeline) {
    add_span(a, true, "stall '" + design_.stream(stream).name + "'", at, at + cycles);
  }
}

void Profiler::blocked_poll(std::size_t idx, ir::StreamId stream, bool write) {
  ProcAccum& a = procs_[idx];
  if (write) {
    ++a.write_polls[stream];
    c_polls_write_->add();
  } else {
    ++a.read_polls[stream];
    c_polls_read_->add();
  }
}

void Profiler::assert_eval(std::size_t idx, std::uint32_t assert_id, bool failed,
                           std::uint64_t at) {
  AssertAccum& aa = asserts_[assert_id];
  ++aa.evals;
  c_assert_evals_->add();
  if (failed) {
    ++aa.failures;
    c_assert_failures_->add();
    if (config_.timeline) {
      instants_.push_back(ProfileReport::Instant{
          procs_[idx].proc->name, "assert #" + std::to_string(assert_id) + " FAIL", at});
    }
  }
}

void Profiler::process_end(std::size_t idx, std::uint64_t local_clock, EndKind end,
                           ir::StreamId blocked_stream) {
  ProcAccum& a = procs_[idx];
  HLSAV_CHECK(a.clock == local_clock,
              "profiler: final clock drift on '" + a.proc->name + "' (attributed " +
                  std::to_string(a.clock) + ", simulator at " + std::to_string(local_clock) +
                  ")");
  // Stalls of a block that never retired: counted, never attributed.
  a.discarded += a.pending_total;
  c_discarded_->add(a.pending_total);
  a.pending.clear();
  a.pending_total = 0;
  a.end = end;
  a.end_stream = blocked_stream;
}

void Profiler::run_end(std::uint64_t run_cycles, bool completed) {
  run_cycles_ = run_cycles;
  completed_ = completed;
  ended_ = true;
  for (ProcAccum& a : procs_) {
    HLSAV_CHECK(run_cycles >= a.clock, "profiler: run cycles below a process clock");
    a.tail = run_cycles - a.clock;
  }
}

ProfileSummary Profiler::summary() const {
  HLSAV_CHECK(ended_, "profiler: summary() before run_end()");
  ProfileSummary s;
  s.run_cycles = run_cycles_;
  std::unordered_map<ir::StreamId, std::uint64_t> stalls;
  for (const ProcAccum& a : procs_) {
    s.compute_cycles += a.compute;
    s.assert_cycles += a.assert_cycles;
    s.stall_cycles += a.stall_committed;
    s.tail_cycles += a.tail;
    s.discarded_stall_cycles += a.discarded;
    for (const auto& [id, c] : a.stall_by_stream) stalls[id] += c;
    for (const auto& [id, c] : a.read_polls) s.blocked_polls += c;
    for (const auto& [id, c] : a.write_polls) s.blocked_polls += c;
  }
  for (const auto& [id, aa] : asserts_) {
    s.assert_evals += aa.evals;
    s.assert_failures += aa.failures;
  }
  ir::StreamId best = ir::kNoStream;
  for (const auto& [id, c] : stalls) {
    if (c > s.hottest_stall_cycles ||
        (c == s.hottest_stall_cycles && c != 0 && id < best)) {
      s.hottest_stall_cycles = c;
      best = id;
    }
  }
  if (best != ir::kNoStream) s.hottest_stall_stream = design_.stream(best).name;
  return s;
}

ProfileReport Profiler::report(const SourceManager* sm) const {
  HLSAV_CHECK(ended_, "profiler: report() before run_end()");
  ProfileReport r;
  r.run_cycles = run_cycles_;
  r.completed = completed_;

  auto loc_text = [sm](const SourceLoc& loc) { return ir::format_loc(loc, sm); };

  for (const ProcAccum& a : procs_) {
    ProfileReport::ProcRow row;
    row.process = a.proc->name;
    row.compute_cycles = a.compute;
    row.assert_cycles = a.assert_cycles;
    row.stall_cycles = a.stall_committed;
    row.tail_cycles = a.tail;
    row.end = a.end;
    if (a.end_stream != ir::kNoStream) row.end_stream = design_.stream(a.end_stream).name;
    row.discarded_stall_cycles = a.discarded;
    row.seq_state_cycles = a.seq_state_cycles;
    row.pipe_cycles = a.pipe_cycles;

    std::vector<ir::StreamId> ids;
    auto note = [&ids](const auto& m) {
      for (const auto& [id, c] : m) {
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
      }
    };
    note(a.stall_by_stream);
    note(a.stall_events_by_stream);
    note(a.read_polls);
    note(a.write_polls);
    std::sort(ids.begin(), ids.end());
    auto get = [](const auto& m, ir::StreamId id) -> std::uint64_t {
      auto it = m.find(id);
      return it == m.end() ? 0 : it->second;
    };
    for (ir::StreamId id : ids) {
      ProfileReport::StreamStall ss;
      ss.stream = design_.stream(id).name;
      ss.read_stall_cycles = get(a.stall_by_stream, id);
      ss.read_stall_events = get(a.stall_events_by_stream, id);
      ss.read_polls = get(a.read_polls, id);
      ss.write_polls = get(a.write_polls, id);
      row.streams.push_back(std::move(ss));
    }
    r.processes.push_back(std::move(row));
  }

  // Hottest states: every (block, state) with nonzero cost. Occupancy
  // of a sequential state is the block's execution count (each state is
  // occupied once per execution); stalls are charged to the state that
  // issued the stalling read. Pipelined bodies collapse to one row
  // (occupancy = iterations), their stage structure being a modulo
  // schedule rather than an FSM walk.
  for (const ProcAccum& a : procs_) {
    for (const ir::BasicBlock& b : a.proc->blocks) {
      const BlockStatic& st = a.blocks[b.id];
      std::uint64_t execs = a.block_execs[b.id];
      auto state_stall = [&a, &b](unsigned s) -> std::uint64_t {
        auto it = a.stall_by_state.find(state_key(b.id, s));
        return it == a.stall_by_state.end() ? 0 : it->second;
      };
      if (st.pipelined) {
        std::uint64_t stall = 0;
        for (const auto& [key, c] : a.stall_by_state) {
          if ((key >> 16) == b.id) stall += c;
        }
        if (execs == 0 && stall == 0) continue;
        ProfileReport::StateRow sr;
        sr.process = a.proc->name;
        sr.block = rtl::sanitize_net_name(b.name) + "_pipe";
        sr.state = 0;
        sr.occupancy = execs;
        sr.stall_cycles = stall;
        sr.source = loc_text(a.dbg.first_source(b.id));
        r.hottest_states.push_back(std::move(sr));
        continue;
      }
      for (unsigned s = 0; s < st.num_states; ++s) {
        std::uint64_t stall = state_stall(s);
        if (execs == 0 && stall == 0) continue;
        ProfileReport::StateRow sr;
        sr.process = a.proc->name;
        sr.block = rtl::sanitize_net_name(b.name);
        sr.state = s;
        sr.occupancy = execs;
        sr.stall_cycles = stall;
        sr.source = loc_text(a.dbg.source_of_state(b.id, s));
        r.hottest_states.push_back(std::move(sr));
      }
    }
  }
  std::stable_sort(r.hottest_states.begin(), r.hottest_states.end(),
                   [](const ProfileReport::StateRow& x, const ProfileReport::StateRow& y) {
                     if (x.cost() != y.cost()) return x.cost() > y.cost();
                     if (x.process != y.process) return x.process < y.process;
                     if (x.block != y.block) return x.block < y.block;
                     return x.state < y.state;
                   });
  if (r.hottest_states.size() > config_.max_hot_states) {
    r.hottest_states.resize(config_.max_hot_states);
  }

  std::vector<std::uint32_t> aids;
  for (const auto& [id, aa] : asserts_) aids.push_back(id);
  std::sort(aids.begin(), aids.end());
  for (std::uint32_t id : aids) {
    const AssertAccum& aa = asserts_.at(id);
    ProfileReport::AssertStat st;
    st.id = id;
    st.evals = aa.evals;
    st.failures = aa.failures;
    if (const ir::AssertionRecord* rec = design_.find_assertion(id)) {
      st.label = rec->function + ":" + std::to_string(rec->line) + " '" +
                 rec->condition_text + "'";
    }
    r.assertions.push_back(std::move(st));
  }

  r.spans = spans_;
  r.instants = instants_;
  r.spans_dropped = spans_dropped_;
  for (const Counter& c : registry_.counters()) r.counters.push_back(c);
  for (const Histogram& h : registry_.histograms()) r.histograms.push_back(h);
  return r;
}

bool ProfileReport::attribution_exact() const {
  for (const ProcRow& p : processes) {
    if (p.attributed() != run_cycles) return false;
    if (p.seq_state_cycles + p.pipe_cycles != p.compute_cycles + p.assert_cycles) return false;
    if (completed && p.discarded_stall_cycles != 0) return false;
  }
  return true;
}

ProfileSummary ProfileReport::summary() const {
  ProfileSummary s;
  s.run_cycles = run_cycles;
  std::unordered_map<std::string, std::uint64_t> stalls;
  for (const ProcRow& p : processes) {
    s.compute_cycles += p.compute_cycles;
    s.assert_cycles += p.assert_cycles;
    s.stall_cycles += p.stall_cycles;
    s.tail_cycles += p.tail_cycles;
    s.discarded_stall_cycles += p.discarded_stall_cycles;
    for (const StreamStall& ss : p.streams) {
      s.blocked_polls += ss.read_polls + ss.write_polls;
      stalls[ss.stream] += ss.read_stall_cycles;
    }
  }
  for (const AssertStat& a : assertions) {
    s.assert_evals += a.evals;
    s.assert_failures += a.failures;
  }
  for (const auto& [name, c] : stalls) {
    if (c > s.hottest_stall_cycles ||
        (c == s.hottest_stall_cycles && c != 0 && name < s.hottest_stall_stream)) {
      s.hottest_stall_cycles = c;
      s.hottest_stall_stream = name;
    }
  }
  return s;
}

std::string ProfileReport::render_table() const {
  std::ostringstream os;

  TextTable t("Cycle attribution (" + std::to_string(run_cycles) + " cycles, " +
              (completed ? "completed" : "not completed") + ")");
  t.header({"process", "compute", "assert", "stall", "tail", "tail kind", "attributed"});
  for (const ProcRow& p : processes) {
    std::string tail_kind = end_kind_name(p.end);
    if (!p.end_stream.empty()) tail_kind += " '" + p.end_stream + "'";
    std::string attributed = std::to_string(p.attributed());
    if (p.discarded_stall_cycles != 0) {
      attributed += " (+" + std::to_string(p.discarded_stall_cycles) + " discarded)";
    }
    t.row({p.process, std::to_string(p.compute_cycles) + " " + pct_of(p.compute_cycles, run_cycles),
           std::to_string(p.assert_cycles) + " " + pct_of(p.assert_cycles, run_cycles),
           std::to_string(p.stall_cycles) + " " + pct_of(p.stall_cycles, run_cycles),
           std::to_string(p.tail_cycles) + " " + pct_of(p.tail_cycles, run_cycles), tail_kind,
           attributed});
  }
  os << t.render();

  if (!hottest_states.empty()) {
    TextTable h("Hottest FSM states (occupancy + read-stall cycles)");
    h.header({"process", "state", "occupancy", "stall", "cost", "source"});
    for (const StateRow& s : hottest_states) {
      h.row({s.process, s.block + "/s" + std::to_string(s.state), std::to_string(s.occupancy),
             std::to_string(s.stall_cycles), std::to_string(s.cost()), s.source});
    }
    os << h.render();
  }

  bool any_stream = false;
  for (const ProcRow& p : processes) any_stream |= !p.streams.empty();
  if (any_stream) {
    TextTable st("Stream stalls and blocked polls");
    st.header({"process", "stream", "stall cycles", "stall events", "read polls",
               "write polls"});
    for (const ProcRow& p : processes) {
      for (const StreamStall& ss : p.streams) {
        st.row({p.process, ss.stream, std::to_string(ss.read_stall_cycles),
                std::to_string(ss.read_stall_events), std::to_string(ss.read_polls),
                std::to_string(ss.write_polls)});
      }
    }
    os << st.render();
  }

  if (!assertions.empty()) {
    TextTable at("Assertion activity");
    at.header({"assertion", "label", "evals", "failures"});
    for (const AssertStat& a : assertions) {
      at.row({"#" + std::to_string(a.id), a.label, std::to_string(a.evals),
              std::to_string(a.failures)});
    }
    os << at.render();
  }
  return os.str();
}

std::string ProfileReport::to_json() const {
  std::ostringstream os;
  os << "{\"run_cycles\": " << run_cycles << ", \"completed\": " << (completed ? "true" : "false")
     << ", \"attribution_exact\": " << (attribution_exact() ? "true" : "false")
     << ", \"processes\": [";
  for (std::size_t i = 0; i < processes.size(); ++i) {
    const ProcRow& p = processes[i];
    if (i != 0) os << ", ";
    os << "{\"name\": \"" << json_escape(p.process) << "\", \"compute\": " << p.compute_cycles
       << ", \"assert\": " << p.assert_cycles << ", \"stall\": " << p.stall_cycles
       << ", \"tail\": " << p.tail_cycles << ", \"end\": \"" << end_kind_name(p.end) << "\""
       << ", \"discarded\": " << p.discarded_stall_cycles
       << ", \"seq_state_cycles\": " << p.seq_state_cycles
       << ", \"pipe_cycles\": " << p.pipe_cycles << ", \"streams\": [";
    for (std::size_t j = 0; j < p.streams.size(); ++j) {
      const StreamStall& ss = p.streams[j];
      if (j != 0) os << ", ";
      os << "{\"name\": \"" << json_escape(ss.stream)
         << "\", \"read_stall_cycles\": " << ss.read_stall_cycles
         << ", \"read_stall_events\": " << ss.read_stall_events
         << ", \"read_polls\": " << ss.read_polls << ", \"write_polls\": " << ss.write_polls
         << "}";
    }
    os << "]}";
  }
  os << "], \"hottest_states\": [";
  for (std::size_t i = 0; i < hottest_states.size(); ++i) {
    const StateRow& s = hottest_states[i];
    if (i != 0) os << ", ";
    os << "{\"process\": \"" << json_escape(s.process) << "\", \"block\": \""
       << json_escape(s.block) << "\", \"state\": " << s.state
       << ", \"occupancy\": " << s.occupancy << ", \"stall\": " << s.stall_cycles
       << ", \"source\": \"" << json_escape(s.source) << "\"}";
  }
  os << "], \"assertions\": [";
  for (std::size_t i = 0; i < assertions.size(); ++i) {
    const AssertStat& a = assertions[i];
    if (i != 0) os << ", ";
    os << "{\"id\": " << a.id << ", \"label\": \"" << json_escape(a.label)
       << "\", \"evals\": " << a.evals << ", \"failures\": " << a.failures << "}";
  }
  os << "], ";
  // Registry snapshot, same fragment shape MetricsRegistry::to_json emits.
  os << "\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) os << ", ";
    os << "\"" << counters[i].name << "\": " << counters[i].value;
  }
  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const Histogram& h = histograms[i];
    if (i != 0) os << ", ";
    os << "\"" << h.name << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"max\": " << h.max << "}";
  }
  os << "}, \"spans\": " << spans.size() << ", \"spans_dropped\": " << spans_dropped << "}";
  return os.str();
}

std::string render_profile_delta(const ProfileSummary& golden, const ProfileSummary& faulted) {
  std::ostringstream os;
  os << "cycles " << signed_delta(golden.run_cycles, faulted.run_cycles) << ", compute "
     << signed_delta(golden.compute_cycles, faulted.compute_cycles) << ", assert "
     << signed_delta(golden.assert_cycles, faulted.assert_cycles) << ", stall "
     << signed_delta(golden.stall_cycles, faulted.stall_cycles) << ", tail "
     << signed_delta(golden.tail_cycles, faulted.tail_cycles);
  if (faulted.assert_failures != 0) os << ", assert failures " << faulted.assert_failures;
  if (!faulted.hottest_stall_stream.empty()) {
    os << "; stalls peak on '" << faulted.hottest_stall_stream << "' ("
       << faulted.hottest_stall_cycles << ")";
  }
  return os.str();
}

}  // namespace hlsav::metrics
