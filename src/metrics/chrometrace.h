// Chrome trace-event export of a ProfileReport, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Mapping: one trace process (pid 1) per run; each simulated process
// gets two tracks -- a compute track (tid 2i+1) with block/pipeline
// spans and a stall track (tid 2i+2) with per-channel read-stall spans.
// Cycles map 1:1 to microseconds of trace time (ts/dur), so the
// Perfetto ruler reads directly in cycles. Assertion failures are
// thread-scoped instant events on the compute track.
//
// A minimal in-tree validator (no third-party JSON dependency) checks
// the structural contract CI relies on: parseable JSON, a traceEvents
// array, and per-event field requirements by phase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/profile.h"

namespace hlsav::metrics {

/// One generic trace event for write_trace_events: a complete span
/// (ph "X", ts+dur), an instant (ph "i", ts), or thread/process
/// metadata (ph "M", `name` = "process_name"/"thread_name" and `label`
/// = the display name). Timestamps are microseconds on whatever clock
/// the producer chose; pid/tid pick the Perfetto track.
struct TraceEvent {
  char ph = 'X';
  std::uint64_t pid = 1;
  std::uint64_t tid = 1;
  std::string name;
  std::string label;  // M events only: args.name
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;  // X events only
};

/// Writes arbitrary events as trace-event JSON (the same dialect
/// write_chrome_trace emits and validate_chrome_trace checks). Used by
/// the hlsavd service tracer, whose spans are wall-clock job lifecycles
/// rather than simulation cycles.
void write_trace_events(const std::vector<TraceEvent>& events, std::ostream& os);

/// Writes `report`'s timeline as trace-event JSON to `os`.
void write_chrome_trace(const ProfileReport& report, std::ostream& os);
/// Same, to a file; returns false (and fills `error`) on I/O failure.
bool write_chrome_trace_file(const ProfileReport& report, const std::string& path,
                             std::string* error = nullptr);

struct ChromeTraceCheck {
  bool ok = false;
  std::string error;     // first violation, "" when ok
  std::size_t events = 0;  // traceEvents entries seen
};

/// Validates trace-event JSON: well-formed, top-level object with a
/// "traceEvents" array, every event an object with a one-char "ph" in
/// {X, i, M} and the fields that phase requires (ts+dur+pid+tid+name
/// for X, ts+pid+tid+name for i, name+pid for M).
[[nodiscard]] ChromeTraceCheck validate_chrome_trace(std::string_view json);
[[nodiscard]] ChromeTraceCheck validate_chrome_trace_file(const std::string& path);

}  // namespace hlsav::metrics
