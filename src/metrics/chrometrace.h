// Chrome trace-event export of a ProfileReport, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Mapping: one trace process (pid 1) per run; each simulated process
// gets two tracks -- a compute track (tid 2i+1) with block/pipeline
// spans and a stall track (tid 2i+2) with per-channel read-stall spans.
// Cycles map 1:1 to microseconds of trace time (ts/dur), so the
// Perfetto ruler reads directly in cycles. Assertion failures are
// thread-scoped instant events on the compute track.
//
// A minimal in-tree validator (no third-party JSON dependency) checks
// the structural contract CI relies on: parseable JSON, a traceEvents
// array, and per-event field requirements by phase.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "metrics/profile.h"

namespace hlsav::metrics {

/// Writes `report`'s timeline as trace-event JSON to `os`.
void write_chrome_trace(const ProfileReport& report, std::ostream& os);
/// Same, to a file; returns false (and fills `error`) on I/O failure.
bool write_chrome_trace_file(const ProfileReport& report, const std::string& path,
                             std::string* error = nullptr);

struct ChromeTraceCheck {
  bool ok = false;
  std::string error;     // first violation, "" when ok
  std::size_t events = 0;  // traceEvents entries seen
};

/// Validates trace-event JSON: well-formed, top-level object with a
/// "traceEvents" array, every event an object with a one-char "ph" in
/// {X, i, M} and the fields that phase requires (ts+dur+pid+tid+name
/// for X, ts+pid+tid+name for i, name+pid for M).
[[nodiscard]] ChromeTraceCheck validate_chrome_trace(std::string_view json);
[[nodiscard]] ChromeTraceCheck validate_chrome_trace_file(const std::string& path);

}  // namespace hlsav::metrics
