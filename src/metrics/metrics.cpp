#include "metrics/metrics.h"

#include <sstream>

namespace hlsav::metrics {

Counter* MetricsRegistry::counter(std::string_view name) {
  auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return it->second;
  counters_.push_back(Counter{std::string(name), 0});
  Counter* c = &counters_.back();
  counter_index_.emplace(c->name, c);
  return c;
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  auto it = histogram_index_.find(std::string(name));
  if (it != histogram_index_.end()) return it->second;
  histograms_.push_back(Histogram{});
  Histogram* h = &histograms_.back();
  h->name = std::string(name);
  histogram_index_.emplace(h->name, h);
  return h;
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "\"counters\": {";
  bool first = true;
  for (const Counter& c : counters_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << c.name << "\": " << c.value;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const Histogram& h : histograms_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << h.name << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"max\": " << h.max << ", \"buckets\": [";
    bool bfirst = true;
    for (unsigned i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) os << ", ";
      bfirst = false;
      os << "{\"le\": " << Histogram::bucket_le(i) << ", \"n\": " << h.buckets[i] << "}";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

std::string MetricsRegistry::render() const {
  std::ostringstream os;
  for (const Counter& c : counters_) os << c.name << " = " << c.value << "\n";
  for (const Histogram& h : histograms_) {
    os << h.name << ": count " << h.count << ", sum " << h.sum << ", max " << h.max;
    if (h.count != 0) {
      os << ", mean " << static_cast<std::uint64_t>(h.mean() + 0.5);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hlsav::metrics
