// Runtime metrics registry: named monotonic counters and log2-bucketed
// histograms.
//
// The profiler (metrics/profile.h) and any future runtime surface share
// one cost model, mirroring SimOptions::ela:
//
//  * disabled: the instrumented component holds a null pointer, so the
//    hot path pays exactly one pointer test;
//  * armed hot path: a counter increment is `++counter->value` through a
//    pointer resolved *once* at init (the registry hands out stable
//    Counter*/Histogram* -- storage is a deque, so registration never
//    moves existing metrics), O(1) with no hashing and no branching;
//  * registration (counter()/histogram()) hashes the name and may
//    allocate -- init-time only, never per event.
//
// Counters are monotonic by construction (add() takes an unsigned
// delta). Histograms bucket by floor(log2(value)): wide enough for
// cycle counts, cheap enough for the hot path, and lossless for the
// count/sum/max summary stats the reports print.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hlsav::metrics {

struct Counter {
  std::string name;
  std::uint64_t value = 0;

  void add(std::uint64_t delta = 1) { value += delta; }
};

/// Log2-bucketed histogram: bucket i counts values whose bit width is i,
/// i.e. bucket 0 holds value 0, bucket 1 holds 1, bucket 2 holds 2-3,
/// bucket 3 holds 4-7, ... Upper bound of bucket i is 2^i - 1.
struct Histogram {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  /// buckets[i] = samples with bit_width(value) == i (64 covers uint64).
  std::vector<std::uint64_t> buckets = std::vector<std::uint64_t>(65, 0);

  void record(std::uint64_t value) {
    ++count;
    sum += value;
    if (value > max) max = value;
    ++buckets[bucket_of(value)];
  }

  [[nodiscard]] static unsigned bucket_of(std::uint64_t value) {
    unsigned w = 0;
    while (value != 0) {
      ++w;
      value >>= 1;
    }
    return w;
  }
  /// Inclusive upper bound of bucket i ("le" in the rendered output).
  [[nodiscard]] static std::uint64_t bucket_le(unsigned i) {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class MetricsRegistry {
 public:
  /// Finds or creates the named counter. The returned pointer is stable
  /// for the registry's lifetime -- resolve once, increment forever.
  Counter* counter(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Registration order (deterministic render / serialization order).
  [[nodiscard]] const std::deque<Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::deque<Histogram>& histograms() const { return histograms_; }

  /// `"counters": {...}, "histograms": {...}` JSON fragment (no braces
  /// around the pair; histogram buckets serialized sparsely as
  /// {"le": bound, "n": count} for non-empty buckets only).
  [[nodiscard]] std::string to_json() const;
  /// Human-readable dump, one metric per line.
  [[nodiscard]] std::string render() const;

 private:
  // Deques: stable element addresses across growth.
  std::deque<Counter> counters_;
  std::deque<Histogram> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
};

}  // namespace hlsav::metrics
