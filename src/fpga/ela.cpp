#include "fpga/ela.h"

#include <iomanip>
#include <sstream>

#include "fpga/area.h"

namespace hlsav::fpga {

ElaReport estimate_ela(const trace::TraceEngine& engine, const ElaCostModel& model) {
  ElaReport r;
  r.buffers = engine.num_buffers();
  r.capacity = engine.config().capacity;
  r.entry_bits = engine.record_bits();
  r.entry_bits_m4k = m4k_width(r.entry_bits);
  r.bram_bits = static_cast<std::uint64_t>(r.buffers) * r.capacity * r.entry_bits_m4k;

  double aluts = 0.0;
  double regs = 0.0;
  aluts += model.alut_buffer_base * static_cast<double>(r.buffers);
  regs += model.reg_buffer_base * static_cast<double>(r.buffers);
  aluts += model.alut_mux_per_bit * engine.max_value_width() * static_cast<double>(r.buffers);
  aluts += model.alut_per_trigger * engine.trigger_count();
  regs += model.reg_per_record_bit * r.entry_bits * static_cast<double>(r.buffers);
  r.aluts = static_cast<std::uint64_t>(aluts);
  r.registers = static_cast<std::uint64_t>(regs);
  return r;
}

double ElaReport::bram_pct(const Device& d) const {
  return 100.0 * static_cast<double>(bram_bits) / static_cast<double>(d.bram_bits);
}

std::string ElaReport::to_string(const Device& d) const {
  std::ostringstream os;
  os << "ela: " << buffers << " buffer(s) x " << capacity << " entries x " << entry_bits
     << " bits (" << entry_bits_m4k << " after M4K rounding)\n";
  os << "  bram " << bram_bits << " bits (" << std::fixed << std::setprecision(2) << bram_pct(d)
     << "% of " << d.name << "), aluts " << aluts << ", regs " << registers << "\n";
  return os.str();
}

}  // namespace hlsav::fpga
