// Area estimation: netlist -> Stratix-II resource counts.
//
// The estimator replaces Quartus. Constants were calibrated once against
// the paper's "Original" columns (see DESIGN.md's calibration policy);
// the Assert/Overhead columns in our benchmark output are then whatever
// the synthesized netlists cost -- nothing is hard-coded per experiment.
//
// Notable Stratix-II realities encoded here:
//  - M4K block RAM stores data in 9-bit columns (width rounds up to a
//    multiple of 9), which is why a 16-deep 32-bit assertion stream FIFO
//    costs 16 * 36 = 576 bits: exactly the +576-bit deltas in the
//    paper's Tables 1 and 2.
//  - "Logic used" packs ALUTs and registers into ALMs; the paper's
//    tables show logic ~ ALUTs + 0.58 * registers, which we adopt.
#pragma once

#include <cstdint>
#include <string>

#include "fpga/device.h"
#include "rtl/netlist.h"

namespace hlsav::fpga {

struct CostModel {
  // Functional units (per operand bit unless noted).
  double alut_per_addsub_bit = 1.0;
  double alut_per_logic_bit = 0.5;
  double alut_per_cmp_bit = 0.35;
  double alut_per_varshift = 0.5;   // per bit, per log2(width) level
  double alut_mul_fixed = 12.0;     // DSP-block glue
  double alut_div_per_bit = 4.0;    // iterative divider datapath
  double alut_mem_port = 6.0;       // address/write-enable decode
  double alut_stream_op = 4.0;      // handshake glue per stream access
  double alut_call_fixed = 8.0;     // external core interface

  // Registers & muxes.
  double alut_per_mux_input_bit = 0.5;  // (fanin - 1) * width * this

  // FSM.
  double alut_per_state = 1.7;
  double alut_per_transition = 0.9;

  // Per-process Impulse-C wrapper (control, handshake, reset).
  double alut_process_base = 24.0;
  double reg_process_base = 32.0;
  // Checker/collector processes are HDL-instrumented glue without the
  // full wrapper (paper §4.2): much smaller bases.
  double alut_assert_proc_base = 6.0;
  double reg_assert_proc_base = 8.0;

  // Streams (Impulse-C co_stream FIFO + controller).
  double alut_per_stream = 26.0;
  double reg_per_stream = 18.0;
  unsigned stream_fifo_depth = 16;

  // Interconnect.
  double interconnect_per_alut = 1.55;
  double interconnect_per_reg = 1.05;
  double interconnect_per_stream = 92.0;
  double interconnect_per_memory = 16.0;

  // ALM packing for the "logic used" column.
  double logic_reg_packing = 0.58;
};

struct AreaReport {
  std::uint64_t logic = 0;
  std::uint64_t aluts = 0;
  std::uint64_t registers = 0;
  std::uint64_t bram_bits = 0;
  std::uint64_t interconnect = 0;

  [[nodiscard]] double logic_pct(const Device& d) const;
  [[nodiscard]] double aluts_pct(const Device& d) const;
  [[nodiscard]] double registers_pct(const Device& d) const;
  [[nodiscard]] double bram_pct(const Device& d) const;
  [[nodiscard]] double interconnect_pct(const Device& d) const;

  [[nodiscard]] std::string to_string(const Device& d) const;
};

/// Rounds a RAM data width up to the M4K 9-bit column granularity.
[[nodiscard]] unsigned m4k_width(unsigned width);

[[nodiscard]] AreaReport estimate_area(const rtl::Netlist& netlist, const CostModel& model = {});

}  // namespace hlsav::fpga
