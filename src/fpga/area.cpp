#include "fpga/area.h"

#include <cmath>
#include <sstream>

#include "support/table.h"

namespace hlsav::fpga {

namespace {

double fu_aluts(const rtl::FuInst& fu, const CostModel& m) {
  switch (fu.kind) {
    case ir::OpKind::kBin:
      switch (fu.bin) {
        case ir::BinKind::kAdd:
        case ir::BinKind::kSub:
          return m.alut_per_addsub_bit * fu.width;
        case ir::BinKind::kAnd:
        case ir::BinKind::kOr:
        case ir::BinKind::kXor:
          return m.alut_per_logic_bit * fu.width;
        case ir::BinKind::kShl:
        case ir::BinKind::kShrL:
        case ir::BinKind::kShrA:
          // Barrel shifter: width x log2(width) mux levels.
          return m.alut_per_varshift * fu.width *
                 std::max(1.0, std::log2(static_cast<double>(fu.width)));
        case ir::BinKind::kMul:
          return m.alut_mul_fixed;  // DSP block + glue
        case ir::BinKind::kDivU:
        case ir::BinKind::kDivS:
        case ir::BinKind::kRemU:
        case ir::BinKind::kRemS:
          return m.alut_div_per_bit * fu.width;
        case ir::BinKind::kCmpEq:
        case ir::BinKind::kCmpNe:
        case ir::BinKind::kCmpLtU:
        case ir::BinKind::kCmpLtS:
        case ir::BinKind::kCmpLeU:
        case ir::BinKind::kCmpLeS:
          return m.alut_per_cmp_bit * fu.width + 1.0;
      }
      return fu.width;
    case ir::OpKind::kUn:
      return fu.un == ir::UnKind::kNeg ? m.alut_per_addsub_bit * fu.width
                                       : 0.0;  // bitwise NOT folds into LUTs
    case ir::OpKind::kLoad:
    case ir::OpKind::kStore:
      return m.alut_mem_port;
    case ir::OpKind::kStreamRead:
    case ir::OpKind::kStreamWrite:
      return m.alut_stream_op;
    case ir::OpKind::kCallExtern:
      return m.alut_call_fixed;
    default:
      return 0.0;
  }
}

}  // namespace

unsigned m4k_width(unsigned width) { return ((width + 8) / 9) * 9; }

AreaReport estimate_area(const rtl::Netlist& n, const CostModel& m) {
  double aluts = 0;
  double regs = 0;
  double interconnect = 0;
  std::uint64_t bram = 0;

  for (const rtl::ProcessNetlist& p : n.processes) {
    bool assert_glue = p.role != ir::ProcessRole::kApplication;
    aluts += assert_glue ? m.alut_assert_proc_base : m.alut_process_base;
    regs += assert_glue ? m.reg_assert_proc_base : m.reg_process_base;

    for (const rtl::FuInst& fu : p.fus) aluts += fu_aluts(fu, m);

    // FSM: one-hot-ish state register plus next-state logic.
    regs += std::max(1.0, std::ceil(std::log2(std::max(2u, p.fsm.states))));
    aluts += m.alut_per_state * p.fsm.states + m.alut_per_transition * p.fsm.transitions;

    for (const rtl::RegInst& r : p.regs) {
      regs += r.width;
      if (r.fanin > 1) aluts += m.alut_per_mux_input_bit * (r.fanin - 1) * r.width;
    }
    regs += static_cast<double>(p.pipeline_stage_reg_bits);
  }

  for (const rtl::MemInst& mem : n.memories) {
    // Data is stored in M4K 9-bit columns.
    bram += static_cast<std::uint64_t>(m4k_width(mem.width)) * mem.size;
  }

  for (const rtl::StreamInst& s : n.streams) {
    aluts += m.alut_per_stream;
    regs += m.reg_per_stream;
    bram += static_cast<std::uint64_t>(s.depth) * m4k_width(s.width + 4);
    interconnect += m.interconnect_per_stream;
  }

  interconnect += m.interconnect_per_alut * aluts + m.interconnect_per_reg * regs +
                  m.interconnect_per_memory * static_cast<double>(n.memories.size());

  AreaReport r;
  r.aluts = static_cast<std::uint64_t>(aluts);
  r.registers = static_cast<std::uint64_t>(regs);
  r.logic = static_cast<std::uint64_t>(aluts + m.logic_reg_packing * regs);
  r.bram_bits = bram;
  r.interconnect = static_cast<std::uint64_t>(interconnect);
  return r;
}

double AreaReport::logic_pct(const Device& d) const {
  return 100.0 * static_cast<double>(logic) / static_cast<double>(d.logic);
}
double AreaReport::aluts_pct(const Device& d) const {
  return 100.0 * static_cast<double>(aluts) / static_cast<double>(d.aluts);
}
double AreaReport::registers_pct(const Device& d) const {
  return 100.0 * static_cast<double>(registers) / static_cast<double>(d.registers);
}
double AreaReport::bram_pct(const Device& d) const {
  return 100.0 * static_cast<double>(bram_bits) / static_cast<double>(d.bram_bits);
}
double AreaReport::interconnect_pct(const Device& d) const {
  return 100.0 * static_cast<double>(interconnect) / static_cast<double>(d.interconnect);
}

std::string AreaReport::to_string(const Device& d) const {
  std::ostringstream os;
  os << "logic " << fmt_count_pct(static_cast<long long>(logic), logic_pct(d)) << ", aluts "
     << fmt_count_pct(static_cast<long long>(aluts), aluts_pct(d)) << ", regs "
     << fmt_count_pct(static_cast<long long>(registers), registers_pct(d)) << ", bram "
     << fmt_count_pct(static_cast<long long>(bram_bits), bram_pct(d)) << ", interconnect "
     << fmt_count_pct(static_cast<long long>(interconnect), interconnect_pct(d));
  return os.str();
}

}  // namespace hlsav::fpga
