// FPGA device descriptions.
//
// The paper's platform is an XtremeData XD1000 carrying an Altera
// Stratix-II EP2S180; every resource total below is the denominator the
// paper's percentage columns use (Tables 1-2, Figs. 4-5).
#pragma once

#include <cstdint>
#include <string>

namespace hlsav::fpga {

struct Device {
  std::string name;
  std::uint64_t aluts = 0;          // combinational ALUTs
  std::uint64_t logic = 0;          // "logic used" packing denominator
  std::uint64_t registers = 0;
  std::uint64_t bram_bits = 0;      // block RAM bits
  std::uint64_t interconnect = 0;   // block interconnect lines

  static Device ep2s180() {
    Device d;
    d.name = "Altera Stratix-II EP2S180";
    d.aluts = 143520;
    d.logic = 143520;
    d.registers = 143520;
    d.bram_bits = 9383040;
    d.interconnect = 536440;
    return d;
  }
};

}  // namespace hlsav::fpga
