#include "fpga/timing.h"

#include <algorithm>

#include "support/str.h"

namespace hlsav::fpga {

TimingReport estimate_fmax(const rtl::Netlist& n, const Device& device, const TimingModel& m,
                           const CostModel& cost) {
  TimingReport rep;

  // Critical path over all processes.
  double worst = m.t_base_ns;
  for (const rtl::ProcessNetlist& p : n.processes) {
    double t = m.t_base_ns + m.t_level_ns * p.max_chain_depth +
               m.t_carry_bit_ns * p.max_carry_width + (p.has_multiplier ? m.t_mul_ns : 0.0);
    if (t > worst) {
      worst = t;
      rep.critical_process = p.name;
    }
  }
  rep.critical_path_ns = worst;
  double fmax = 1000.0 / worst;

  // Routing congestion: global (CPU-facing) stream wiring plus overall
  // utilization. Local process-to-process streams stay in-region.
  double global_bits = 0;
  for (const rtl::StreamInst& s : n.streams) {
    if (s.cpu_facing) global_bits += s.width + 4;
  }
  AreaReport area = estimate_area(n, cost);
  double util = static_cast<double>(area.aluts) / static_cast<double>(device.aluts);
  rep.congestion_factor = 1.0 + m.congestion_per_global_bit * global_bits +
                          m.congestion_alut_util * util;
  fmax /= rep.congestion_factor;

  // Deterministic place-and-route variation, seeded by structure.
  if (m.enable_noise) {
    std::uint64_t h = fnv1a(n.design_name);
    h ^= 0x9e3779b97f4a7c15ull * (n.streams.size() + 1);
    h ^= 0xc2b2ae3d27d4eb4full * (area.aluts + 1);
    h ^= 0x165667b19e3779f9ull * (area.registers + 1);
    SplitMix64 rng(h);
    rep.noise = (rng.next_double() * 2.0 - 1.0) * m.noise_amplitude;
    fmax *= 1.0 + rep.noise;
  }

  rep.fmax_mhz = fmax;
  return rep;
}

}  // namespace hlsav::fpga
