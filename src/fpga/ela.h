// ELA overhead model: what the trace subsystem costs on the FPGA.
//
// The trace engine (src/trace) models an embedded logic analyzer: one
// BRAM ring buffer per traced process plus trigger comparators on the
// assertion failure wires and a signal-selection mux in front of each
// buffer. This file prices that debug overlay in the same Stratix-II
// terms as fpga/area.h, so a user can weigh "always-on tracing" against
// the paper's assertion overhead numbers:
//
//  * BRAM: capacity * record_bits per buffer, with the record width
//    rounded up to the M4K 9-bit column granularity like any other RAM.
//  * ALUTs: trigger comparators (one per traced assertion failure wire),
//    the capture mux (proportional to the widest captured value), and a
//    fixed control core per buffer (write pointer FSM, trigger arm/fire).
//  * Registers: write/trigger pointers and the capture pipeline stage.
#pragma once

#include <cstdint>
#include <string>

#include "fpga/device.h"
#include "trace/trace.h"

namespace hlsav::fpga {

struct ElaCostModel {
  // Per-buffer control core: write-pointer FSM, trigger arm/fire logic.
  double alut_buffer_base = 18.0;
  double reg_buffer_base = 12.0;
  // Capture mux in front of a buffer, per captured value bit.
  double alut_mux_per_bit = 0.5;
  // One trigger comparator per traced assertion failure wire.
  double alut_per_trigger = 2.0;
  // Capture pipeline register, per record bit (timestamp + payload).
  double reg_per_record_bit = 1.0;
};

struct ElaReport {
  std::size_t buffers = 0;       // instantiated ring buffers
  std::size_t capacity = 0;      // entries per buffer
  unsigned entry_bits = 0;       // raw record width
  unsigned entry_bits_m4k = 0;   // record width after 9-bit column rounding
  std::uint64_t bram_bits = 0;
  std::uint64_t aluts = 0;
  std::uint64_t registers = 0;

  [[nodiscard]] double bram_pct(const Device& d) const;
  [[nodiscard]] std::string to_string(const Device& d) const;
};

/// Prices the ELA configuration an armed TraceEngine represents.
[[nodiscard]] ElaReport estimate_ela(const trace::TraceEngine& engine,
                                     const ElaCostModel& model = {});

}  // namespace hlsav::fpga
