// Maximum-frequency estimation: netlist -> Fmax (MHz).
//
// Replaces the Quartus timing analyzer. The model is:
//
//   T_proc = t_base + t_level * max_chain_depth + t_carry * max_carry
//            (+ t_mul if a DSP multiply is chained)
//   Fmax0  = 1000 / max_over_processes(T_proc)
//   Fmax   = Fmax0 / (1 + c_global * global_stream_bits
//                       + c_util  * alut_utilization)
//            * (1 + noise)
//
// The congestion term is what reproduces Fig. 4: every stream adds
// global routing; 128 one-per-process failure streams sink Fmax by
// ~19%, while 32-to-1 packed channels (4 streams) cost ~1%.
//
// `noise` is deterministic pseudo-variation seeded from the netlist
// contents, modelling place-and-route luck: the paper itself attributes
// the DES -2.5% / edge-detect +2.3% deltas to exactly this effect.
#pragma once

#include "fpga/area.h"
#include "fpga/device.h"
#include "rtl/netlist.h"

namespace hlsav::fpga {

struct TimingModel {
  double t_base_ns = 3.6;
  double t_level_ns = 0.42;
  double t_carry_bit_ns = 0.02;
  double t_mul_ns = 2.4;
  /// Only CPU-facing streams are global: they all route to the single
  /// time-multiplexed physical channel (paper §3), so each one adds
  /// chip-crossing wiring. Process-to-process streams are local.
  double congestion_per_global_bit = 5.1e-5;
  double congestion_alut_util = 0.20;
  double noise_amplitude = 0.025;  // +/- 2.5 %
  bool enable_noise = true;
};

struct TimingReport {
  double fmax_mhz = 0.0;
  double critical_path_ns = 0.0;
  std::string critical_process;
  double congestion_factor = 1.0;  // divisor applied to raw Fmax
  double noise = 0.0;              // applied multiplicative noise
};

[[nodiscard]] TimingReport estimate_fmax(const rtl::Netlist& netlist, const Device& device,
                                         const TimingModel& model = {},
                                         const CostModel& cost = {});

}  // namespace hlsav::fpga
