// C source emission for the compiled-simulation backend.
//
// emit_design() walks every scheduled application process and lowers its
// FSMD to one specialized C function: ops are monomorphized to their
// literal widths as native uint64_t arithmetic, blocks become labels
// joined by gotos, and the schedule's state offsets are folded into the
// timestamps handed to the simulator callbacks. The emitted translation
// unit is self-contained C99 whose only runtime dependency is the
// callback table described by sim/compiled.h.
//
// Emission is per-process best-effort: a process codegen cannot
// represent faithfully (a register, memory or immediate wider than 64
// bits, or a missing schedule) is declined with a reason and left to the
// interpreter; the rest of the design still compiles.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "sched/schedule.h"

namespace hlsav::codegen {

/// Outcome of emitting one application process.
struct ProcEmit {
  std::string process;
  std::string symbol;          // exported function name; empty when declined
  std::string decline_reason;  // why codegen declined (symbol empty)

  [[nodiscard]] bool compiled() const { return !symbol.empty(); }
};

struct EmitResult {
  /// Complete C translation unit (prelude, process functions, entry
  /// registry). Does not yet contain the design key; the jit appends it
  /// after hashing -- see jit::content_key.
  std::string source;
  /// One entry per application process, in declaration order.
  std::vector<ProcEmit> procs;

  [[nodiscard]] std::size_t compiled_count() const {
    std::size_t n = 0;
    for (const ProcEmit& p : procs) n += p.compiled() ? 1 : 0;
    return n;
  }
};

/// Lowers every scheduled application process of `design` to C.
[[nodiscard]] EmitResult emit_design(const ir::Design& design,
                                     const sched::DesignSchedule& schedule);

}  // namespace hlsav::codegen
