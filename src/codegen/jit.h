// Host-toolchain driver and on-disk cache for the compiled-simulation
// backend: turns the C source produced by emit_design() into a loaded
// shared object, content-addressed so repeated runs of the same design
// skip the compiler entirely.
//
// Everything here degrades gracefully: no compiler on PATH, an
// unwritable cache directory, or a failed compile all surface as Status
// errors the engine converts into an interpreter fallback -- never a
// hard failure of the simulation run.
#pragma once

#include <cstdint>
#include <string>

#include "support/status.h"

namespace hlsav::codegen {

/// Locates a C compiler: $HLSAV_CC if set (absolute path or command
/// name, trusted verbatim), otherwise the first of cc/gcc/clang/c++/g++
/// found on PATH. Empty string when none is available.
[[nodiscard]] std::string find_compiler();

/// Cache directory resolution: $HLSAV_CACHE_DIR, else
/// $XDG_CACHE_HOME/hlsav, else $HOME/.cache/hlsav, else /tmp/hlsav-cache.
/// The directory is not created here; compile_module does that lazily.
[[nodiscard]] std::string default_cache_dir();

/// Content address of a generated module: FNV-1a over the emitted
/// source, the compiler identity, the toolchain git revision and the
/// ABI version. Any of those changing yields a different .so path, so
/// stale cache entries are simply never looked up again.
[[nodiscard]] std::string content_key(const std::string& source, const std::string& compiler);

/// A compiled+loaded module. The dlopen handle stays open for the
/// lifetime of the object (compiled code may be executing); the design
/// key and entry table are read via jit internals in engine.cpp.
struct LoadedModule {
  void* dl = nullptr;
  std::string path;        // cached .so backing the handle
  std::string key;         // content key it was stored under
  bool from_cache = false;  // true when no compiler invocation was needed

  LoadedModule() = default;
  LoadedModule(const LoadedModule&) = delete;
  LoadedModule& operator=(const LoadedModule&) = delete;
  LoadedModule(LoadedModule&& o) noexcept { *this = std::move(o); }
  LoadedModule& operator=(LoadedModule&& o) noexcept;
  ~LoadedModule();
};

struct CompileOptions {
  std::string compiler;   // empty = find_compiler()
  std::string cache_dir;  // empty = default_cache_dir()
  bool keep_source = false;  // leave <key>.c next to the .so for inspection
};

/// Compiles `source` (appending the design-key symbol) and dlopens the
/// result, or returns the cached .so when one exists for this key.
[[nodiscard]] StatusOr<LoadedModule> compile_module(const std::string& source,
                                                    const CompileOptions& opt);

/// Resolves `symbol` in a loaded module; null when absent.
[[nodiscard]] void* module_symbol(const LoadedModule& m, const char* symbol);

}  // namespace hlsav::codegen
