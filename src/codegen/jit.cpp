#include "codegen/jit.h"

#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "sim/compiled.h"
#include "support/io.h"

#ifndef HLSAV_GIT_SHA
#define HLSAV_GIT_SHA "unknown"
#endif

namespace hlsav::codegen {

namespace {

bool executable_at(const std::string& path) { return ::access(path.c_str(), X_OK) == 0; }

std::string path_lookup(const std::string& name) {
  const char* path = std::getenv("PATH");
  if (path == nullptr) return {};
  std::stringstream ss(path);
  std::string dir;
  while (std::getline(ss, dir, ':')) {
    if (dir.empty()) continue;
    std::string cand = dir + "/" + name;
    if (executable_at(cand)) return cand;
  }
  return {};
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string read_log_tail(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  // First few lines carry the actual error; the rest is usually notes.
  std::size_t cut = 0;
  for (int lines = 0; cut < all.size() && lines < 6; ++cut) {
    if (all[cut] == '\n') ++lines;
  }
  return all.substr(0, cut);
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('\'');
  return out;
}

/// Opens `path` and validates the module's ABI stamp and design key.
/// Returns the handle or an explanation of why the file is unusable.
StatusOr<void*> open_and_check(const std::string& path, const std::string& key) {
  void* dl = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (dl == nullptr) {
    const char* err = ::dlerror();
    return Status::io_error("dlopen failed: " + std::string(err != nullptr ? err : "?"));
  }
  auto* abi = static_cast<const std::uint32_t*>(::dlsym(dl, "hlsav_abi"));
  auto* dkey = static_cast<const char*>(::dlsym(dl, "hlsav_design_key"));
  if (abi == nullptr || dkey == nullptr) {
    ::dlclose(dl);
    return Status::io_error("module lacks hlsav_abi/hlsav_design_key symbols");
  }
  if (*abi != sim::kCompiledAbiVersion) {
    ::dlclose(dl);
    return Status::io_error("module ABI " + std::to_string(*abi) + " != expected " +
                            std::to_string(sim::kCompiledAbiVersion));
  }
  if (key != dkey) {
    ::dlclose(dl);
    return Status::io_error("module design key mismatch");
  }
  return dl;
}

}  // namespace

LoadedModule& LoadedModule::operator=(LoadedModule&& o) noexcept {
  if (this != &o) {
    if (dl != nullptr) ::dlclose(dl);
    dl = std::exchange(o.dl, nullptr);
    path = std::move(o.path);
    key = std::move(o.key);
    from_cache = o.from_cache;
  }
  return *this;
}

LoadedModule::~LoadedModule() {
  if (dl != nullptr) ::dlclose(dl);
}

std::string find_compiler() {
  const char* env = std::getenv("HLSAV_CC");
  if (env != nullptr && env[0] != '\0') return env;
  for (const char* cand : {"cc", "gcc", "clang", "c++", "g++"}) {
    std::string found = path_lookup(cand);
    if (!found.empty()) return found;
  }
  return {};
}

std::string default_cache_dir() {
  const char* env = std::getenv("HLSAV_CACHE_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  const char* xdg = std::getenv("XDG_CACHE_HOME");
  if (xdg != nullptr && xdg[0] != '\0') return std::string(xdg) + "/hlsav";
  const char* home = std::getenv("HOME");
  if (home != nullptr && home[0] != '\0') return std::string(home) + "/.cache/hlsav";
  return "/tmp/hlsav-cache";
}

std::string content_key(const std::string& source, const std::string& compiler) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, source);
  h = fnv1a(h, compiler);
  h = fnv1a(h, HLSAV_GIT_SHA);
  h = fnv1a(h, std::to_string(sim::kCompiledAbiVersion));
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

StatusOr<LoadedModule> compile_module(const std::string& source, const CompileOptions& opt) {
  std::string compiler = opt.compiler.empty() ? find_compiler() : opt.compiler;
  if (compiler.empty()) {
    return Status::error(StatusCode::kSimError,
                         "no C compiler found (set HLSAV_CC or install cc/gcc/clang)");
  }
  const std::string key = content_key(source, compiler);
  const std::string dir = opt.cache_dir.empty() ? default_cache_dir() : opt.cache_dir;
  const std::string base = dir + "/hlsav-" + key;
  const std::string so_path = base + ".so";

  // Cache probe: a readable .so under this key was built from byte-for-
  // byte identical source by an identical toolchain.
  if (::access(so_path.c_str(), R_OK) == 0) {
    StatusOr<void*> dl = open_and_check(so_path, key);
    if (dl.ok()) {
      LoadedModule m;
      m.dl = *dl;
      m.path = so_path;
      m.key = key;
      m.from_cache = true;
      return StatusOr<LoadedModule>(std::move(m));
    }
    // Corrupt or stale entry: drop it and rebuild below.
    std::error_code ec;
    std::filesystem::remove(so_path, ec);
  }

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::io_error("cannot create cache directory '" + dir + "': " + ec.message());
  }

  // Unique temp names (pid-qualified) so concurrent builds of the same
  // design race benignly: last rename wins, both results are identical.
  const std::string tag = "." + std::to_string(::getpid()) + ".tmp";
  const std::string c_path = base + tag + ".c";
  const std::string tmp_so = base + tag + ".so";
  const std::string log_path = base + tag + ".log";

  std::string full = source;
  full += "const char hlsav_design_key[] = \"" + key + "\";\n";
  HLSAV_RETURN_IF_ERROR(write_file_atomic(c_path, full));

  std::string cmd = shell_quote(compiler) + " -O2 -fPIC -shared -xc " + shell_quote(c_path) +
                    " -o " + shell_quote(tmp_so) + " 2> " + shell_quote(log_path);
  int rc = std::system(cmd.c_str());
  if (rc > 0xff) rc = WEXITSTATUS(rc);  // decode the shell's wait status
  std::string log = read_log_tail(log_path);
  std::filesystem::remove(log_path, ec);
  if (opt.keep_source) {
    std::filesystem::rename(c_path, base + ".c", ec);
  } else {
    std::filesystem::remove(c_path, ec);
  }
  if (rc != 0) {
    std::filesystem::remove(tmp_so, ec);
    return Status::error(StatusCode::kSimError,
                         "compiler exited with status " + std::to_string(rc) +
                             (log.empty() ? std::string() : ":\n" + log));
  }
  std::filesystem::rename(tmp_so, so_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_so, ec);
    return Status::io_error("cannot publish compiled module to '" + so_path + "'");
  }

  StatusOr<void*> dl = open_and_check(so_path, key);
  if (!dl.ok()) return dl.status();
  LoadedModule m;
  m.dl = *dl;
  m.path = so_path;
  m.key = key;
  m.from_cache = false;
  return StatusOr<LoadedModule>(std::move(m));
}

void* module_symbol(const LoadedModule& m, const char* symbol) {
  return m.dl != nullptr ? ::dlsym(m.dl, symbol) : nullptr;
}

}  // namespace hlsav::codegen
