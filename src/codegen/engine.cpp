#include "codegen/engine.h"

#include <cstdint>
#include <utility>

namespace hlsav::codegen {

namespace {

// Generated registry row; layout matches the hlsav_entry_t the emitter
// writes into every module (name pointer + function pointer).
struct EntryRow {
  const char* name;
  sim::CompiledProcFn fn;
};

}  // namespace

StatusOr<std::unique_ptr<CompiledDesign>> prepare(const ir::Design& design,
                                                  const sched::DesignSchedule& schedule,
                                                  const PrepareOptions& opt) {
  EmitResult emitted = emit_design(design, schedule);
  if (emitted.compiled_count() == 0) {
    std::string why = "codegen declined every process";
    for (const ProcEmit& pe : emitted.procs) {
      if (!pe.decline_reason.empty()) {
        why += "; '" + pe.process + "': " + pe.decline_reason;
      }
    }
    return Status::error(StatusCode::kSimError, why);
  }

  CompileOptions copt;
  copt.compiler = opt.compiler;
  copt.cache_dir = opt.cache_dir;
  copt.keep_source = opt.keep_source;
  StatusOr<LoadedModule> module = compile_module(emitted.source, copt);
  if (!module.ok()) return module.status();

  const auto* rows = static_cast<const EntryRow*>(module_symbol(*module, "hlsav_entries"));
  const auto* count =
      static_cast<const std::uint32_t*>(module_symbol(*module, "hlsav_entry_count"));
  if (rows == nullptr || count == nullptr) {
    return Status::io_error("compiled module lacks its entry registry");
  }
  if (*count != emitted.compiled_count()) {
    return Status::io_error("compiled module entry count mismatch");
  }

  sim::CompiledDesignHandle handle;
  handle.key = module->key;
  handle.procs.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    if (rows[i].name == nullptr || rows[i].fn == nullptr) {
      return Status::io_error("compiled module entry registry is malformed");
    }
    handle.procs.push_back(sim::CompiledProc{rows[i].name, rows[i].fn});
  }

  return std::make_unique<CompiledDesign>(std::move(*module), std::move(handle),
                                          std::move(emitted.procs));
}

}  // namespace hlsav::codegen
