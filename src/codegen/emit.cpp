#include "codegen/emit.h"

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/compiled.h"
#include "support/diagnostics.h"

namespace hlsav::codegen {

namespace {

using ir::BasicBlock;
using ir::BinKind;
using ir::Op;
using ir::OpKind;
using ir::Operand;
using ir::Process;
using ir::Terminator;

// ------------------------------------------------------------ helpers --

std::string u64_lit(std::uint64_t v) {
  std::ostringstream os;
  os << "UINT64_C(0x" << std::hex << v << ")";
  return os.str();
}

std::string mask_lit(unsigned width) {
  return u64_lit(width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1);
}

std::string c_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool is_callback_op(OpKind k) {
  switch (k) {
    case OpKind::kStreamRead:
    case OpKind::kStreamWrite:
    case OpKind::kCallExtern:
    case OpKind::kAssert:
    case OpKind::kAssertTap:
    case OpKind::kAssertFailWire:
    case OpKind::kAssertCycles:
      return true;
    default:
      return false;
  }
}

unsigned callback_slot(OpKind k) {
  switch (k) {
    case OpKind::kStreamRead:
      return sim::kCbStreamRead;
    case OpKind::kStreamWrite:
      return sim::kCbStreamWrite;
    case OpKind::kCallExtern:
      return sim::kCbExtern;
    default:
      return sim::kCbAssert;
  }
}

// The shared C prelude: two typedefs mirroring sim/compiled.h and the
// width-exact arithmetic helpers that replicate BitVector semantics on
// native uint64_t (results always masked to their declared width).
void emit_prelude(std::ostringstream& os) {
  os << "/* hlsav compiled-simulation module (generated; do not edit). */\n"
        "#include <stdint.h>\n"
        "\n"
        "typedef uint32_t (*hlsav_cb_op_fn)(void*, uint32_t, uint32_t, uint32_t, uint64_t);\n"
        "typedef uint32_t (*hlsav_cb_poll_fn)(void*);\n"
        "typedef uint64_t (*hlsav_proc_fn)(uint64_t*, uint64_t*, uint64_t* const*, void*,\n"
        "                                  const void* const*);\n"
        "\n"
        "#define HLSAV_RET(tag) ((uint64_t)(tag) << 32)\n"
        "\n"
        "static inline int64_t hlsav_sx(uint64_t v, uint32_t w) {\n"
        "  return (int64_t)(v << (64u - w)) >> (64u - w);\n"
        "}\n"
        "static inline uint64_t hlsav_udiv(uint64_t a, uint64_t b, uint64_t m) {\n"
        "  return b == 0u ? m : a / b; /* x/0 reads all-ones in hardware */\n"
        "}\n"
        "static inline uint64_t hlsav_urem(uint64_t a, uint64_t b) {\n"
        "  return b == 0u ? a : a % b;\n"
        "}\n"
        "static inline uint64_t hlsav_sdiv(uint64_t a, uint64_t b, uint32_t w, uint64_t m) {\n"
        "  uint64_t sa = (a >> (w - 1u)) & 1u;\n"
        "  uint64_t sb = (b >> (w - 1u)) & 1u;\n"
        "  uint64_t n, d, q;\n"
        "  if (b == 0u) return m;\n"
        "  n = sa ? (0u - a) & m : a;\n"
        "  d = sb ? (0u - b) & m : b;\n"
        "  q = n / d;\n"
        "  return sa != sb ? (0u - q) & m : q;\n"
        "}\n"
        "static inline uint64_t hlsav_srem(uint64_t a, uint64_t b, uint32_t w, uint64_t m) {\n"
        "  uint64_t sa, n, d, r;\n"
        "  if (b == 0u) return a;\n"
        "  sa = (a >> (w - 1u)) & 1u;\n"
        "  n = sa ? (0u - a) & m : a;\n"
        "  d = ((b >> (w - 1u)) & 1u) ? (0u - b) & m : b;\n"
        "  r = n % d;\n"
        "  return sa ? (0u - r) & m : r;\n"
        "}\n"
        "static inline uint64_t hlsav_shl(uint64_t a, uint64_t sh, uint32_t w, uint64_t m) {\n"
        "  return sh >= w ? 0u : (a << sh) & m;\n"
        "}\n"
        "static inline uint64_t hlsav_lshr(uint64_t a, uint64_t sh, uint32_t w) {\n"
        "  return sh >= w ? 0u : a >> sh;\n"
        "}\n"
        "static inline uint64_t hlsav_ashr(uint64_t a, uint64_t sh, uint32_t w, uint64_t m) {\n"
        "  uint64_t s = (a >> (w - 1u)) & 1u;\n"
        "  uint64_t v;\n"
        "  if (sh >= w) return s ? m : 0u;\n"
        "  v = a >> sh;\n"
        "  if (s && sh != 0u) v |= m ^ (m >> sh);\n"
        "  return v;\n"
        "}\n\n";
}

// --------------------------------------------------------- decline scan --

std::string check_operand(const Operand& o) {
  if (o.is_imm() && o.imm.width() > 64) return "immediate wider than 64 bits";
  return {};
}

/// Returns a reason when codegen cannot faithfully represent `p`, or an
/// empty string when emission may proceed.
std::string decline_reason(const ir::Design& design, const Process& p,
                           const sched::ProcessSchedule* ps) {
  if (ps == nullptr) return "no schedule for process";
  if (ps->blocks.size() < p.blocks.size()) return "schedule does not cover every block";
  for (const ir::Register& r : p.regs) {
    if (r.width > 64) {
      return "register '" + r.name + "' is " + std::to_string(r.width) +
             " bits wide (compiled engine limit is 64)";
    }
  }
  for (const BasicBlock& b : p.blocks) {
    for (const Op& op : b.ops) {
      for (const Operand& a : op.args) {
        std::string r = check_operand(a);
        if (!r.empty()) return r;
      }
      std::string r = check_operand(op.pred);
      if (!r.empty()) return r;
      if (op.is_memory_access() && design.memory(op.mem).width > 64) {
        return "memory '" + design.memory(op.mem).name + "' is " +
               std::to_string(design.memory(op.mem).width) +
               " bits wide (compiled engine limit is 64)";
      }
    }
    std::string r = check_operand(b.term.cond);
    if (!r.empty()) return r;
    // Canonical loop shape: a pipelined body is entered only through its
    // own header's loop test (that edge is internal to emit_pipelined,
    // which inlines the body under the header). Any other terminator
    // jumping straight into a body would bypass the pipeline
    // bookkeeping, so decline such (malformed) CFGs.
    for (ir::BlockId t : {b.term.on_true, b.term.on_false}) {
      if (t == ir::kNoBlock) continue;
      const ir::LoopInfo* l = p.loop_with_body(t);
      if (l != nullptr && l->pipelined && b.id != l->header) {
        return "terminator targets a pipelined loop body";
      }
    }
  }
  return {};
}

// ------------------------------------------------------- process emitter --

class ProcEmitter {
 public:
  ProcEmitter(const ir::Design& design, const Process& p, const sched::ProcessSchedule& sched,
              std::uint32_t pidx, std::string symbol)
      : design_(design), p_(p), sched_(sched), pidx_(pidx), symbol_(std::move(symbol)) {
    for (std::size_t i = 0; i < p_.loops.size(); ++i) {
      const ir::LoopInfo& l = p_.loops[i];
      if (!l.pipelined) continue;
      header_loop_[l.header] = static_cast<std::uint32_t>(i);
      pipe_body_.push_back(l.body);
    }
  }

  std::string emit() {
    os_ << "/* process '" << c_escape(p_.name) << "' */\n";
    os_ << "static uint64_t " << symbol_
        << "(uint64_t* r, uint64_t* st, uint64_t* const* mem, void* sim,\n"
        << "    const void* const* cb) {\n"
        << "  uint64_t ib = 0;\n"
        << "  (void)r; (void)mem; (void)ib;\n";
    emit_dispatch();
    for (const BasicBlock& b : p_.blocks) {
      if (is_pipe_body(b.id)) continue;  // emitted inline inside its header
      auto it = header_loop_.find(b.id);
      if (it != header_loop_.end()) {
        emit_pipelined(b, it->second);
      } else {
        emit_sequential(b);
      }
    }
    os_ << "}\n\n";
    return os_.str();
  }

 private:
  // ---- naming ----
  static std::string blk_f(ir::BlockId b) { return "B" + std::to_string(b) + "_f"; }
  static std::string blk_c(ir::BlockId b) { return "B" + std::to_string(b) + "_c"; }
  static std::string blk_loop(ir::BlockId b) { return "B" + std::to_string(b) + "_loop"; }
  static std::string op_label(ir::BlockId b, std::size_t i) {
    return "L" + std::to_string(b) + "_" + std::to_string(i);
  }
  static std::string stw(std::uint32_t word) { return "st[" + std::to_string(word) + "]"; }

  [[nodiscard]] bool is_pipe_body(ir::BlockId b) const {
    for (ir::BlockId x : pipe_body_) {
      if (x == b) return true;
    }
    return false;
  }

  // ---- operands ----
  [[nodiscard]] unsigned width_of(const Operand& o) const {
    return o.is_reg() ? p_.reg(o.reg).width : o.imm.width();
  }
  [[nodiscard]] std::string val(const Operand& o) const {
    if (o.is_reg()) return "r[" + std::to_string(o.reg) + "]";
    return u64_lit(o.imm.to_u64());
  }

  // ---- prologue shared by every block: halt, deadline, cycle limit.
  // Mirrors the interpreter's step_process loop top (same order).
  void emit_checks() {
    os_ << "  if (" << stw(sim::kStHalt) << " != 0u) return HLSAV_RET(" << sim::kRetHalted
        << "u);\n";
    os_ << "  if ((" << stw(sim::kStFlags) << " & " << sim::kStFlagDeadline
        << "u) != 0u) {\n"
        << "    if (((hlsav_cb_poll_fn)cb[" << sim::kCbPoll << "])(sim) != 0u) return HLSAV_RET("
        << sim::kRetHalted << "u);\n"
        << "  }\n";
    os_ << "  if (" << stw(sim::kStCycle) << " > " << stw(sim::kStMaxCycles)
        << ") return HLSAV_RET(" << sim::kRetCycleLimit << "u);\n";
  }

  // Resume dispatch: jump back to the callback op recorded in kStResumeOp.
  // `indices` are (resume index -> op label) pairs; `pipe` recomputes the
  // iteration base the interpreter refreshes on every re-entry.
  void emit_resume_switch(ir::BlockId blk, const std::vector<std::size_t>& indices,
                          unsigned ii, bool pipe) {
    if (indices.empty()) return;
    os_ << "  switch ((uint32_t)" << stw(sim::kStResumeOp) << ") {\n";
    for (std::size_t i : indices) {
      os_ << "    case " << i << "u: ";
      if (pipe) {
        os_ << "ib = " << stw(sim::kStPipeStart) << " + " << stw(sim::kStPipeIter) << " * " << ii
            << "u; ";
      }
      os_ << "goto " << op_label(blk, i) << ";\n";
    }
    os_ << "    default: break;\n  }\n";
  }

  /// One op. `at_expr` is the timestamp for callback ops; `resume_idx`
  /// the value stored into kStResumeOp; `progressed_before` whether any
  /// earlier op of this block invocation already executed (decides the
  /// pre-label progress mark, matching the interpreter's per-op
  /// progress accounting).
  /// `b` names the emission context (label + resume bookkeeping): for a
  /// pipelined body op that is the *header* block and `resume_idx` the
  /// combined header+body index. The callback, by contrast, must name
  /// the op's real IR coordinates -- `cb_block`/`cb_op` -- because the
  /// simulator re-fetches the Op from the design by those.
  void emit_op(const BasicBlock& b, const Op& op, std::size_t resume_idx, ir::BlockId cb_block,
               std::size_t cb_op, const std::string& at_expr, bool progressed_before) {
    os_ << "  /* op " << resume_idx << ": " << ir::op_kind_name(op.kind) << " */\n";
    // Predicate: immediates fold at emission time.
    bool close_pred = false;
    if (!op.pred.is_none()) {
      if (op.pred.is_imm()) {
        bool v = op.pred.imm.any();
        bool active = op.pred_negated ? !v : v;
        if (!active) return;  // statically skipped
      } else {
        os_ << "  if (" << val(op.pred) << (op.pred_negated ? " == 0u" : " != 0u") << ") {\n";
        close_pred = true;
      }
    }
    if (is_callback_op(op.kind)) {
      // The label sits after the progress mark so a resumed (re-tried)
      // op that blocks again reports no progress, exactly like the
      // interpreter re-entering exec_op at the saved op index.
      if (progressed_before) os_ << "  " << stw(sim::kStProgress) << " = 1u;\n";
      os_ << op_label(b.id, resume_idx) << ": ;\n";
      os_ << "  " << stw(sim::kStResumeOp) << " = " << resume_idx << "u;\n";
      os_ << "  {\n    uint32_t s_ = ((hlsav_cb_op_fn)cb[" << callback_slot(op.kind)
          << "])(sim, " << pidx_ << "u, " << cb_block << "u, " << cb_op << "u, " << at_expr
          << ");\n"
          << "    if (s_ == " << sim::kCbBlocked << "u) return HLSAV_RET(" << sim::kRetBlocked
          << "u);\n"
          << "    if (s_ == " << sim::kCbHalt << "u) " << stw(sim::kStHalt) << " = 1u;\n"
          << "  }\n";
    } else {
      emit_pure_op(op);
    }
    if (close_pred) os_ << "  }\n";
  }

  void emit_pure_op(const Op& op) {
    // kStore is the one pure op with no destination register.
    const unsigned dw = op.dest != ir::kNoReg ? p_.reg(op.dest).width : 0;
    const std::string m = mask_lit(dw);
    const std::string d = "r[" + std::to_string(op.dest) + "]";
    switch (op.kind) {
      case OpKind::kBin:
        os_ << "  " << d << " = " << bin_expr(op) << ";\n";
        break;
      case OpKind::kUn: {
        const std::string a = val(op.args[0]);
        if (op.un == ir::UnKind::kNeg) {
          os_ << "  " << d << " = (0u - " << a << ") & " << m << ";\n";
        } else {
          os_ << "  " << d << " = (~" << a << ") & " << m << ";\n";
        }
        break;
      }
      case OpKind::kCopy:
        os_ << "  " << d << " = " << val(op.args[0]) << ";\n";
        break;
      case OpKind::kResize: {
        const unsigned sw = width_of(op.args[0]);
        const std::string a = val(op.args[0]);
        if (dw <= sw) {
          os_ << "  " << d << " = " << a << " & " << m << ";\n";
        } else if (op.resize == ir::ResizeKind::kSext) {
          os_ << "  " << d << " = (uint64_t)hlsav_sx(" << a << ", " << sw << "u) & " << m
              << ";\n";
        } else {
          os_ << "  " << d << " = " << a << ";\n";
        }
        break;
      }
      case OpKind::kLoad: {
        const ir::Memory& mm = design_.memory(op.mem);
        os_ << "  {\n    uint64_t i_ = " << val(op.args[0]) << ";\n"
            << "    " << d << " = i_ < " << u64_lit(mm.size) << " ? (mem[" << op.mem
            << "][i_] & " << mask_lit(mm.width) << ") : 0u;\n  }\n";
        break;
      }
      case OpKind::kStore: {
        const ir::Memory& mm = design_.memory(op.mem);
        os_ << "  {\n    uint64_t i_ = " << val(op.args[0]) << ";\n"
            << "    if (i_ < " << u64_lit(mm.size) << ") mem[" << op.mem << "][i_] = "
            << val(op.args[1]) << ";\n  }\n";
        break;
      }
      default:
        internal_error("codegen", 0, "emit_pure_op on a callback op");
    }
  }

  [[nodiscard]] std::string bin_expr(const Op& op) const {
    const std::string a = val(op.args[0]);
    const std::string b = val(op.args[1]);
    const unsigned w = width_of(op.args[0]);
    const std::string ws = std::to_string(w) + "u";
    const std::string m = mask_lit(p_.reg(op.dest).width);
    switch (op.bin) {
      case BinKind::kAdd:
        return "(" + a + " + " + b + ") & " + m;
      case BinKind::kSub:
        return "(" + a + " - " + b + ") & " + m;
      case BinKind::kMul:
        return "(" + a + " * " + b + ") & " + m;
      case BinKind::kDivU:
        return "hlsav_udiv(" + a + ", " + b + ", " + m + ")";
      case BinKind::kDivS:
        return "hlsav_sdiv(" + a + ", " + b + ", " + ws + ", " + m + ")";
      case BinKind::kRemU:
        return "hlsav_urem(" + a + ", " + b + ")";
      case BinKind::kRemS:
        return "hlsav_srem(" + a + ", " + b + ", " + ws + ", " + m + ")";
      case BinKind::kAnd:
        return a + " & " + b;
      case BinKind::kOr:
        return a + " | " + b;
      case BinKind::kXor:
        return a + " ^ " + b;
      case BinKind::kShl:
        return "hlsav_shl(" + a + ", " + b + ", " + ws + ", " + m + ")";
      case BinKind::kShrL:
        return "hlsav_lshr(" + a + ", " + b + ", " + ws + ")";
      case BinKind::kShrA:
        return "hlsav_ashr(" + a + ", " + b + ", " + ws + ", " + m + ")";
      case BinKind::kCmpEq:
        return "(uint64_t)(" + a + " == " + b + ")";
      case BinKind::kCmpNe:
        return "(uint64_t)(" + a + " != " + b + ")";
      case BinKind::kCmpLtU:
        return "(uint64_t)(" + a + " < " + b + ")";
      case BinKind::kCmpLtS:
        return "(uint64_t)(hlsav_sx(" + a + ", " + ws + ") < hlsav_sx(" + b + ", " + ws + "))";
      case BinKind::kCmpLeU:
        return "(uint64_t)(" + a + " <= " + b + ")";
      case BinKind::kCmpLeS:
        return "(uint64_t)(hlsav_sx(" + a + ", " + ws + ") <= hlsav_sx(" + b + ", " + ws + "))";
    }
    HLSAV_UNREACHABLE("bad BinKind");
  }

  // ---- function-top resume dispatch ----
  void emit_dispatch() {
    os_ << "  switch ((uint32_t)" << stw(sim::kStResumeBlock) << ") {\n";
    for (const BasicBlock& b : p_.blocks) {
      if (is_pipe_body(b.id)) continue;
      os_ << "    case " << b.id << "u: ";
      if (header_loop_.count(b.id) != 0) {
        // A pipe header resumes into the loop when the blocked position
        // was inside it, and initializes the pipeline otherwise.
        os_ << "if (" << stw(sim::kStInPipe) << " != 0u) goto " << blk_c(b.id)
            << "; else goto " << blk_f(b.id) << ";\n";
      } else {
        os_ << "goto " << blk_c(b.id) << ";\n";
      }
    }
    os_ << "    default: return HLSAV_RET(" << sim::kRetHalted << "u); /* corrupt state */\n"
        << "  }\n";
  }

  void emit_goto_block(ir::BlockId target) { os_ << "  goto " << blk_f(target) << ";\n"; }

  void emit_terminator(const BasicBlock& b) {
    switch (b.term.kind) {
      case ir::TermKind::kJump:
        emit_goto_block(b.term.on_true);
        break;
      case ir::TermKind::kBranch:
        os_ << "  if (" << val(b.term.cond) << " != 0u) goto " << blk_f(b.term.on_true)
            << "; else goto " << blk_f(b.term.on_false) << ";\n";
        break;
      case ir::TermKind::kReturn:
        os_ << "  return HLSAV_RET(" << sim::kRetDone << "u);\n";
        break;
    }
  }

  // ---- sequential block ----
  void emit_sequential(const BasicBlock& b) {
    const sched::BlockSchedule& bs = sched_.of(b.id);
    os_ << blk_f(b.id) << ": ;\n"
        << "  " << stw(sim::kStResumeBlock) << " = " << b.id << "u;\n"
        << "  " << stw(sim::kStResumeOp) << " = 0u;\n"
        << "  " << stw(sim::kStBlockEntry) << " = " << stw(sim::kStCycle) << ";\n";
    os_ << blk_c(b.id) << ": ;\n";
    emit_checks();
    std::vector<std::size_t> resume;
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      if (is_callback_op(b.ops[i].kind)) resume.push_back(i);
    }
    emit_resume_switch(b.id, resume, 0, /*pipe=*/false);
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      unsigned state = i < bs.op_state.size() ? bs.op_state[i] : 0;
      std::string at = stw(sim::kStBlockEntry) + " + " + std::to_string(state) + "u";
      emit_op(b, b.ops[i], i, b.id, i, at, /*progressed_before=*/i > 0);
    }
    // Retire: the block consumed its scheduled states.
    os_ << "  " << stw(sim::kStCycle) << " = " << stw(sim::kStBlockEntry) << " + "
        << bs.num_states << "u;\n"
        << "  " << stw(sim::kStProgress) << " = 1u;\n";
    emit_terminator(b);
  }

  // ---- pipelined loop (header + inlined body) ----
  // Combined resume indices match the interpreter's op_idx encoding:
  // 0..h-1 header ops, h the loop test, h+1+j body ops.
  void emit_pipelined(const BasicBlock& header, std::uint32_t loop_idx) {
    const ir::LoopInfo& loop = p_.loops[loop_idx];
    const BasicBlock& body = p_.block(loop.body);
    const sched::BlockSchedule& bs = sched_.of(loop.body);
    const std::size_t h = header.ops.size();
    const unsigned ii = bs.ii;

    os_ << blk_f(header.id) << ": ;\n"
        << "  " << stw(sim::kStResumeBlock) << " = " << header.id << "u;\n"
        << "  " << stw(sim::kStResumeOp) << " = 0u;\n"
        << "  " << stw(sim::kStBlockEntry) << " = " << stw(sim::kStCycle) << ";\n"
        << "  " << stw(sim::kStInPipe) << " = 1u;\n"
        << "  " << stw(sim::kStPipeStart) << " = " << stw(sim::kStCycle) << ";\n"
        << "  " << stw(sim::kStPipeIter) << " = 0u;\n";
    os_ << blk_c(header.id) << ": ;\n";
    emit_checks();
    std::vector<std::size_t> resume;
    for (std::size_t i = 0; i < h; ++i) {
      if (is_callback_op(header.ops[i].kind)) resume.push_back(i);
    }
    for (std::size_t j = 0; j < body.ops.size(); ++j) {
      if (is_callback_op(body.ops[j].kind)) resume.push_back(h + 1 + j);
    }
    emit_resume_switch(header.id, resume, ii, /*pipe=*/true);

    // Per-iteration loop top. `ib` freezes the iteration base the way
    // the interpreter's local does: a read stall mid-iteration bumps
    // kStPipeStart without shifting timestamps already in flight.
    os_ << blk_loop(header.id) << ": ;\n"
        << "  if (" << stw(sim::kStPipeStart) << " + " << stw(sim::kStPipeIter) << " * " << ii
        << "u > " << stw(sim::kStMaxCycles) << ") return HLSAV_RET(" << sim::kRetCycleLimitPipe
        << "u) | " << loop_idx << "u;\n"
        << "  ib = " << stw(sim::kStPipeStart) << " + " << stw(sim::kStPipeIter) << " * " << ii
        << "u;\n";
    for (std::size_t i = 0; i < h; ++i) {
      unsigned state = i < bs.header_op_state.size() ? bs.header_op_state[i] : 0;
      std::string at = "ib + " + std::to_string(state) + "u";
      emit_op(header, header.ops[i], i, header.id, i, at, /*progressed_before=*/i > 0);
    }
    // Loop test (combined index h; never a resume point).
    os_ << "  /* loop test */\n"
        << "  if (" << val(header.term.cond) << " == 0u) {\n"
        << "    " << stw(sim::kStCycle) << " = " << stw(sim::kStPipeIter) << " == 0u ? "
        << stw(sim::kStPipeStart) << " + 1u : " << stw(sim::kStPipeStart) << " + " << bs.latency
        << "u + (" << stw(sim::kStPipeIter) << " - 1u) * " << ii << "u;\n"
        << "    " << stw(sim::kStInPipe) << " = 0u;\n"
        << "    " << stw(sim::kStProgress) << " = 1u;\n"
        << "    goto " << blk_f(loop.exit) << ";\n"
        << "  }\n";
    for (std::size_t j = 0; j < body.ops.size(); ++j) {
      unsigned state = j < bs.op_state.size() ? bs.op_state[j] : 0;
      std::string at = "ib + " + std::to_string(state) + "u";
      // The loop test already counts as executed work for this pass.
      emit_op(header, body.ops[j], h + 1 + j, loop.body, j, at, /*progressed_before=*/true);
    }
    os_ << "  " << stw(sim::kStPipeIter) << " += 1u;\n"
        << "  " << stw(sim::kStResumeOp) << " = 0u;\n"
        << "  " << stw(sim::kStProgress) << " = 1u;\n"
        << "  if (" << stw(sim::kStHalt) << " != 0u) return HLSAV_RET(" << sim::kRetHalted
        << "u);\n"
        << "  if ((" << stw(sim::kStFlags) << " & " << sim::kStFlagDeadline << "u) != 0u) {\n"
        << "    if (((hlsav_cb_poll_fn)cb[" << sim::kCbPoll << "])(sim) != 0u) return HLSAV_RET("
        << sim::kRetHalted << "u);\n"
        << "  }\n"
        << "  goto " << blk_loop(header.id) << ";\n";
  }

  const ir::Design& design_;
  const Process& p_;
  const sched::ProcessSchedule& sched_;
  std::uint32_t pidx_;
  std::string symbol_;
  std::map<ir::BlockId, std::uint32_t> header_loop_;
  std::vector<ir::BlockId> pipe_body_;
  std::ostringstream os_;
};

}  // namespace

EmitResult emit_design(const ir::Design& design, const sched::DesignSchedule& schedule) {
  EmitResult result;
  std::ostringstream os;
  emit_prelude(os);

  std::uint32_t pidx = 0;
  for (const auto& up : design.processes) {
    const Process& p = *up;
    if (p.role != ir::ProcessRole::kApplication) continue;
    ProcEmit pe;
    pe.process = p.name;
    const sched::ProcessSchedule* ps = schedule.find(p.name);
    pe.decline_reason = decline_reason(design, p, ps);
    if (pe.decline_reason.empty()) {
      pe.symbol = "hlsav_p" + std::to_string(pidx);
      os << ProcEmitter(design, p, *ps, pidx, pe.symbol).emit();
    }
    result.procs.push_back(std::move(pe));
    ++pidx;  // pidx indexes the simulator's ProcState array: count every
             // application process, declined or not.
  }

  // Exported registry: the loader resolves these four symbols.
  os << "typedef struct { const char* name; hlsav_proc_fn fn; } hlsav_entry_t;\n";
  os << "const uint32_t hlsav_abi = " << sim::kCompiledAbiVersion << "u;\n";
  os << "const hlsav_entry_t hlsav_entries[] = {\n";
  for (const ProcEmit& pe : result.procs) {
    if (!pe.compiled()) continue;
    os << "  {\"" << c_escape(pe.process) << "\", " << pe.symbol << "},\n";
  }
  os << "  {0, 0},\n};\n";
  os << "const uint32_t hlsav_entry_count = " << result.compiled_count() << "u;\n";

  result.source = os.str();
  return result;
}

}  // namespace hlsav::codegen
