// The compiled-simulation engine facade: emit + compile + load in one
// call, producing a handle the Simulator runs behind its normal
// interface (SimOptions::compiled).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codegen/emit.h"
#include "codegen/jit.h"
#include "ir/ir.h"
#include "sched/schedule.h"
#include "sim/compiled.h"
#include "support/status.h"

namespace hlsav::codegen {

struct PrepareOptions {
  std::string compiler;      // empty = find_compiler()
  std::string cache_dir;     // empty = default_cache_dir()
  bool keep_source = false;  // keep the generated .c next to the cached .so
};

/// Owns the loaded shared object and exposes the simulator-facing view.
/// Must outlive every Simulator its handle() is attached to.
class CompiledDesign {
 public:
  CompiledDesign(LoadedModule module, sim::CompiledDesignHandle handle,
                 std::vector<ProcEmit> procs)
      : module_(std::move(module)), handle_(std::move(handle)), procs_(std::move(procs)) {}

  /// Borrowed view to attach via SimOptions::compiled.
  [[nodiscard]] const sim::CompiledDesignHandle* handle() const { return &handle_; }
  /// Per-process emission outcomes (declined processes carry a reason).
  [[nodiscard]] const std::vector<ProcEmit>& procs() const { return procs_; }
  [[nodiscard]] bool from_cache() const { return module_.from_cache; }
  [[nodiscard]] const std::string& key() const { return handle_.key; }
  [[nodiscard]] const std::string& so_path() const { return module_.path; }

 private:
  LoadedModule module_;
  sim::CompiledDesignHandle handle_;
  std::vector<ProcEmit> procs_;
};

/// Emits, compiles (or pulls from cache) and loads the scheduled design.
/// Errors (no compiler, unwritable cache, failed compile, every process
/// declined) come back as Status -- the caller decides whether that
/// means "fall back to the interpreter" (hlsavc --engine=auto) or "fail
/// loudly" (--engine=compiled with no interpreter to fall back on still
/// falls back, but reports the reason).
[[nodiscard]] StatusOr<std::unique_ptr<CompiledDesign>> prepare(
    const ir::Design& design, const sched::DesignSchedule& schedule,
    const PrepareOptions& opt = {});

}  // namespace hlsav::codegen
