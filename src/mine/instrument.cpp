#include "mine/instrument.h"

#include <algorithm>
#include <string>

namespace hlsav::mine {

namespace {

/// Position of an op inside a process.
struct Anchor {
  ir::BlockId block = ir::kNoBlock;
  std::size_t index = 0;  // insert new ops after this index
  bool found = false;
};

/// The write of `reg` the checker anchors after: prefer the op whose
/// source location matches what the miner observed, else the first
/// write in block/program order.
Anchor find_reg_write(const ir::Process& p, ir::RegId reg, const SourceLoc& want) {
  Anchor first;
  for (const ir::BasicBlock& b : p.blocks) {
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      if (b.ops[i].dest != reg) continue;
      if (!first.found) first = Anchor{b.id, i, true};
      if (want.valid() && b.ops[i].loc == want) return Anchor{b.id, i, true};
    }
  }
  return first;
}

/// A block where both pair registers are written: the relation is
/// checked after the later of the two writes.
Anchor find_pair_anchor(const ir::Process& p, ir::RegId a, ir::RegId b) {
  for (const ir::BasicBlock& blk : p.blocks) {
    std::ptrdiff_t la = -1, lb = -1;
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      if (blk.ops[i].dest == a) la = static_cast<std::ptrdiff_t>(i);
      if (blk.ops[i].dest == b) lb = static_cast<std::ptrdiff_t>(i);
    }
    if (la >= 0 && lb >= 0) {
      return Anchor{blk.id, static_cast<std::size_t>(std::max(la, lb)), true};
    }
  }
  return {};
}

Anchor find_stream_anchor(const ir::Process& p, ir::StreamId sid, bool push) {
  const ir::OpKind want = push ? ir::OpKind::kStreamWrite : ir::OpKind::kStreamRead;
  for (const ir::BasicBlock& b : p.blocks) {
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      if (b.ops[i].kind == want && b.ops[i].stream == sid) return Anchor{b.id, i, true};
    }
  }
  return {};
}

}  // namespace

StatusOr<std::uint32_t> instrument_invariant(ir::Design& design, Invariant& inv,
                                             const SourceManager* sm) {
  // Stream invariants live in the process performing the handshake; the
  // miner recorded it when the handshake op named a value register.
  std::uint16_t pi = inv.proc;
  if (pi >= design.processes.size()) {
    return Status::invalid_argument("invariant names process index " + std::to_string(pi) +
                                    " but the design has " +
                                    std::to_string(design.processes.size()));
  }

  const bool is_stream = inv.kind == InvariantKind::kStreamConst ||
                         inv.kind == InvariantKind::kStreamRange ||
                         inv.kind == InvariantKind::kStreamOrdered;
  if (is_stream && inv.reg_a == ir::kNoReg) {
    return Status::invalid_argument("stream invariant on '" +
                                    (inv.stream < design.streams.size()
                                         ? design.streams[inv.stream].name
                                         : std::to_string(inv.stream)) +
                                    "' has no value register to check (immediate operand)");
  }

  ir::Process& p = *design.processes[pi];
  if (inv.reg_a >= p.regs.size()) {
    return Status::invalid_argument("invariant register out of range in process '" + p.name + "'");
  }

  Anchor at;
  switch (inv.kind) {
    case InvariantKind::kConst:
    case InvariantKind::kRange:
      at = find_reg_write(p, inv.reg_a, inv.anchor);
      break;
    case InvariantKind::kEquality:
    case InvariantKind::kOrdering:
      if (inv.reg_b >= p.regs.size()) {
        return Status::invalid_argument("invariant register out of range in process '" + p.name +
                                        "'");
      }
      at = find_pair_anchor(p, inv.reg_a, inv.reg_b);
      if (!at.found) {
        return Status::invalid_argument("registers '" + p.reg(inv.reg_a).name + "' and '" +
                                        p.reg(inv.reg_b).name +
                                        "' are never written in a common block");
      }
      break;
    case InvariantKind::kStreamConst:
    case InvariantKind::kStreamRange:
    case InvariantKind::kStreamOrdered:
      at = find_stream_anchor(p, inv.stream, inv.at_push);
      break;
  }
  if (!at.found) {
    return Status::invalid_argument("no anchor op for mined invariant `" + inv.text +
                                    "' in process '" + p.name + "'");
  }

  const unsigned width = p.reg(inv.reg_a).width;
  if ((inv.kind == InvariantKind::kEquality || inv.kind == InvariantKind::kOrdering) &&
      p.reg(inv.reg_b).width != width) {
    return Status::invalid_argument("pair invariant over mismatched widths");
  }
  if (inv.kind != InvariantKind::kEquality && inv.kind != InvariantKind::kOrdering &&
      inv.lo.width() != width) {
    return Status::invalid_argument("invariant bounds width " + std::to_string(inv.lo.width()) +
                                    " does not match register width " + std::to_string(width));
  }

  std::uint32_t id = 0;
  for (const ir::AssertionRecord& rec : design.assertions) id = std::max(id, rec.id + 1);

  ir::BasicBlock& blk = p.block(at.block);
  const SourceLoc loc = blk.ops[at.index].loc.valid() ? blk.ops[at.index].loc : inv.anchor;

  // Condition ops, in the exact tagged-slice shape lowering emits.
  std::vector<ir::Op> inserted;
  auto tagged_bin = [&](ir::BinKind bk, ir::Operand a, ir::Operand b,
                        const std::string& suffix) -> ir::RegId {
    ir::Op op;
    op.kind = ir::OpKind::kBin;
    op.bin = bk;
    op.loc = loc;
    op.assert_tag = id;
    op.args = {std::move(a), std::move(b)};
    op.dest = p.add_reg("mine" + std::to_string(id) + "_" + suffix, 1, false);
    inserted.push_back(std::move(op));
    return inserted.back().dest;
  };

  ir::RegId cond = ir::kNoReg;
  ir::Op after_assert;       // kStreamOrdered keeps its state app-side
  bool has_after = false;
  switch (inv.kind) {
    case InvariantKind::kConst:
    case InvariantKind::kStreamConst:
      cond = tagged_bin(ir::BinKind::kCmpEq, ir::Operand::make_reg(inv.reg_a),
                        ir::Operand::make_imm(inv.lo), "c");
      break;
    case InvariantKind::kRange:
    case InvariantKind::kStreamRange: {
      const bool has_lo = !inv.lo.is_zero();
      const bool has_hi = !inv.hi.eq(BitVector::all_ones(width));
      ir::RegId lo_c = ir::kNoReg, hi_c = ir::kNoReg;
      if (has_lo) {
        lo_c = tagged_bin(ir::BinKind::kCmpLeU, ir::Operand::make_imm(inv.lo),
                          ir::Operand::make_reg(inv.reg_a), "lo");
      }
      if (has_hi) {
        hi_c = tagged_bin(ir::BinKind::kCmpLeU, ir::Operand::make_reg(inv.reg_a),
                          ir::Operand::make_imm(inv.hi), "hi");
      }
      if (has_lo && has_hi) {
        cond = tagged_bin(ir::BinKind::kAnd, ir::Operand::make_reg(lo_c),
                          ir::Operand::make_reg(hi_c), "c");
      } else {
        cond = has_lo ? lo_c : hi_c;
      }
      if (cond == ir::kNoReg) {
        return Status::invalid_argument("vacuous range invariant `" + inv.text + "'");
      }
      break;
    }
    case InvariantKind::kEquality:
      cond = tagged_bin(ir::BinKind::kCmpEq, ir::Operand::make_reg(inv.reg_a),
                        ir::Operand::make_reg(inv.reg_b), "c");
      break;
    case InvariantKind::kOrdering:
      cond = tagged_bin(ir::BinKind::kCmpLeU, ir::Operand::make_reg(inv.reg_a),
                        ir::Operand::make_reg(inv.reg_b), "c");
      break;
    case InvariantKind::kStreamOrdered: {
      // prev starts at zero, so the first word trivially satisfies
      // prev <= word; the state update stays in the application (an
      // untagged copy after the assert) so the parallelized checker taps
      // both prev and the current word.
      ir::RegId prev = p.add_reg("mine" + std::to_string(id) + "_prev", width, false);
      cond = tagged_bin(ir::BinKind::kCmpLeU, ir::Operand::make_reg(prev),
                        ir::Operand::make_reg(inv.reg_a), "c");
      after_assert.kind = ir::OpKind::kCopy;
      after_assert.loc = loc;
      after_assert.dest = prev;
      after_assert.args = {ir::Operand::make_reg(inv.reg_a)};
      has_after = true;
      break;
    }
  }

  ir::Op assert_op;
  assert_op.kind = ir::OpKind::kAssert;
  assert_op.loc = loc;
  assert_op.assert_id = id;
  assert_op.args = {ir::Operand::make_reg(cond)};
  inserted.push_back(std::move(assert_op));
  if (has_after) inserted.push_back(std::move(after_assert));

  blk.ops.insert(blk.ops.begin() + static_cast<std::ptrdiff_t>(at.index) + 1,
                 std::make_move_iterator(inserted.begin()),
                 std::make_move_iterator(inserted.end()));

  ir::AssertionRecord rec;
  rec.id = id;
  rec.process = p.name;
  rec.function = p.name;
  if (sm != nullptr && loc.valid()) rec.file = std::string(sm->name(loc.file));
  rec.line = loc.line;
  rec.condition_text = inv.text;
  design.assertions.push_back(std::move(rec));

  if (loc.valid()) inv.anchor = loc;
  return id;
}

}  // namespace hlsav::mine
