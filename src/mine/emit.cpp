#include "mine/emit.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "trace/signals.h"

namespace hlsav::mine {

namespace {

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `name` occurs as a whole identifier anywhere in `text`.
bool contains_word(const std::string& text, const std::string& name) {
  if (name.empty()) return false;
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !word_char(text[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= text.size() || !word_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// The source-level names a candidate's condition references.
std::vector<std::string> referenced_names(const trace::SignalCatalog& names,
                                          const Invariant& inv) {
  std::vector<std::string> out;
  switch (inv.kind) {
    case InvariantKind::kConst:
    case InvariantKind::kRange:
    case InvariantKind::kStreamConst:
    case InvariantKind::kStreamRange:
      out.push_back(names.reg_name(inv.proc, inv.reg_a));
      break;
    case InvariantKind::kEquality:
    case InvariantKind::kOrdering:
      out.push_back(names.reg_name(inv.proc, inv.reg_a));
      out.push_back(names.reg_name(inv.proc, inv.reg_b));
      break;
    case InvariantKind::kStreamOrdered:
      break;  // needs carried state; not expressible as one assert
  }
  return out;
}

}  // namespace

EmitResult emit_assertions(const std::string& source, const ir::Design& design,
                           const std::vector<CandidateScore>& ranked, std::size_t top) {
  trace::SignalCatalog names(design);

  std::vector<std::string> lines;
  {
    std::size_t start = 0;
    while (start <= source.size()) {
      std::size_t nl = source.find('\n', start);
      if (nl == std::string::npos) {
        lines.push_back(source.substr(start));
        break;
      }
      lines.push_back(source.substr(start, nl - start));
      start = nl + 1;
    }
  }

  EmitResult out;
  // line number (1-based) -> assert lines to insert after it, rank order.
  std::map<std::uint32_t, std::vector<std::string>> inserts;

  std::size_t taken = 0;
  for (const CandidateScore& c : ranked) {
    if (taken >= top) break;
    if (!c.survived) continue;
    ++taken;
    auto skip = [&](const std::string& why) {
      out.skipped.push_back("c" + std::to_string(c.index) + ": " + why);
    };
    const Invariant& inv = c.inv;
    if (inv.kind == InvariantKind::kStreamOrdered) {
      skip("stream-ordering checkers carry state and stay IR-only");
      continue;
    }
    if (inv.kind == InvariantKind::kEquality || inv.kind == InvariantKind::kOrdering) {
      // The scored checker evaluates after the LATER of the two writes
      // in IR order; no source line reproduces that evaluation point
      // (e.g. a loop counter's increment has no statement of its own),
      // so a textual assert could fire where the IR checker does not.
      skip("'" + inv.text + "' is anchored to an IR write point with no source equivalent");
      continue;
    }
    if (!inv.anchor.valid() || inv.anchor.line == 0 || inv.anchor.line > lines.size()) {
      skip("anchor line " + std::to_string(inv.anchor.line) + " is outside this source");
      continue;
    }
    const std::uint32_t anchor_at = inv.anchor.line;
    const bool needs_literal =
        inv.kind != InvariantKind::kEquality && inv.kind != InvariantKind::kOrdering;
    if (needs_literal && inv.lo.width() > 64) {
      skip("bounds wider than 64 bits have no HLS-C literal form");
      continue;
    }
    bool names_ok = true;
    for (const std::string& n : referenced_names(names, inv)) {
      if (!contains_word(source, n)) {
        skip("name '" + n + "' does not appear in the source (compiler temporary)");
        names_ok = false;
        break;
      }
    }
    if (!names_ok) continue;

    const std::string& anchor_line = lines[anchor_at - 1];
    std::string indent = anchor_line.substr(0, anchor_line.find_first_not_of(" \t"));
    if (indent.size() == anchor_line.size()) indent.clear();  // all-blank line
    const std::string assert_line = indent + "assert(" + inv.text + ");";
    if (contains_word(source, "assert(" + inv.text + ")")) {
      skip("an identical assert already exists in the source");
      continue;
    }
    inserts[anchor_at].push_back(assert_line);
    ++out.emitted;
  }

  // Insert bottom-up so earlier line numbers stay valid.
  for (auto it = inserts.rbegin(); it != inserts.rend(); ++it) {
    lines.insert(lines.begin() + it->first, it->second.begin(), it->second.end());
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out.source += lines[i];
    if (i + 1 < lines.size()) out.source += "\n";
  }
  if (!source.empty() && source.back() == '\n' && !out.source.empty() &&
      out.source.back() != '\n') {
    out.source += "\n";
  }
  return out;
}

}  // namespace hlsav::mine
