#include "mine/miner.h"

#include <map>
#include <utility>

#include "trace/signals.h"

namespace hlsav::mine {

namespace {

struct RegStat {
  std::uint64_t count = 0;
  BitVector min{1};
  BitVector max{1};
  BitVector last{1};
  SourceLoc first_loc;
};

struct PairStat {
  std::uint64_t samples = 0;
  std::uint64_t eq = 0;
  std::uint64_t ab_le = 0;  // lower-id reg <= higher-id reg
  std::uint64_t ba_le = 0;
};

struct StreamStat {
  std::uint64_t count = 0;
  BitVector min{1};
  BitVector max{1};
  BitVector last{1};
  bool ordered = true;  // successive words nondecreasing (unsigned)
  SourceLoc first_loc;
};

std::string value_text(const BitVector& v) {
  if (v.width() <= 64) return v.to_string_dec(false);
  return v.to_string_hex();
}

/// "lo <= name && name <= hi" with the vacuous halves dropped.
std::string range_text(const std::string& name, const BitVector& lo, const BitVector& hi) {
  const bool has_lo = !lo.is_zero();
  const bool has_hi = !hi.eq(BitVector::all_ones(hi.width()));
  std::string s;
  if (has_lo) s += value_text(lo) + " <= " + name;
  if (has_lo && has_hi) s += " && ";
  if (has_hi) s += name + " <= " + value_text(hi);
  return s;
}

/// True for names an emitted C assert could reference.
bool identifier_like(const std::string& name) {
  if (name.empty()) return false;
  char c = name[0];
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

/// The op performing the first push/pop on this stream: its value
/// register names the word in rendered conditions.
const ir::Op* find_stream_op(const ir::Design& design, ir::StreamId sid, bool push) {
  const ir::OpKind want = push ? ir::OpKind::kStreamWrite : ir::OpKind::kStreamRead;
  for (const auto& p : design.processes) {
    for (const ir::BasicBlock& b : p->blocks) {
      for (const ir::Op& op : b.ops) {
        if (op.kind == want && op.stream == sid) return &op;
      }
    }
  }
  return nullptr;
}

}  // namespace

MineResult mine_invariants(const ir::Design& design,
                           const std::vector<trace::TraceRecord>& window,
                           const MineOptions& opt) {
  trace::SignalCatalog names(design);
  MineResult out;
  out.records = window.size();

  // ---- per-process register stats, pair stats ----
  std::vector<std::vector<RegStat>> reg_stats(design.processes.size());
  std::vector<std::map<std::pair<ir::RegId, ir::RegId>, PairStat>> pair_stats(
      design.processes.size());
  // Pair-eligible regs per process: the first max_pair_regs source-named
  // registers, in id order (deterministic, bounds the O(n^2) join).
  std::vector<std::vector<ir::RegId>> pair_regs(design.processes.size());
  for (std::size_t pi = 0; pi < design.processes.size(); ++pi) {
    const ir::Process& p = *design.processes[pi];
    reg_stats[pi].resize(p.regs.size());
    for (const ir::Register& r : p.regs) {
      if (pair_regs[pi].size() >= opt.max_pair_regs) break;
      if (identifier_like(r.name)) pair_regs[pi].push_back(r.id);
    }
  }

  // ---- per-(stream, side) stats ----
  std::map<std::pair<ir::StreamId, bool>, StreamStat> stream_stats;  // (id, at_push)

  for (const trace::TraceRecord& r : window) {
    switch (r.kind) {
      case trace::TraceEventKind::kRegWrite: {
        if (r.proc >= reg_stats.size() || r.subject >= reg_stats[r.proc].size()) break;
        RegStat& st = reg_stats[r.proc][r.subject];
        if (st.count == 0) {
          st.min = r.value;
          st.max = r.value;
          st.first_loc = r.loc;
          ++out.reg_signals;
        } else {
          if (r.value.ult(st.min)) st.min = r.value;
          if (st.max.ult(r.value)) st.max = r.value;
        }
        st.last = r.value;
        ++st.count;

        if (opt.relations) {
          // Sample every relation this write participates in, against the
          // partner's last-seen value.
          for (ir::RegId other : pair_regs[r.proc]) {
            if (other == r.subject) continue;
            const RegStat& os = reg_stats[r.proc][other];
            if (os.count == 0) continue;
            if (os.last.width() != r.value.width()) continue;
            ir::RegId a = std::min<ir::RegId>(r.subject, other);
            ir::RegId b = std::max<ir::RegId>(r.subject, other);
            const BitVector& va = a == r.subject ? r.value : os.last;
            const BitVector& vb = b == r.subject ? r.value : os.last;
            PairStat& ps = pair_stats[r.proc][{a, b}];
            ++ps.samples;
            if (va.eq(vb)) ++ps.eq;
            if (va.ule(vb)) ++ps.ab_le;
            if (vb.ule(va)) ++ps.ba_le;
          }
        }
        break;
      }
      case trace::TraceEventKind::kStreamPush:
      case trace::TraceEventKind::kStreamPop: {
        const bool at_push = r.kind == trace::TraceEventKind::kStreamPush;
        StreamStat& st = stream_stats[{r.subject, at_push}];
        if (st.count == 0) {
          st.min = r.value;
          st.max = r.value;
          st.first_loc = r.loc;
          ++out.stream_signals;
        } else {
          if (r.value.ult(st.min)) st.min = r.value;
          if (st.max.ult(r.value)) st.max = r.value;
          if (r.value.ult(st.last)) st.ordered = false;
        }
        st.last = r.value;
        ++st.count;
        break;
      }
      default:
        break;
    }
  }

  // ---- generation: deterministic order (proc, reg) -> pairs -> streams --
  auto is_const = [](const RegStat& st) { return st.count > 0 && st.min.eq(st.max); };

  for (std::size_t pi = 0; pi < design.processes.size(); ++pi) {
    const ir::Process& p = *design.processes[pi];
    if (opt.ranges) {
      for (ir::RegId rid = 0; rid < reg_stats[pi].size(); ++rid) {
        const RegStat& st = reg_stats[pi][rid];
        if (st.count < opt.min_support) continue;
        const std::string rn = names.reg_name(static_cast<std::uint16_t>(pi), rid);
        Invariant inv;
        inv.proc = static_cast<std::uint16_t>(pi);
        inv.process = p.name;
        inv.reg_a = rid;
        inv.support = st.count;
        inv.anchor = st.first_loc;
        inv.lo = st.min;
        inv.hi = st.max;
        if (st.min.eq(st.max)) {
          inv.kind = InvariantKind::kConst;
          inv.text = rn + " == " + value_text(st.min);
        } else {
          if (st.min.is_zero() && st.max.eq(BitVector::all_ones(st.max.width()))) {
            continue;  // vacuous full-width range
          }
          inv.kind = InvariantKind::kRange;
          inv.text = range_text(rn, st.min, st.max);
        }
        out.candidates.push_back(std::move(inv));
      }
    }
    if (opt.relations) {
      for (const auto& [key, ps] : pair_stats[pi]) {
        if (ps.samples < opt.min_support) continue;
        const auto [a, b] = key;
        // Two constants relate trivially; both facts are already proposed.
        if (is_const(reg_stats[pi][a]) && is_const(reg_stats[pi][b])) continue;
        const std::string an = names.reg_name(static_cast<std::uint16_t>(pi), a);
        const std::string bn = names.reg_name(static_cast<std::uint16_t>(pi), b);
        Invariant inv;
        inv.proc = static_cast<std::uint16_t>(pi);
        inv.process = p.name;
        inv.support = ps.samples;
        inv.anchor = reg_stats[pi][a].first_loc;
        if (ps.eq == ps.samples) {
          inv.kind = InvariantKind::kEquality;
          inv.reg_a = a;
          inv.reg_b = b;
          inv.text = an + " == " + bn;
        } else if (ps.ab_le == ps.samples) {
          inv.kind = InvariantKind::kOrdering;
          inv.reg_a = a;
          inv.reg_b = b;
          inv.text = an + " <= " + bn;
        } else if (ps.ba_le == ps.samples) {
          inv.kind = InvariantKind::kOrdering;
          inv.reg_a = b;
          inv.reg_b = a;
          inv.text = bn + " <= " + an;
        } else {
          continue;
        }
        out.candidates.push_back(std::move(inv));
      }
    }
  }

  if (opt.streams) {
    for (const auto& [key, st] : stream_stats) {
      const auto [sid, at_push] = key;
      if (st.count < opt.min_support) continue;
      if (sid >= design.streams.size()) continue;
      const std::string sn = names.stream_name(sid);
      // The word's source-level name, when the handshake op names one.
      const ir::Op* op = find_stream_op(design, sid, at_push);
      std::string vn;
      std::uint16_t vproc = 0;
      ir::RegId vreg = ir::kNoReg;
      if (op != nullptr) {
        if (at_push && !op->args.empty() && op->args[0].is_reg()) vreg = op->args[0].reg;
        if (!at_push) vreg = op->dest;
      }
      if (vreg != ir::kNoReg) {
        for (std::size_t pi = 0; pi < design.processes.size(); ++pi) {
          // Find the process owning that op again to name the reg.
          const ir::Process& p = *design.processes[pi];
          bool owns = false;
          for (const ir::BasicBlock& b : p.blocks) {
            for (const ir::Op& o : b.ops) {
              if (&o == op) owns = true;
            }
          }
          if (owns) {
            vproc = static_cast<std::uint16_t>(pi);
            vn = names.reg_name(vproc, vreg);
            break;
          }
        }
      }
      const std::string word = !vn.empty() ? vn : "word('" + sn + "')";

      // Skip stream const/range hypotheses that duplicate an already
      // proposed register invariant over the handshake's value register.
      auto duplicate_of_reg = [&]() {
        if (vreg == ir::kNoReg) return false;
        for (const Invariant& c : out.candidates) {
          if ((c.kind == InvariantKind::kConst || c.kind == InvariantKind::kRange) &&
              c.proc == vproc && c.reg_a == vreg && c.lo.width() == st.min.width() &&
              c.lo.eq(st.min) && c.hi.eq(st.max)) {
            return true;
          }
        }
        return false;
      };

      Invariant base;
      base.proc = vproc;
      base.process = vreg != ir::kNoReg ? design.processes[vproc]->name : "";
      base.reg_a = vreg;
      base.stream = sid;
      base.at_push = at_push;
      base.support = st.count;
      base.anchor = st.first_loc;
      base.lo = st.min;
      base.hi = st.max;

      if (st.min.eq(st.max)) {
        if (!duplicate_of_reg()) {
          Invariant inv = base;
          inv.kind = InvariantKind::kStreamConst;
          inv.text = word + " == " + value_text(st.min);
          out.candidates.push_back(std::move(inv));
        }
      } else if (!(st.min.is_zero() && st.max.eq(BitVector::all_ones(st.max.width())))) {
        if (!duplicate_of_reg()) {
          Invariant inv = base;
          inv.kind = InvariantKind::kStreamRange;
          inv.text = range_text(word, st.min, st.max);
          out.candidates.push_back(std::move(inv));
        }
      }
      // Ordering needs at least two transitions and a non-constant word.
      if (st.ordered && st.count >= opt.min_support + 1 && !st.min.eq(st.max)) {
        Invariant inv = base;
        inv.kind = InvariantKind::kStreamOrdered;
        inv.text = "'" + sn + "' nondecreasing (" + (at_push ? "push" : "pop") + ")";
        out.candidates.push_back(std::move(inv));
      }
    }
  }

  return out;
}

}  // namespace hlsav::mine
