// Candidate invariant grammar for trace mining (Daikon-style).
//
// The paper's flow synthesizes assertions the designer wrote; AutoINV /
// AssertMiner-style mining closes the loop by *proposing* them. A
// candidate is one checkable property observed to hold over every
// recorded golden-trace sample of a signal (or signal pair):
//
//   kConst        reg == c                 (the signal never changed)
//   kRange        lo <= reg <= hi          (unsigned bounds)
//   kEquality     a == b                   (same-process register pair)
//   kOrdering     a <= b                   (unsigned, same process)
//   kStreamConst  every word on s == c     (push or pop side)
//   kStreamRange  lo <= word on s <= hi
//   kStreamOrdered successive words on s are nondecreasing (unsigned)
//
// A candidate is only a *hypothesis*: src/mine/miner.h derives them from
// a finite trace, src/mine/instrument.h turns each into a real kAssert
// slice, and the golden re-run plus fault campaign (src/mine/score.h)
// decide which ones are sound and worth their area.
#pragma once

#include <cstdint>
#include <string>

#include "ir/ir.h"
#include "support/bitvector.h"
#include "support/source_manager.h"

namespace hlsav::mine {

enum class InvariantKind : std::uint8_t {
  kConst,
  kRange,
  kEquality,
  kOrdering,
  kStreamConst,
  kStreamRange,
  kStreamOrdered,
};

[[nodiscard]] const char* invariant_kind_name(InvariantKind k);

struct Invariant {
  InvariantKind kind = InvariantKind::kRange;
  /// Owning process (register and pair kinds): index into
  /// ir::Design::processes plus its name for rendering.
  std::uint16_t proc = 0;
  std::string process;
  ir::RegId reg_a = ir::kNoReg;
  ir::RegId reg_b = ir::kNoReg;  // pair kinds only
  ir::StreamId stream = ir::kNoStream;
  /// Stream kinds: observed at the producer push (true) or consumer pop.
  bool at_push = true;
  /// Observed bounds at the signal's width. kConst/kStreamConst keep
  /// lo == hi == the constant.
  BitVector lo{1};
  BitVector hi{1};
  /// Trace samples backing the hypothesis.
  std::uint64_t support = 0;
  /// Source position of the write/handshake the checker anchors at.
  SourceLoc anchor;
  /// C-syntax condition over source-level names, e.g. "1 <= w && w <= 8".
  /// This is what --emit writes back and what the assertion catalogue
  /// records as condition_text.
  std::string text;

  /// "range w: 1 <= w && w <= 8 (support 8)" -- stable, rendering-only.
  [[nodiscard]] std::string describe() const;
};

}  // namespace hlsav::mine
