// Invariant miner: one pass over a golden trace window, candidate
// hypotheses out.
//
// The window comes from either a live TraceEngine capture of the
// un-faulted design or a recorded HLTRACE1 file (trace/reader.h); it
// must describe the same pre-synthesis design that will later be
// instrumented, so register/stream ids line up. Mining is a single
// streaming pass in (cycle, seq) order keeping per-signal min/max/count
// and per-pair relation counters; generation then emits every
// hypothesis with enough support, in a deterministic order (process
// index, then kind, then ids) so two runs over the same trace produce
// byte-identical candidate lists.
#pragma once

#include <cstdint>
#include <vector>

#include "mine/invariant.h"
#include "trace/trace.h"

namespace hlsav::mine {

struct MineOptions {
  /// Minimum samples before a hypothesis is worth proposing. 2 keeps
  /// single-observation "constants" out.
  std::uint64_t min_support = 2;
  /// Event classes to mine.
  bool ranges = true;     // kConst / kRange over registers
  bool relations = true;  // kEquality / kOrdering over register pairs
  bool streams = true;    // stream const/range/ordered
  /// Pairwise tracking is O(regs^2) per process; only the first N
  /// source-named registers (by id) of each process participate.
  std::size_t max_pair_regs = 24;
};

struct MineResult {
  /// Deterministically ordered candidate list.
  std::vector<Invariant> candidates;
  std::uint64_t records = 0;        // window records consumed
  std::uint64_t reg_signals = 0;    // distinct registers observed
  std::uint64_t stream_signals = 0; // distinct (stream, side) pairs observed
};

[[nodiscard]] MineResult mine_invariants(const ir::Design& design,
                                         const std::vector<trace::TraceRecord>& window,
                                         const MineOptions& opt = {});

}  // namespace hlsav::mine
