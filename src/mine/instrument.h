// Turns a mined Invariant into a real in-circuit assertion.
//
// The injected IR is byte-for-byte the shape lowering produces for a
// hand-written assert: a contiguous run of condition ops tagged with the
// fresh assertion id, followed by the kAssert op, inserted right after
// the anchor write (or stream handshake). That shape is the contract the
// assertion-synthesis strategies consume, so a mined candidate rides the
// exact same parallelization/replication/channel-sharing paths as a
// designer-written assertion -- which is the whole point: what survives
// scoring can ship as a first-class checker.
#pragma once

#include "ir/ir.h"
#include "mine/invariant.h"
#include "support/status.h"

namespace hlsav::mine {

/// Injects `inv` into `design` (the pre-synthesis design the trace was
/// mined from) and returns the fresh assertion id. On success
/// `inv.anchor` is updated to the source location of the op actually
/// anchored at. kInvalidArgument when the invariant has no
/// instrumentable anchor (e.g. a stream handshake carrying an immediate,
/// or a register pair never written in a common block).
[[nodiscard]] StatusOr<std::uint32_t> instrument_invariant(ir::Design& design, Invariant& inv,
                                                           const SourceManager* sm = nullptr);

}  // namespace hlsav::mine
