#include "mine/score.h"

#include <algorithm>
#include <unordered_map>

#include "assertions/synthesize.h"
#include "mine/instrument.h"
#include "rtl/netlist.h"
#include "sim/simulator.h"
#include "support/diagnostics.h"
#include "support/table.h"

namespace hlsav::mine {

namespace {

struct Built {
  ir::Design design;
  sched::DesignSchedule schedule;
  fpga::AreaReport area;
};

/// clone -> synthesize assertions -> verify -> schedule -> price.
StatusOr<Built> build_config(const ir::Design& lowered, const ScoreOptions& opt) {
  Built b{lowered.clone(), {}, {}};
  try {
    (void)assertions::synthesize(b.design, opt.assert_opts);
    ir::verify(b.design);
    b.schedule = sched::schedule_design(b.design, opt.sched);
  } catch (const InternalError& e) {
    return Status::internal(e.what());
  }
  rtl::Netlist netlist = rtl::build_netlist(b.design, b.schedule);
  b.area = fpga::estimate_area(netlist);
  return b;
}

sim::CampaignOptions campaign_options(const ScoreOptions& opt) {
  sim::CampaignOptions co;
  co.seed = opt.seed;
  co.max_faults = opt.max_faults;
  co.max_cycles = opt.max_cycles;
  co.threads = opt.threads;
  return co;
}

/// Un-faulted run with the candidate checker armed: the golden filter.
/// Returns empty on a clean pass, else the reason the candidate dies.
std::string golden_violation(const Built& b, const sim::ExternRegistry& externs,
                             const std::map<std::string, std::vector<std::uint64_t>>& feeds) {
  sim::Simulator s(b.design, b.schedule, externs, {});
  for (const auto& [name, values] : feeds) s.feed(name, values);
  sim::RunResult res = s.run();
  if (!res.failures.empty()) {
    return "checker fired on the golden run (" + res.failures.front().message + ")";
  }
  if (!res.completed()) return "golden run did not complete with the checker in place";
  return {};
}

}  // namespace

double CandidateScore::cost_units() const {
  double cost = static_cast<double>(delta_aluts) + static_cast<double>(delta_bram_bits) / 9.0;
  return std::max(1.0, cost);
}

double CandidateScore::gain_per_cost() const {
  return static_cast<double>(newly_detected) / cost_units();
}

std::size_t ScoreReport::survivors() const {
  std::size_t n = 0;
  for (const CandidateScore& c : ranked) n += c.survived ? 1 : 0;
  return n;
}

std::string ScoreReport::render() const {
  TextTable t("mined-assertion ranking: " + design);
  t.header({"rank", "cand", "kind", "invariant", "support", "new", "scored", "gain/cost",
            "dALUT", "dREG", "dBRAM"});
  std::size_t rank = 1;
  for (const CandidateScore& c : ranked) {
    if (!c.survived) continue;
    t.row({std::to_string(rank++), "c" + std::to_string(c.index),
           invariant_kind_name(c.inv.kind), c.inv.text, std::to_string(c.inv.support),
           std::to_string(c.newly_detected), std::to_string(c.sites_scored),
           fmt_double(c.gain_per_cost(), 4), std::to_string(c.delta_aluts),
           std::to_string(c.delta_registers), std::to_string(c.delta_bram_bits)});
  }
  std::string out = t.render();
  out += "baseline: " + std::to_string(baseline_detected) + "/" +
         std::to_string(baseline_sites) + " sites detected, " +
         std::to_string(baseline_area.aluts) + " ALUTs\n";
  std::size_t skipped = 0;
  for (const CandidateScore& c : ranked) {
    if (c.survived) continue;
    ++skipped;
    out += "  c" + std::to_string(c.index) + " [" + invariant_kind_name(c.inv.kind) + " `" +
           c.inv.text + "'] filtered: " + c.skip_reason + "\n";
  }
  out += std::to_string(ranked.size()) + " candidate(s) scored, " +
         std::to_string(ranked.size() - skipped) + " survivor(s), " + std::to_string(skipped) +
         " filtered\n";
  return out;
}

StatusOr<ScoreReport> score_candidates(
    const ir::Design& lowered, const sim::ExternRegistry& externs,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const std::vector<Invariant>& candidates, const ScoreOptions& opt) {
  ScoreReport report;
  report.design = lowered.name;

  // ---- baseline: hand-written assertions only ----
  auto base_or = build_config(lowered, opt);
  if (!base_or.ok()) return base_or.status();
  Built& base = *base_or;
  report.baseline_area = base.area;

  auto base_rep_or =
      sim::run_campaign_st(base.design, base.schedule, externs, feeds, campaign_options(opt));
  if (!base_rep_or.ok()) return base_rep_or.status();
  const sim::CampaignReport& base_rep = *base_rep_or;

  // Sites keyed by their deterministic description: ids shift when
  // checker processes are added, descriptions do not.
  std::unordered_map<std::string, sim::FaultOutcome> base_outcome;
  base_outcome.reserve(base_rep.results.size());
  for (const sim::FaultResult& r : base_rep.results) {
    base_outcome.emplace(r.site.describe(base.design), r.outcome);
  }
  report.baseline_sites = base_rep.results.size();
  report.baseline_detected = base_rep.count(sim::FaultOutcome::kDetected);

  // ---- per-candidate: instrument, synthesize, filter, sweep ----
  const std::size_t n = opt.max_candidates != 0
                            ? std::min(opt.max_candidates, candidates.size())
                            : candidates.size();
  for (std::size_t i = 0; i < n; ++i) {
    CandidateScore cs;
    cs.inv = candidates[i];
    cs.index = i;

    ir::Design pre = lowered.clone();
    auto id_or = instrument_invariant(pre, cs.inv, opt.sm);
    if (!id_or.ok()) {
      cs.skip_reason = id_or.status().message();
      report.ranked.push_back(std::move(cs));
      continue;
    }
    cs.assert_id = *id_or;
    cs.instrumented = true;

    auto cand_or = build_config(pre, opt);
    if (!cand_or.ok()) {
      cs.skip_reason = "synthesis failed: " + std::string(cand_or.status().message());
      report.ranked.push_back(std::move(cs));
      continue;
    }
    Built& cand = *cand_or;
    cs.delta_aluts = static_cast<std::int64_t>(cand.area.aluts) -
                     static_cast<std::int64_t>(base.area.aluts);
    cs.delta_registers = static_cast<std::int64_t>(cand.area.registers) -
                         static_cast<std::int64_t>(base.area.registers);
    cs.delta_bram_bits = static_cast<std::int64_t>(cand.area.bram_bits) -
                         static_cast<std::int64_t>(base.area.bram_bits);

    std::string violation = golden_violation(cand, externs, feeds);
    if (!violation.empty()) {
      cs.skip_reason = violation;
      report.ranked.push_back(std::move(cs));
      continue;
    }
    cs.survived = true;

    // Sweep exactly the baseline's classified sites, matched by
    // description; the candidate's own new checker sites are excluded.
    std::vector<sim::FaultSpec> cand_sites =
        sim::enumerate_fault_sites(cand.design, cand.schedule);
    sim::CampaignOptions co = campaign_options(opt);
    co.max_faults = 0;  // only_sites already is the sampled selection
    for (const sim::FaultSpec& s : cand_sites) {
      if (base_outcome.contains(s.describe(cand.design))) co.only_sites.push_back(s.id);
    }
    auto cand_rep_or = sim::run_campaign_st(cand.design, cand.schedule, externs, feeds, co);
    if (!cand_rep_or.ok()) {
      cs.survived = false;
      cs.skip_reason = "campaign failed: " + std::string(cand_rep_or.status().message());
      report.ranked.push_back(std::move(cs));
      continue;
    }
    for (const sim::FaultResult& r : cand_rep_or->results) {
      auto it = base_outcome.find(r.site.describe(cand.design));
      if (it == base_outcome.end()) continue;
      ++cs.sites_scored;
      const bool base_hit = it->second == sim::FaultOutcome::kDetected;
      const bool cand_hit = r.outcome == sim::FaultOutcome::kDetected;
      if (base_hit) ++cs.baseline_detected;
      if (cand_hit) ++cs.detected;
      if (cand_hit && !base_hit) {
        ++cs.newly_detected;
        if (it->second == sim::FaultOutcome::kSilentCorruption ||
            it->second == sim::FaultOutcome::kHangDetected ||
            it->second == sim::FaultOutcome::kHangTimeout) {
          ++cs.newly_harmful;
        }
      }
    }
    report.ranked.push_back(std::move(cs));
  }

  // ---- deterministic ranking ----
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [](const CandidateScore& a, const CandidateScore& b) {
                     if (a.survived != b.survived) return a.survived;
                     if (!a.survived) return a.index < b.index;
                     if (a.gain_per_cost() != b.gain_per_cost()) {
                       return a.gain_per_cost() > b.gain_per_cost();
                     }
                     if (a.newly_detected != b.newly_detected) {
                       return a.newly_detected > b.newly_detected;
                     }
                     return a.index < b.index;
                   });
  return report;
}

}  // namespace hlsav::mine
