// Synthesis-and-scoring driver for mined invariants.
//
// The paper's economics question -- is this checker worth its area? --
// is answered per candidate, with measurements instead of heuristics:
//
//   1. Baseline: the design with only its hand-written assertions is
//      synthesized, priced by the fpga/ area model, and swept by the
//      fault campaign. Every classified site is keyed by its
//      FaultSpec::describe() string, which is stable across designs.
//   2. Each candidate is instrumented into a clone of the pre-synthesis
//      design, pushed through the same assertion-synthesis options, and
//      re-run un-faulted: a candidate whose checker fires on the golden
//      input is an unsound hypothesis and is filtered out here.
//   3. Survivors get a campaign over exactly the baseline's site set
//      (CampaignOptions::only_sites with description-matched ids --
//      checker processes add sites of their own, which must not skew
//      the comparison), counting sites the candidate detects that the
//      baseline missed.
//   4. Ranking: newly-detected sites per unit of added area
//      (ALUTs + BRAM bits / 9, the M4K column width), descending;
//      deterministic tie-breaks so the report is byte-identical across
//      runs and thread counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "assertions/options.h"
#include "fpga/area.h"
#include "mine/invariant.h"
#include "sched/schedule.h"
#include "sim/campaign.h"
#include "support/status.h"

namespace hlsav::mine {

struct ScoreOptions {
  /// Assertion-synthesis configuration for baseline and candidates
  /// alike (optimized = the paper's parallelized checkers).
  assertions::Options assert_opts = assertions::Options::optimized();
  sched::SchedOptions sched;
  /// Campaign controls (same meaning as CampaignOptions).
  std::uint64_t seed = 1;
  std::size_t max_faults = 0;
  std::uint64_t max_cycles = 0;
  unsigned threads = 1;
  /// Cap on candidates scored (campaigns are the expensive part);
  /// 0 = score every candidate.
  std::size_t max_candidates = 0;
  /// For file:line in the mined assertion catalogue entries.
  const SourceManager* sm = nullptr;
};

struct CandidateScore {
  Invariant inv;
  std::size_t index = 0;  // position in the miner's candidate list
  std::uint32_t assert_id = 0;
  bool instrumented = false;
  /// Clean un-faulted re-run with the checker armed.
  bool survived = false;
  /// Why the candidate dropped out (instrumentation / synthesis /
  /// golden-filter stage); empty for survivors.
  std::string skip_reason;

  // Campaign deltas over the description-matched baseline site set.
  std::size_t sites_scored = 0;
  std::size_t baseline_detected = 0;
  std::size_t detected = 0;
  std::size_t newly_detected = 0;  // detected here, missed by baseline
  /// Of the newly detected: sites the baseline classified as silent
  /// corruption or hang (the dangerous escapes, not benign ones).
  std::size_t newly_harmful = 0;

  // Area deltas vs the baseline configuration.
  std::int64_t delta_aluts = 0;
  std::int64_t delta_registers = 0;
  std::int64_t delta_bram_bits = 0;

  /// Checker price in ALUT-equivalents: ALUTs + BRAM bits / 9 (one M4K
  /// column bit ~ 1/9 ALUT in the model's normalization), floored at 1
  /// so a zero-measured-cost checker cannot divide by zero.
  [[nodiscard]] double cost_units() const;
  /// The ranking metric: newly-detected sites per cost unit.
  [[nodiscard]] double gain_per_cost() const;
};

struct ScoreReport {
  std::string design;
  std::size_t baseline_sites = 0;     // classified baseline sites
  std::size_t baseline_detected = 0;  // of those, caught by hand-written checkers
  fpga::AreaReport baseline_area;
  /// Survivors first, ranked by gain_per_cost (desc), then newly_detected
  /// (desc), then miner index (asc); filtered-out candidates follow in
  /// miner order. Deterministic across runs and thread counts.
  std::vector<CandidateScore> ranked;

  [[nodiscard]] std::size_t survivors() const;
  /// Ranked table + skip notes. No wall-clock anywhere: two runs of the
  /// same mine produce byte-identical text.
  [[nodiscard]] std::string render() const;
};

[[nodiscard]] StatusOr<ScoreReport> score_candidates(
    const ir::Design& lowered, const sim::ExternRegistry& externs,
    const std::map<std::string, std::vector<std::uint64_t>>& feeds,
    const std::vector<Invariant>& candidates, const ScoreOptions& opt = {});

}  // namespace hlsav::mine
