// --emit: write top-ranked mined assertions back into the HLS-C source.
//
// The output of mining should not be a report the designer re-types by
// hand: a surviving candidate's condition is already C syntax over
// source-level names, so it can be inserted as a real `assert(...)`
// right after the line its anchor write came from. Candidates whose
// condition cannot be expressed at source level (stream-ordering state,
// compiler temporaries, >64-bit literals) are skipped with a reason --
// the report still shows them, they just stay IR-only checkers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "mine/score.h"

namespace hlsav::mine {

struct EmitResult {
  std::string source;  // rewritten program text
  std::size_t emitted = 0;
  /// "c3: reason" for each top-K candidate that could not be emitted.
  std::vector<std::string> skipped;
};

/// Inserts `assert(<condition>);` lines for the first `top` surviving
/// candidates of `ranked` (already in rank order) into `source`.
/// `design` resolves register names; candidates anchored outside
/// `source` (invalid/foreign file locations) are skipped.
[[nodiscard]] EmitResult emit_assertions(const std::string& source, const ir::Design& design,
                                         const std::vector<CandidateScore>& ranked,
                                         std::size_t top);

}  // namespace hlsav::mine
