#include "mine/invariant.h"

namespace hlsav::mine {

const char* invariant_kind_name(InvariantKind k) {
  switch (k) {
    case InvariantKind::kConst: return "const";
    case InvariantKind::kRange: return "range";
    case InvariantKind::kEquality: return "equal";
    case InvariantKind::kOrdering: return "order";
    case InvariantKind::kStreamConst: return "stream-const";
    case InvariantKind::kStreamRange: return "stream-range";
    case InvariantKind::kStreamOrdered: return "stream-ordered";
  }
  return "?";
}

std::string Invariant::describe() const {
  std::string s = invariant_kind_name(kind);
  s += " ";
  s += text;
  s += " (support ";
  s += std::to_string(support);
  s += ")";
  return s;
}

}  // namespace hlsav::mine
