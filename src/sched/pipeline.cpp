// Iterative modulo scheduling for pipelined loops.
//
// The loop test (header ops) is absorbed into the pipeline, so one loop
// iteration spans the concatenated header+body op list. The initiation
// interval starts at the resource-constrained minimum (ResMII) and is
// increased until a schedule satisfying all modulo resource constraints
// and loop-carried dependences exists.
//
// The paper's Table 4 numbers come out of exactly this machinery: a
// stream write occupies the channel controller for
// `stream_write_occupancy` modulo slots (an inlined assertion's failure
// send therefore forces II >= 2 on a rate-1 loop), and every block-RAM
// access occupies the memory's single application port for one slot
// (three accesses -> II 3).
#include <map>
#include <unordered_map>

#include "sched/schedule.h"

namespace hlsav::sched {

namespace {

bool is_zero_cost(const ir::Op& op) {
  return op.kind == ir::OpKind::kAssert || op.kind == ir::OpKind::kAssertTap ||
         op.kind == ir::OpKind::kAssertFailWire ||
         op.kind == ir::OpKind::kAssertCycles;
}

bool assert_only_stage(const ir::Op& op) {
  return op.assert_tag != ir::kNoAssertTag && !op.is_extraction &&
         op.kind != ir::OpKind::kLoad && !is_zero_cost(op);
}

struct TrialResult {
  bool ok = false;
  std::vector<unsigned> state;
  std::vector<unsigned> depth;
};

/// One modulo-scheduling attempt at a fixed II.
TrialResult try_schedule(const ir::Process& proc, const std::vector<ir::Op>& ops,
                         const std::vector<std::vector<const DepEdge*>>& in, unsigned ii,
                         const SchedOptions& opts) {
  TrialResult r;
  r.state.assign(ops.size(), 0);
  r.depth.assign(ops.size(), 0);
  std::vector<unsigned>& depth = r.depth;

  // Modulo reservation tables.
  std::vector<std::map<ir::MemId, unsigned>> port_use(ii);
  std::vector<std::map<ir::StreamId, unsigned>> stream_use(ii);
  // Per absolute stage: whether it holds application / assert-only ops.
  std::map<unsigned, bool> stage_has_app;
  std::map<unsigned, bool> stage_has_assert;

  const unsigned stage_limit = 16 * ii + 64;  // search cutoff

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const ir::Op& op = ops[i];
    unsigned earliest = 0;
    for (const DepEdge* e : in[i]) {
      earliest = std::max(earliest, r.state[e->from] + e->min_delta);
    }

    if (is_zero_cost(op)) {
      r.state[i] = earliest;
      continue;
    }

    bool want_assert_only = assert_only_stage(op);
    unsigned s = earliest;
    for (;; ++s) {
      if (s > stage_limit) return r;  // infeasible at this II
      // Stage-sharing rule for inlined assertion logic.
      if (want_assert_only && stage_has_app[s]) continue;
      if (!want_assert_only && stage_has_assert[s]) continue;
      // Modulo resources.
      if (op.is_memory_access() && port_use[s % ii][op.mem] >= opts.mem_ports) continue;
      if (op.is_stream_access()) {
        unsigned occ = op.kind == ir::OpKind::kStreamWrite ? opts.stream_write_occupancy : 1;
        occ = std::min(occ, ii);
        bool free = true;
        for (unsigned k = 0; k < occ; ++k) {
          if (stream_use[(s + k) % ii][op.stream] >= 1) {
            free = false;
            break;
          }
        }
        if (!free) continue;
      }
      // Chaining depth within the stage.
      unsigned d = op_depth(proc, op);
      bool has_pred = false;
      for (const DepEdge* e : in[i]) {
        if (!e->carries_value || !e->chainable) continue;
        if (r.state[e->from] == s && !is_zero_cost(ops[e->from])) {
          has_pred = true;
          d = std::max(d, depth[e->from] + op_depth(proc, op));
        }
      }
      if (d > opts.chain_depth && has_pred) continue;

      // Place.
      r.state[i] = s;
      depth[i] = std::min(d, opts.chain_depth);
      if (want_assert_only) {
        stage_has_assert[s] = true;
      } else {
        stage_has_app[s] = true;
      }
      if (op.is_memory_access()) ++port_use[s % ii][op.mem];
      if (op.is_stream_access()) {
        unsigned occ = op.kind == ir::OpKind::kStreamWrite ? opts.stream_write_occupancy : 1;
        occ = std::min(occ, ii);
        for (unsigned k = 0; k < occ; ++k) ++stream_use[(s + k) % ii][op.stream];
      }
      break;
    }
  }
  r.ok = true;
  return r;
}

/// Checks loop-carried dependences for a candidate schedule.
bool carried_deps_ok(const std::vector<ir::Op>& ops, const std::vector<unsigned>& state,
                     unsigned ii) {
  // Registers: a use at index u before the first def of that register
  // reads the previous iteration's (last) def.
  std::unordered_map<ir::RegId, std::size_t> first_def;
  std::unordered_map<ir::RegId, std::size_t> last_def;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].dest == ir::kNoReg) continue;
    if (!first_def.contains(ops[i].dest)) first_def[ops[i].dest] = i;
    last_def[ops[i].dest] = i;
  }
  auto check_reg_use = [&](std::size_t u, const ir::Operand& o) {
    if (!o.is_reg()) return true;
    auto fit = first_def.find(o.reg);
    if (fit == first_def.end() || u < fit->second) {
      if (fit == first_def.end()) return true;  // live-in, loop-invariant
      std::size_t d = last_def.at(o.reg);
      unsigned lat = std::max(1u, op_latency(ops[d]));
      return state[u] + ii >= state[d] + lat;
    }
    return true;
  };
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (const ir::Operand& a : ops[i].args) {
      if (!check_reg_use(i, a)) return false;
    }
    if (!ops[i].pred.is_none() && !check_reg_use(i, ops[i].pred)) return false;
  }

  // Memory: a load before a store to the same memory must not overtake
  // the previous iteration's store; stores keep order across iterations.
  std::unordered_map<ir::MemId, std::size_t> first_access;
  std::unordered_map<ir::MemId, std::size_t> last_store;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == ir::OpKind::kStore) last_store[ops[i].mem] = i;
    if (ops[i].is_memory_access() && !first_access.contains(ops[i].mem)) {
      first_access[ops[i].mem] = i;
    }
  }
  for (const auto& [mem, st] : last_store) {
    auto fa = first_access.find(mem);
    if (fa == first_access.end()) continue;
    if (fa->second < st) {
      if (state[fa->second] + ii < state[st] + 1) return false;
    }
  }

  // Streams: one iteration's first access on a channel must follow the
  // previous iteration's last access.
  std::unordered_map<ir::StreamId, std::size_t> first_stream;
  std::unordered_map<ir::StreamId, std::size_t> last_stream;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].is_stream_access()) continue;
    if (!first_stream.contains(ops[i].stream)) first_stream[ops[i].stream] = i;
    last_stream[ops[i].stream] = i;
  }
  for (const auto& [stream, last] : last_stream) {
    std::size_t first = first_stream.at(stream);
    if (first != last && state[first] + ii < state[last] + 1) return false;
  }
  return true;
}

}  // namespace

BlockSchedule schedule_pipeline(const ir::Design& design, const ir::Process& proc,
                                const ir::BasicBlock& header, const ir::BasicBlock& body,
                                const SchedOptions& opts) {

  std::vector<ir::Op> ops;
  ops.reserve(header.ops.size() + body.ops.size());
  for (const ir::Op& op : header.ops) ops.push_back(op);
  for (const ir::Op& op : body.ops) ops.push_back(op);

  std::vector<DepEdge> edges = build_deps(design, proc, ops, /*ignore_war=*/true);
  std::vector<std::vector<const DepEdge*>> in(ops.size());
  for (const DepEdge& e : edges) in[e.to].push_back(&e);

  // Resource-constrained minimum II.
  std::map<ir::MemId, unsigned> mem_accesses;
  std::map<ir::StreamId, unsigned> stream_occ;
  for (const ir::Op& op : ops) {
    if (op.is_memory_access()) ++mem_accesses[op.mem];
    if (op.kind == ir::OpKind::kStreamRead) stream_occ[op.stream] += 1;
    if (op.kind == ir::OpKind::kStreamWrite) stream_occ[op.stream] += opts.stream_write_occupancy;
  }
  unsigned res_mii = 1;
  for (const auto& [mem, n] : mem_accesses) {
    res_mii = std::max(res_mii, (n + opts.mem_ports - 1) / opts.mem_ports);
  }
  for (const auto& [stream, occ] : stream_occ) res_mii = std::max(res_mii, occ);

  for (unsigned ii = res_mii; ii <= opts.max_ii; ++ii) {
    TrialResult trial = try_schedule(proc, ops, in, ii, opts);
    if (!trial.ok) continue;
    if (!carried_deps_ok(ops, trial.state, ii)) continue;

    BlockSchedule bs;
    bs.block = body.id;
    bs.pipelined = true;
    bs.ii = ii;
    unsigned max_state = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) max_state = std::max(max_state, trial.state[i]);
    bs.latency = max_state + 1;
    bs.header_op_state.assign(trial.state.begin(),
                              trial.state.begin() + static_cast<long>(header.ops.size()));
    bs.op_state.assign(trial.state.begin() + static_cast<long>(header.ops.size()),
                       trial.state.end());
    bs.op_chain_depth.assign(trial.depth.begin() + static_cast<long>(header.ops.size()),
                             trial.depth.end());
    return bs;
  }
  internal_error("sched/pipeline", 0,
                 "no feasible initiation interval <= " + std::to_string(opts.max_ii) +
                     " for pipelined loop in process '" + proc.name + "'");
}

}  // namespace hlsav::sched
