// Sequential (FSM) scheduling of straight-line op lists.
//
// Greedy ASAP in program order under the timing model documented in
// schedule.h: chaining budget, one application port per block RAM and
// state, exclusive states for stream handshakes, and the assert-tag
// state-sharing rule that makes an inlined assertion occupy its own
// state(s) in the generated state machine.
#include <map>
#include <unordered_map>

#include "sched/schedule.h"

namespace hlsav::sched {

namespace {

enum class StateMark : std::uint8_t { kFree, kApp, kAssertOnly, kExclusive };

bool is_zero_cost(const ir::Op& op) {
  return op.kind == ir::OpKind::kAssert || op.kind == ir::OpKind::kAssertTap ||
         op.kind == ir::OpKind::kAssertFailWire ||
         op.kind == ir::OpKind::kAssertCycles;
}

struct StateInfo {
  StateMark mark = StateMark::kFree;
  std::map<ir::MemId, unsigned> port_use;
  bool has_ops = false;
};

/// What kind of state this op may share.
StateMark desired_mark(const ir::Op& op, bool streams_exclusive) {
  if (op.is_stream_access() && streams_exclusive) return StateMark::kExclusive;
  if (op.assert_tag != ir::kNoAssertTag && !op.is_extraction &&
      op.kind != ir::OpKind::kLoad && !is_zero_cost(op)) {
    return StateMark::kAssertOnly;
  }
  return StateMark::kApp;
}

bool mark_compatible(StateMark state, StateMark want) {
  if (state == StateMark::kFree) return true;
  if (state == StateMark::kExclusive || want == StateMark::kExclusive) return false;
  return state == want;
}

}  // namespace

SeqResult schedule_sequential(const ir::Design& design, const ir::Process& proc,
                              const std::vector<ir::Op>& ops, const ir::Operand& term_cond,
                              bool has_branch, const SchedOptions& opts) {

  std::vector<DepEdge> edges = build_deps(design, proc, ops);
  // Index incoming edges per op.
  std::vector<std::vector<const DepEdge*>> in(ops.size());
  for (const DepEdge& e : edges) in[e.to].push_back(&e);

  std::vector<unsigned> state(ops.size(), 0);
  std::vector<unsigned> depth(ops.size(), 0);
  std::vector<StateInfo> states;
  auto state_info = [&states](unsigned s) -> StateInfo& {
    if (s >= states.size()) states.resize(s + 1);
    return states[s];
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const ir::Op& op = ops[i];
    unsigned earliest = 0;
    for (const DepEdge* e : in[i]) {
      earliest = std::max(earliest, state[e->from] + e->min_delta);
    }

    if (is_zero_cost(op)) {
      // Taps and residual assert markers are wires: they take no
      // resources and never open a new state on their own unless a
      // dependence forces one.
      state[i] = earliest;
      depth[i] = 0;
      state_info(earliest);  // ensure the state exists for counting
      continue;
    }

    StateMark want = desired_mark(op, /*streams_exclusive=*/true);
    unsigned s = earliest;
    while (true) {
      StateInfo& si = state_info(s);
      if (!mark_compatible(si.mark, want) || (want == StateMark::kExclusive && si.has_ops)) {
        ++s;
        continue;
      }
      if (op.is_memory_access() && si.port_use[op.mem] >= opts.mem_ports) {
        ++s;
        continue;
      }
      // Chaining depth: value-producing predecessors in this same state.
      unsigned d = op_depth(proc, op);
      bool has_same_state_pred = false;
      for (const DepEdge* e : in[i]) {
        if (!e->carries_value || !e->chainable) continue;
        if (state[e->from] == s && !is_zero_cost(ops[e->from])) {
          has_same_state_pred = true;
          d = std::max(d, depth[e->from] + op_depth(proc, op));
        }
      }
      if (d > opts.chain_depth && has_same_state_pred) {
        ++s;
        continue;
      }
      // Place.
      state[i] = s;
      depth[i] = std::min(d, opts.chain_depth);
      si.has_ops = true;
      if (si.mark == StateMark::kFree) si.mark = want;
      if (op.is_memory_access()) ++si.port_use[op.mem];
      break;
    }
  }

  SeqResult out;
  out.op_state = std::move(state);
  out.op_chain_depth = std::move(depth);

  unsigned need = 0;
  bool any = false;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    need = std::max(need, out.op_state[i]);
    any = true;
  }
  // The terminator condition must be available by the final state.
  if (term_cond.is_reg()) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].dest == term_cond.reg) {
        need = std::max(need, out.op_state[i] + op_latency(ops[i]));
      }
    }
  }
  if (!any && !has_branch) {
    out.num_states = 0;
  } else {
    out.num_states = need + 1;
  }
  if (has_branch && out.num_states == 0) out.num_states = 1;
  return out;
}

}  // namespace hlsav::sched
