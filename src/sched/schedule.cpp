#include "sched/schedule.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace hlsav::sched {

unsigned op_depth(const ir::Op& op) {
  switch (op.kind) {
    case ir::OpKind::kCopy:
    case ir::OpKind::kResize:
    case ir::OpKind::kAssert:
    case ir::OpKind::kAssertTap:
      return 0;
    case ir::OpKind::kBin:
      switch (op.bin) {
        case ir::BinKind::kMul: return 3;
        case ir::BinKind::kDivU:
        case ir::BinKind::kDivS:
        case ir::BinKind::kRemU:
        case ir::BinKind::kRemS: return 4;
        default: return 1;
      }
    case ir::OpKind::kUn:
      return 1;
    case ir::OpKind::kLoad:
    case ir::OpKind::kStore:
    case ir::OpKind::kStreamRead:
    case ir::OpKind::kStreamWrite:
    case ir::OpKind::kCallExtern:
      return 1;
  }
  return 1;
}

unsigned op_depth(const ir::Process& proc, const ir::Op& op) {
  if (op.kind == ir::OpKind::kBin &&
      (op.bin == ir::BinKind::kAnd || op.bin == ir::BinKind::kOr ||
       op.bin == ir::BinKind::kXor) &&
      !op.args.empty() && proc.operand_width(op.args[0]) == 1) {
    return 0;
  }
  return op_depth(op);
}

unsigned op_latency(const ir::Op& op) {
  switch (op.kind) {
    case ir::OpKind::kLoad:         // synchronous block RAM read
    case ir::OpKind::kStreamRead:   // registered FIFO pop
    case ir::OpKind::kCallExtern:   // registered external-core output
      return 1;
    case ir::OpKind::kBin:
      switch (op.bin) {
        case ir::BinKind::kDivU:
        case ir::BinKind::kDivS:
        case ir::BinKind::kRemU:
        case ir::BinKind::kRemS: return 4;  // iterative divider
        default: return 0;
      }
    default:
      return 0;
  }
}

std::vector<DepEdge> build_deps(const ir::Design& design, const ir::Process& proc,
                                const std::vector<ir::Op>& ops, bool ignore_war) {
  std::vector<DepEdge> edges;
  auto add = [&edges](std::size_t from, std::size_t to, unsigned delta, bool chainable,
                      bool value = false) {
    edges.push_back(DepEdge{from, to, delta, chainable, value});
  };

  // Register def/use tracking (last def and all uses since that def).
  std::unordered_map<ir::RegId, std::size_t> last_def;
  std::unordered_map<ir::RegId, std::vector<std::size_t>> uses_since_def;
  // Memory access tracking.
  std::unordered_map<ir::MemId, std::size_t> last_store;
  std::unordered_map<ir::MemId, std::vector<std::size_t>> loads_since_store;
  // Stream access tracking.
  std::unordered_map<ir::StreamId, std::size_t> last_stream_op;

  auto visit_use = [&](std::size_t i, const ir::Operand& o) {
    if (!o.is_reg()) return;
    auto it = last_def.find(o.reg);
    if (it != last_def.end()) {
      const ir::Op& def = ops[it->second];
      unsigned lat = op_latency(def);
      add(it->second, i, lat, lat == 0, /*value=*/true);
    }
    uses_since_def[o.reg].push_back(i);
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const ir::Op& op = ops[i];
    for (const ir::Operand& a : op.args) visit_use(i, a);
    if (!op.pred.is_none()) visit_use(i, op.pred);

    if (op.dest != ir::kNoReg) {
      // WAR: earlier same-state reads see the old register value in both
      // the simulator (program order) and hardware (registered read), so
      // sharing a state is fine; just preserve program order.
      if (!ignore_war) {
        for (std::size_t u : uses_since_def[op.dest]) {
          if (u != i) add(u, i, 0, true);
        }
      }
      // WAW.
      if (auto it = last_def.find(op.dest); it != last_def.end()) add(it->second, i, 0, true);
      last_def[op.dest] = i;
      uses_since_def[op.dest].clear();
    }

    if (op.kind == ir::OpKind::kLoad) {
      if (auto it = last_store.find(op.mem); it != last_store.end()) {
        add(it->second, i, 1, false);  // read-after-write: data next state
      }
      loads_since_store[op.mem].push_back(i);
    } else if (op.kind == ir::OpKind::kStore) {
      if (auto it = last_store.find(op.mem); it != last_store.end()) {
        add(it->second, i, 1, false);
      }
      for (std::size_t l : loads_since_store[op.mem]) add(l, i, 0, false);
      // Mirror stores share the mirrored store's control: never earlier.
      const ir::Memory& mem = design.memory(op.mem);
      if (mem.role == ir::MemRole::kReplica) {
        if (auto it = last_store.find(mem.replica_of); it != last_store.end()) {
          add(it->second, i, 0, false);
        }
      }
      last_store[op.mem] = i;
      loads_since_store[op.mem].clear();
    } else if (op.kind == ir::OpKind::kAssertTap && op.mem != ir::kNoMem) {
      // Replica-backed tap: may only fire once the mirrored store has
      // committed, so the checker reads coherent replica contents.
      if (auto it = last_store.find(op.mem); it != last_store.end()) {
        add(it->second, i, 1, false);
      }
    }

    if (op.is_stream_access()) {
      if (auto it = last_stream_op.find(op.stream); it != last_stream_op.end()) {
        add(it->second, i, 1, false);  // handshakes on one channel serialize
      }
      last_stream_op[op.stream] = i;
    }
  }
  (void)proc;
  (void)design;
  return edges;
}

const ProcessSchedule* DesignSchedule::find(std::string_view process) const {
  for (const ProcessSchedule& p : processes) {
    if (p.process == process) return &p;
  }
  return nullptr;
}

ProcessSchedule schedule_process(const ir::Design& design, const ir::Process& proc,
                                 const SchedOptions& opts) {
  ProcessSchedule sched;
  sched.process = proc.name;
  sched.blocks.resize(proc.blocks.size());

  // Identify pipelined loops: their header + body are scheduled together.
  std::unordered_map<ir::BlockId, const ir::LoopInfo*> pipelined_body;
  std::unordered_map<ir::BlockId, const ir::LoopInfo*> pipelined_header;
  for (const ir::LoopInfo& l : proc.loops) {
    if (!l.pipelined) continue;
    pipelined_body[l.body] = &l;
    pipelined_header[l.header] = &l;
  }

  for (const ir::BasicBlock& b : proc.blocks) {
    BlockSchedule& bs = sched.blocks[b.id];
    bs.block = b.id;
    if (auto it = pipelined_body.find(b.id); it != pipelined_body.end()) {
      bs = schedule_pipeline(design, proc, proc.block(it->second->header), b, opts);
      continue;
    }
    if (pipelined_header.contains(b.id)) {
      // Header is absorbed into the pipeline; contributes no states.
      bs.op_state.assign(b.ops.size(), 0);
      bs.num_states = 0;
      continue;
    }
    bool has_branch = b.term.kind == ir::TermKind::kBranch;
    SeqResult r = schedule_sequential(design, proc, b.ops, b.term.cond, has_branch, opts);
    bs.op_state = std::move(r.op_state);
    bs.op_chain_depth = std::move(r.op_chain_depth);
    bs.num_states = r.num_states;
  }

  sched.total_states = 0;
  for (const BlockSchedule& bs : sched.blocks) {
    sched.total_states += bs.pipelined ? bs.latency : bs.num_states;
  }
  return sched;
}

DesignSchedule schedule_design(const ir::Design& design, const SchedOptions& opts) {
  DesignSchedule out;
  out.processes.reserve(design.processes.size());
  for (const auto& p : design.processes) {
    out.processes.push_back(schedule_process(design, *p, opts));
  }
  return out;
}

LoopPerf loop_perf(const ProcessSchedule& sched, ir::BlockId body) {
  const BlockSchedule& bs = sched.of(body);
  HLSAV_CHECK(bs.pipelined, "loop_perf on a non-pipelined block");
  return LoopPerf{bs.latency, bs.ii};
}

namespace {
/// A failure block only executes when an assertion fires: all its ops are
/// tagged with an assertion id.
bool is_failure_block(const ir::BasicBlock& b) {
  if (b.ops.empty()) return false;
  for (const ir::Op& op : b.ops) {
    if (op.assert_tag == ir::kNoAssertTag) return false;
  }
  return b.term.kind == ir::TermKind::kJump;
}
}  // namespace

unsigned passing_path_states(const ir::Process& proc, const ProcessSchedule& sched) {
  std::vector<bool> reachable(proc.blocks.size(), false);
  std::vector<ir::BlockId> work{proc.entry};
  while (!work.empty()) {
    ir::BlockId id = work.back();
    work.pop_back();
    if (id == ir::kNoBlock || reachable[id]) continue;
    reachable[id] = true;
    const ir::BasicBlock& b = proc.block(id);
    auto push = [&](ir::BlockId next) {
      if (next != ir::kNoBlock && !reachable[next] && !is_failure_block(proc.block(next))) {
        work.push_back(next);
      }
    };
    switch (b.term.kind) {
      case ir::TermKind::kJump:
        push(b.term.on_true);
        break;
      case ir::TermKind::kBranch:
        push(b.term.on_true);
        push(b.term.on_false);
        break;
      case ir::TermKind::kReturn:
        break;
    }
  }
  unsigned states = 0;
  for (const ir::BasicBlock& b : proc.blocks) {
    if (!reachable[b.id]) continue;
    const BlockSchedule& bs = sched.of(b.id);
    states += bs.pipelined ? bs.latency : bs.num_states;
  }
  return states;
}

std::string print_schedule(const ir::Design& design, const ProcessSchedule& sched) {
  const ir::Process* proc = design.find_process(sched.process);
  HLSAV_CHECK(proc != nullptr, "schedule for unknown process");
  std::ostringstream os;
  os << "schedule " << sched.process << " (total_states=" << sched.total_states << ")\n";
  for (const ir::BasicBlock& b : proc->blocks) {
    const BlockSchedule& bs = sched.blocks[b.id];
    os << "  " << b.name << ": ";
    if (bs.pipelined) {
      os << "pipelined latency=" << bs.latency << " rate=" << bs.ii;
    } else {
      os << "states=" << bs.num_states;
    }
    os << '\n';
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      os << "    s" << bs.op_state[i] << ": " << ir::op_kind_name(b.ops[i].kind);
      if (b.ops[i].assert_tag != ir::kNoAssertTag) {
        os << (b.ops[i].is_extraction ? " [extract#" : " [assert#")
           << b.ops[i].assert_tag << "]";
      }
      os << '\n';
    }
  }
  return os.str();
}

ir::ProcessDebugInfo debug_info(const ir::Process& proc, const ProcessSchedule& sched) {
  std::vector<ir::BlockStateView> views(proc.blocks.size());
  for (const ir::BasicBlock& b : proc.blocks) {
    const BlockSchedule& bs = sched.of(b.id);
    ir::BlockStateView& v = views[b.id];
    v.op_state = &bs.op_state;
    v.header_op_state = &bs.header_op_state;
    v.num_states = bs.num_states;
    v.pipelined = bs.pipelined;
  }
  return {proc, std::move(views)};
}

}  // namespace hlsav::sched
