// HLS scheduling: basic blocks to FSM states, pipelined loops to modulo
// schedules.
//
// Timing model (calibrated to Impulse-C's observable behaviour, see
// DESIGN.md):
//  - Combinational ops chain within a state up to `chain_depth` levels.
//  - Block RAMs are synchronous: a load issues in state s (using the
//    memory's single application-side port) and its data is usable,
//    chainably, from state s+1. Loads never hoist above a program-order
//    earlier store to the same memory.
//  - Stream ops occupy a one-op-per-state channel controller in
//    sequential code; inside pipelined loops a stream *write* occupies
//    the controller for `stream_write_occupancy` slots (request +
//    transfer), which is what makes an inlined assertion's failure-send
//    halve a rate-1 pipeline (paper Table 4).
//  - Ops carrying an assert_tag (the inlined condition of an unoptimized
//    assertion) may not share a state with application ops -- the
//    assertion is its own statement in the generated state machine --
//    except loads, which may issue early into application states when a
//    port is free. Extraction ops (is_extraction) merge freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/debug_info.h"
#include "ir/ir.h"

namespace hlsav::sched {

struct SchedOptions {
  /// Maximum chained combinational levels per state.
  unsigned chain_depth = 4;
  /// Usable application-side ports per block RAM (the platform wrapper
  /// owns the second physical port; see paper §3.2).
  unsigned mem_ports = 1;
  /// Controller slots a stream write occupies inside a pipelined loop.
  unsigned stream_write_occupancy = 2;
  /// Upper bound for initiation-interval search.
  unsigned max_ii = 64;
};

/// Combinational depth contributed by an op (0 = wire).
[[nodiscard]] unsigned op_depth(const ir::Op& op);
/// Width-aware variant: 1-bit logic gates pack into wide LUTs and
/// contribute no level of their own.
[[nodiscard]] unsigned op_depth(const ir::Process& proc, const ir::Op& op);
/// Registered latency of an op in cycles (0 = result usable same state).
[[nodiscard]] unsigned op_latency(const ir::Op& op);

struct BlockSchedule {
  ir::BlockId block = ir::kNoBlock;
  /// Issue state of each op, 0-based within the block.
  std::vector<unsigned> op_state;
  /// Accumulated combinational depth of each op within its state (the
  /// timing model's critical-path input).
  std::vector<unsigned> op_chain_depth;
  /// Sequential states this block contributes (0 for merged empty blocks).
  unsigned num_states = 0;

  // Pipelined loop bodies only:
  bool pipelined = false;
  unsigned ii = 0;       // initiation interval ("rate" in the paper)
  unsigned latency = 0;  // pipeline depth in cycles ("latency")
  /// Issue state of each merged header op (pipelined loops absorb the
  /// loop test into the pipeline).
  std::vector<unsigned> header_op_state;
};

struct ProcessSchedule {
  std::string process;
  std::vector<BlockSchedule> blocks;  // indexed by BlockId
  /// Total FSM states (feeds the area model's state-register costing).
  unsigned total_states = 0;

  [[nodiscard]] const BlockSchedule& of(ir::BlockId b) const { return blocks.at(b); }
};

struct DesignSchedule {
  std::vector<ProcessSchedule> processes;

  [[nodiscard]] const ProcessSchedule* find(std::string_view process) const;
};

/// Performance of one pipelined loop, in the paper's terms.
struct LoopPerf {
  unsigned latency = 0;
  unsigned rate = 0;
};

/// Schedules every process in the design. Throws InternalError on
/// malformed input (run ir::verify first).
[[nodiscard]] DesignSchedule schedule_design(const ir::Design& design,
                                             const SchedOptions& opts = {});

/// Schedules a single process.
[[nodiscard]] ProcessSchedule schedule_process(const ir::Design& design, const ir::Process& proc,
                                               const SchedOptions& opts = {});

/// Latency/rate of the pipelined loop whose body is `body`.
[[nodiscard]] LoopPerf loop_perf(const ProcessSchedule& sched, ir::BlockId body);

/// Builds the shared op<->state<->source table for a scheduled process
/// (borrows `sched`'s issue-state vectors; keep both alive). This is
/// the one mapping the profiler, the replay decoder, the RTL printers
/// and the compiled-simulation backend agree on.
[[nodiscard]] ir::ProcessDebugInfo debug_info(const ir::Process& proc,
                                              const ProcessSchedule& sched);

/// FSM states on the passing path: the sum of states over blocks
/// reachable without an assertion failing (assertion-failure blocks are
/// excluded). This is the paper's latency metric -- failure branches
/// cost area but never application cycles unless an assertion fires.
[[nodiscard]] unsigned passing_path_states(const ir::Process& proc,
                                           const ProcessSchedule& sched);

/// Renders a schedule for debugging.
[[nodiscard]] std::string print_schedule(const ir::Design& design, const ProcessSchedule& sched);

// Internals shared by sequential and modulo scheduling --------------------

/// Dependence edge: op `from` must complete before op `to` issues
/// (`min_delta` extra states), or may share a state (min_delta 0).
struct DepEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  unsigned min_delta = 0;   // issue(to) >= issue(from) + min_delta
  bool chainable = false;   // same-state OK if depth budget allows
  bool carries_value = false;  // RAW edge: contributes to chain depth
};

/// Builds intra-block dependence edges over `ops` (program order indices).
/// Pipelined bodies pass `ignore_war = true`: write-after-read edges are
/// resolved by modulo variable expansion (per-stage register copies), so
/// they must not constrain the initiation interval. Mirror stores into
/// replica RAMs are ordered no earlier than the application store they
/// mirror (they share its control signals).
[[nodiscard]] std::vector<DepEdge> build_deps(const ir::Design& design, const ir::Process& proc,
                                              const std::vector<ir::Op>& ops,
                                              bool ignore_war = false);

/// Schedules a straight-line op list sequentially; returns issue states.
/// `term_cond`: optional operand that must be available (registered or
/// chained) by the final state; the state count is extended if needed.
struct SeqResult {
  std::vector<unsigned> op_state;
  std::vector<unsigned> op_chain_depth;
  unsigned num_states = 0;
};
[[nodiscard]] SeqResult schedule_sequential(const ir::Design& design, const ir::Process& proc,
                                            const std::vector<ir::Op>& ops,
                                            const ir::Operand& term_cond, bool has_branch,
                                            const SchedOptions& opts);

/// Modulo-schedules a pipelined loop (header ops + body ops). Returns the
/// block schedule with ii/latency filled in.
[[nodiscard]] BlockSchedule schedule_pipeline(const ir::Design& design, const ir::Process& proc,
                                              const ir::BasicBlock& header,
                                              const ir::BasicBlock& body,
                                              const SchedOptions& opts);

}  // namespace hlsav::sched
