#include "lang/type.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace hlsav::lang {

std::string Type::to_string() const {
  switch (kind_) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kInt:
      return (is_signed_ ? "int" : "uint") + std::to_string(width_);
    case TypeKind::kArray:
      return element_type().to_string() + "[" + std::to_string(array_size_) + "]";
    case TypeKind::kStream:
      return std::string(stream_dir_ == StreamDir::kIn ? "stream_in" : "stream_out") + "<" +
             std::to_string(width_) + ">";
  }
  return "?";
}

Type common_type(const Type& a, const Type& b) {
  HLSAV_CHECK(a.is_int() && b.is_int(), "common_type requires integer operands");
  unsigned w = std::max(a.width(), b.width());
  bool s = a.is_signed() && b.is_signed();
  return Type::int_type(w, s);
}

}  // namespace hlsav::lang
