// Semantic analysis for HLS-C.
//
// Resolves names, computes expression types (hardware-style width rules,
// see type.h), validates statements against synthesis constraints
// (streams only read/written in the right direction, const discipline,
// pipeline pragmas only on loops, ...), and assigns every assert
// statement a stable assertion id. The assertion catalogue built here is
// what the CPU-side notification function later uses to decode failure
// codes into the ANSI-C message (file, line, function, expression).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "support/diagnostics.h"

namespace hlsav::lang {

/// One assert statement discovered during analysis. Ids are dense,
/// assigned in source order, starting at 0.
struct AssertionInfo {
  std::uint32_t id = 0;
  SourceLoc loc;
  std::string function;
  std::string condition_text;
  std::string file_name;

  /// Renders the ANSI-C abort message for this assertion.
  [[nodiscard]] std::string failure_message() const;
};

/// Result of analyzing a Program.
struct SemaResult {
  bool ok = false;
  std::vector<AssertionInfo> assertions;
};

/// Analyzes `program` in place (fills Expr::type, Stmt::assert_id, ...).
[[nodiscard]] SemaResult analyze(Program& program, const SourceManager& sm,
                                 DiagnosticEngine& diags);

}  // namespace hlsav::lang
