// Type system of the HLS-C subset.
//
// HLS-C is hardware-oriented C: every integer type has an explicit bit
// width (int8/uint8 ... int64/uint64, plus intN/uintN for any N in 1..64).
// Unlike ISO C there is no promotion to `int`: binary operators work at
// the wider of the two operand widths, which is what the generated
// datapath does. Arrays map to block RAMs / ROMs, stream parameters map
// to the HLS tool's communication channels (Impulse-C co_stream).
#pragma once

#include <cstdint>
#include <string>

namespace hlsav::lang {

enum class TypeKind : std::uint8_t {
  kVoid,
  kInt,     // fixed-width integer, signed or unsigned
  kArray,   // fixed-size array of integers (block RAM / ROM)
  kStream,  // communication channel endpoint (parameter-only)
};

enum class StreamDir : std::uint8_t { kIn, kOut };

/// Value type; cheap to copy.
class Type {
 public:
  Type() = default;

  static Type void_type() { return Type(TypeKind::kVoid, 0, false); }
  static Type int_type(unsigned width, bool is_signed) {
    return Type(TypeKind::kInt, width, is_signed);
  }
  static Type bool_type() { return int_type(1, false); }
  static Type array_type(unsigned elem_width, bool elem_signed, std::uint64_t size) {
    Type t(TypeKind::kArray, elem_width, elem_signed);
    t.array_size_ = size;
    return t;
  }
  static Type stream_type(unsigned elem_width, StreamDir dir) {
    Type t(TypeKind::kStream, elem_width, false);
    t.stream_dir_ = dir;
    return t;
  }

  [[nodiscard]] TypeKind kind() const { return kind_; }
  [[nodiscard]] bool is_void() const { return kind_ == TypeKind::kVoid; }
  [[nodiscard]] bool is_int() const { return kind_ == TypeKind::kInt; }
  [[nodiscard]] bool is_array() const { return kind_ == TypeKind::kArray; }
  [[nodiscard]] bool is_stream() const { return kind_ == TypeKind::kStream; }

  /// Bit width of the integer, array element or stream element.
  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] bool is_signed() const { return is_signed_; }
  [[nodiscard]] std::uint64_t array_size() const { return array_size_; }
  [[nodiscard]] StreamDir stream_dir() const { return stream_dir_; }

  /// Element type of an array or stream.
  [[nodiscard]] Type element_type() const { return int_type(width_, is_signed_); }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Type&, const Type&) = default;

 private:
  Type(TypeKind kind, unsigned width, bool is_signed)
      : kind_(kind), width_(width), is_signed_(is_signed) {}

  TypeKind kind_ = TypeKind::kVoid;
  unsigned width_ = 0;
  bool is_signed_ = false;
  std::uint64_t array_size_ = 0;
  StreamDir stream_dir_ = StreamDir::kIn;
};

/// Result type of a binary arithmetic/bitwise operator: the wider width;
/// signed only if both operands are signed (hardware-style, no promotion).
[[nodiscard]] Type common_type(const Type& a, const Type& b);

}  // namespace hlsav::lang
