#include "lang/ast.h"

#include "support/diagnostics.h"

namespace hlsav::lang {

const char* binary_op_spelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kRem: return "%";
    case BinaryOp::kAnd: return "&";
    case BinaryOp::kOr: return "|";
    case BinaryOp::kXor: return "^";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLogicalAnd: return "&&";
    case BinaryOp::kLogicalOr: return "||";
  }
  return "?";
}

const char* unary_op_spelling(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "~";
    case UnaryOp::kLogicalNot: return "!";
  }
  return "?";
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------- Expr --

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->type = type;
  e->literal = literal;
  e->literal_signed = literal_signed;
  e->name = name;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  e->operands.reserve(operands.size());
  for (const ExprPtr& op : operands) e->operands.push_back(op->clone());
  return e;
}

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::kIntLit:
      return literal.to_string_dec(literal_signed);
    case ExprKind::kVarRef:
      return name;
    case ExprKind::kArrayIndex:
      return name + "[" + operands[0]->to_string() + "]";
    case ExprKind::kUnary:
      return std::string(unary_op_spelling(unary_op)) + "(" + operands[0]->to_string() + ")";
    case ExprKind::kBinary:
      return "(" + operands[0]->to_string() + " " + binary_op_spelling(binary_op) + " " +
             operands[1]->to_string() + ")";
    case ExprKind::kCall: {
      std::string s = name + "(";
      for (std::size_t i = 0; i < operands.size(); ++i) {
        if (i != 0) s += ", ";
        s += operands[i]->to_string();
      }
      return s + ")";
    }
    case ExprKind::kStreamRead:
      return "stream_read(" + name + ")";
  }
  return "?";
}

ExprPtr make_int_lit(SourceLoc loc, BitVector value, bool is_signed) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->loc = loc;
  e->literal = std::move(value);
  e->literal_signed = is_signed;
  return e;
}

ExprPtr make_var_ref(SourceLoc loc, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVarRef;
  e->loc = loc;
  e->name = std::move(name);
  return e;
}

ExprPtr make_array_index(SourceLoc loc, std::string array, ExprPtr index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kArrayIndex;
  e->loc = loc;
  e->name = std::move(array);
  e->operands.push_back(std::move(index));
  return e;
}

ExprPtr make_unary(SourceLoc loc, UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->loc = loc;
  e->unary_op = op;
  e->operands.push_back(std::move(operand));
  return e;
}

ExprPtr make_binary(SourceLoc loc, BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->loc = loc;
  e->binary_op = op;
  e->operands.push_back(std::move(lhs));
  e->operands.push_back(std::move(rhs));
  return e;
}

ExprPtr make_call(SourceLoc loc, std::string callee, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->loc = loc;
  e->name = std::move(callee);
  e->operands = std::move(args);
  return e;
}

ExprPtr make_stream_read(SourceLoc loc, std::string stream) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStreamRead;
  e->loc = loc;
  e->name = std::move(stream);
  return e;
}

// ---------------------------------------------------------------- Stmt --

LValue LValue::clone() const {
  LValue l;
  l.loc = loc;
  l.name = name;
  if (index) l.index = index->clone();
  return l;
}

std::string LValue::to_string() const {
  return index ? name + "[" + index->to_string() + "]" : name;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  s->pragmas = pragmas;
  for (const StmtPtr& b : body) s->body.push_back(b->clone());
  s->decl_name = decl_name;
  s->decl_type = decl_type;
  s->decl_is_const = decl_is_const;
  for (const ExprPtr& e : decl_init) s->decl_init.push_back(e->clone());
  s->lhs = lhs.clone();
  if (rhs) s->rhs = rhs->clone();
  if (cond) s->cond = cond->clone();
  for (const StmtPtr& b : else_body) s->else_body.push_back(b->clone());
  if (for_init) s->for_init = for_init->clone();
  if (for_step) s->for_step = for_step->clone();
  s->assert_text = assert_text;
  s->assert_function = assert_function;
  s->assert_id = assert_id;
  s->cycle_bound = cycle_bound;
  s->stream_name = stream_name;
  return s;
}

StmtPtr make_block(SourceLoc loc, std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kBlock;
  s->loc = loc;
  s->body = std::move(body);
  return s;
}

StmtPtr make_assign(SourceLoc loc, LValue lhs, ExprPtr rhs) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kAssign;
  s->loc = loc;
  s->lhs = std::move(lhs);
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr make_assert(SourceLoc loc, ExprPtr cond, std::string text) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kAssert;
  s->loc = loc;
  s->cond = std::move(cond);
  s->assert_text = std::move(text);
  return s;
}

StmtPtr make_stream_write(SourceLoc loc, std::string stream, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kStreamWrite;
  s->loc = loc;
  s->stream_name = std::move(stream);
  s->rhs = std::move(value);
  return s;
}

// ------------------------------------------------------------ Function --

bool Function::is_process() const {
  if (!return_type.is_void() || is_extern_hdl) return false;
  for (const Param& p : params) {
    if (!p.type.is_stream()) return false;
  }
  return true;
}

const Function* Program::find_function(std::string_view name) const {
  for (const auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

// --------------------------------------------------------- AST walking --

namespace {
template <typename Fn>
void walk_one(Stmt& s, const Fn& fn) {
  fn(s);
  for (auto& b : s.body) walk_one(*b, fn);
  for (auto& b : s.else_body) walk_one(*b, fn);
  if (s.for_init) walk_one(*s.for_init, fn);
  if (s.for_step) walk_one(*s.for_step, fn);
}
}  // namespace

void walk_stmts(std::vector<StmtPtr>& body, const std::function<void(Stmt&)>& fn) {
  for (auto& s : body) walk_one(*s, fn);
}

void walk_stmts(const std::vector<StmtPtr>& body, const std::function<void(const Stmt&)>& fn) {
  for (const auto& s : body) {
    walk_one(const_cast<Stmt&>(*s), [&fn](Stmt& st) { fn(st); });
  }
}

void walk_exprs(const Expr& expr, const std::function<void(const Expr&)>& fn) {
  fn(expr);
  for (const ExprPtr& op : expr.operands) walk_exprs(*op, fn);
}

void walk_exprs(const Stmt& stmt, const std::function<void(const Expr&)>& fn) {
  auto visit = [&fn](const ExprPtr& e) {
    if (e) walk_exprs(*e, fn);
  };
  for (const ExprPtr& e : stmt.decl_init) visit(e);
  if (stmt.lhs.index) visit(stmt.lhs.index);
  visit(stmt.rhs);
  visit(stmt.cond);
  for (const StmtPtr& s : stmt.body) walk_exprs(*s, fn);
  for (const StmtPtr& s : stmt.else_body) walk_exprs(*s, fn);
  if (stmt.for_init) walk_exprs(*stmt.for_init, fn);
  if (stmt.for_step) walk_exprs(*stmt.for_step, fn);
}

}  // namespace hlsav::lang
