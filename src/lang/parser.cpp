#include "lang/parser.h"

#include "lang/lexer.h"
#include "support/str.h"

namespace hlsav::lang {

Parser::Parser(const SourceManager& sm, FileId file, DiagnosticEngine& diags)
    : sm_(sm), file_(file), diags_(diags) {
  Lexer lexer(sm, file, diags);
  tokens_ = lexer.lex_all();
}

const Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::consume() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokKind k) {
  if (!at(k)) return false;
  consume();
  return true;
}

const Token& Parser::expect(TokKind k, const char* what) {
  if (!at(k)) {
    fail(cur(), std::string("expected ") + std::string(tok_kind_name(k)) + " " + what + ", found " +
                    std::string(tok_kind_name(cur().kind)));
  }
  return consume();
}

void Parser::fail(const Token& tok, std::string message) {
  diags_.error(tok.loc, std::move(message));
  throw ParseError{};
}

void Parser::sync_to_toplevel() {
  // Skip to the next top-level construct: a type keyword following a '}'
  // or the end of file. Good enough for reporting multiple errors.
  int depth = 0;
  while (!at(TokKind::kEof)) {
    if (at(TokKind::kLBrace)) ++depth;
    if (at(TokKind::kRBrace)) {
      consume();
      if (--depth <= 0) return;
      continue;
    }
    consume();
  }
}

void Parser::sync_to_stmt() {
  // Statement-level panic recovery: skip to just past the next ';' at
  // this nesting depth, or stop before the enclosing '}' -- so one bad
  // statement costs one diagnostic, not the rest of the function.
  int depth = 0;
  while (!at(TokKind::kEof)) {
    switch (cur().kind) {
      case TokKind::kSemicolon:
        consume();
        if (depth <= 0) return;
        break;
      case TokKind::kLBrace:
        ++depth;
        consume();
        break;
      case TokKind::kRBrace:
        if (depth <= 0) return;  // parse_block owns this one
        --depth;
        consume();
        break;
      default:
        consume();
        break;
    }
  }
}

// Returns the raw source between the start of token begin_tok and the
// start of token end_tok (exclusive), trimmed. end_tok is the index of
// the first token *after* the region of interest.
std::string Parser::source_between(std::size_t begin_tok, std::size_t end_tok) const {
  if (begin_tok >= end_tok || end_tok >= tokens_.size()) return {};
  std::size_t lo = tokens_[begin_tok].offset;
  std::size_t hi = tokens_[end_tok].offset;
  std::string_view text = sm_.text(file_);
  if (hi > text.size() || lo >= hi) return {};
  return std::string(trim(text.substr(lo, hi - lo)));
}

// ------------------------------------------------------------ Program --

std::unique_ptr<Program> Parser::parse_program() {
  auto prog = std::make_unique<Program>();
  prog->file = file_;
  while (!at(TokKind::kEof)) {
    try {
      if (at(TokKind::kPragma)) {
        consume();  // top-level pragmas are ignored
        continue;
      }
      bool is_extern = accept(TokKind::kKwExtern);
      prog->functions.push_back(parse_function(is_extern));
    } catch (const ParseError&) {
      sync_to_toplevel();
    }
  }
  return prog;
}

Type Parser::parse_int_type() {
  if (at(TokKind::kKwIntType) || at(TokKind::kKwUintType)) {
    bool is_signed = at(TokKind::kKwIntType);
    const Token& t = consume();
    return Type::int_type(static_cast<unsigned>(t.value), is_signed);
  }
  fail(cur(), "expected integer type");
}

Param Parser::parse_param() {
  Param p;
  p.loc = cur().loc;
  if (at(TokKind::kKwStreamIn) || at(TokKind::kKwStreamOut)) {
    StreamDir dir = at(TokKind::kKwStreamIn) ? StreamDir::kIn : StreamDir::kOut;
    consume();
    expect(TokKind::kLess, "after stream type");
    const Token& w = expect(TokKind::kIntLiteral, "stream element width");
    if (w.value < 1 || w.value > 64) fail(w, "stream width must be in 1..64");
    expect(TokKind::kGreater, "after stream width");
    p.type = Type::stream_type(static_cast<unsigned>(w.value), dir);
  } else {
    p.type = parse_int_type();
  }
  p.name = expect(TokKind::kIdentifier, "parameter name").text;
  return p;
}

std::unique_ptr<Function> Parser::parse_function(bool is_extern) {
  auto fn = std::make_unique<Function>();
  fn->loc = cur().loc;
  fn->is_extern_hdl = is_extern;
  if (accept(TokKind::kKwVoid)) {
    fn->return_type = Type::void_type();
  } else {
    fn->return_type = parse_int_type();
  }
  fn->name = expect(TokKind::kIdentifier, "function name").text;
  expect(TokKind::kLParen, "after function name");
  if (!at(TokKind::kRParen)) {
    do {
      fn->params.push_back(parse_param());
    } while (accept(TokKind::kComma));
  }
  expect(TokKind::kRParen, "after parameter list");
  if (is_extern) {
    expect(TokKind::kSemicolon, "after extern declaration");
  } else {
    expect(TokKind::kLBrace, "to open function body");
    fn->body = parse_block();
  }
  return fn;
}

// --------------------------------------------------------- Statements --

// Assumes the opening '{' was already consumed; consumes the closing '}'.
std::vector<StmtPtr> Parser::parse_block() {
  std::vector<StmtPtr> body;
  while (!at(TokKind::kRBrace)) {
    if (at(TokKind::kEof)) fail(cur(), "unexpected end of file inside block");
    try {
      body.push_back(parse_stmt());
    } catch (const ParseError&) {
      sync_to_stmt();
    }
  }
  consume();  // '}'
  return body;
}

Pragmas Parser::parse_pragmas() {
  Pragmas p;
  while (at(TokKind::kPragma)) {
    const Token& t = consume();
    std::vector<std::string> words;
    for (const std::string& w : split(t.text, ' ')) {
      if (!w.empty()) words.push_back(w);
    }
    if (words.size() >= 2 && words[0] == "pragma" && to_lower(words[1]) == "hls") {
      for (std::size_t i = 2; i < words.size(); ++i) {
        std::string w = to_lower(words[i]);
        if (w == "pipeline") {
          p.pipeline = true;
        } else if (w == "replicate") {
          p.replicate = true;
        } else {
          diags_.warning(t.loc, "unknown HLS pragma directive '" + words[i] + "'");
        }
      }
    }
    // Non-HLS pragmas are silently ignored, matching C compilers.
  }
  return p;
}

StmtPtr Parser::parse_stmt() {
  Pragmas pragmas = parse_pragmas();
  StmtPtr s = parse_stmt_no_pragma();
  if (pragmas.pipeline) s->pragmas.pipeline = true;
  if (pragmas.replicate) s->pragmas.replicate = true;
  return s;
}

StmtPtr Parser::parse_stmt_no_pragma() {
  switch (cur().kind) {
    case TokKind::kLBrace: {
      SourceLoc loc = consume().loc;
      return make_block(loc, parse_block());
    }
    case TokKind::kKwConst:
    case TokKind::kKwIntType:
    case TokKind::kKwUintType:
      return parse_decl();
    case TokKind::kKwIf:
      return parse_if();
    case TokKind::kKwWhile:
      return parse_while();
    case TokKind::kKwDo:
      return parse_do_while();
    case TokKind::kKwFor:
      return parse_for();
    case TokKind::kKwAssert:
      return parse_assert();
    case TokKind::kKwReturn: {
      SourceLoc loc = consume().loc;
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kReturn;
      s->loc = loc;
      if (!at(TokKind::kSemicolon)) s->rhs = parse_expr();
      expect(TokKind::kSemicolon, "after return");
      return s;
    }
    case TokKind::kKwBreak: {
      SourceLoc loc = consume().loc;
      expect(TokKind::kSemicolon, "after break");
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kBreak;
      s->loc = loc;
      return s;
    }
    case TokKind::kKwContinue: {
      SourceLoc loc = consume().loc;
      expect(TokKind::kSemicolon, "after continue");
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kContinue;
      s->loc = loc;
      return s;
    }
    default: {
      StmtPtr s = parse_simple_stmt();
      expect(TokKind::kSemicolon, "after statement");
      return s;
    }
  }
}

StmtPtr Parser::parse_decl() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kDecl;
  s->loc = cur().loc;
  s->decl_is_const = accept(TokKind::kKwConst);
  Type elem = parse_int_type();
  s->decl_name = expect(TokKind::kIdentifier, "variable name").text;
  if (accept(TokKind::kLBracket)) {
    const Token& sz = expect(TokKind::kIntLiteral, "array size");
    if (sz.value == 0) fail(sz, "array size must be positive");
    expect(TokKind::kRBracket, "after array size");
    s->decl_type = Type::array_type(elem.width(), elem.is_signed(), sz.value);
  } else {
    s->decl_type = elem;
  }
  if (accept(TokKind::kAssign)) {
    if (accept(TokKind::kLBrace)) {
      if (!s->decl_type.is_array()) fail(cur(), "brace initializer requires an array");
      do {
        s->decl_init.push_back(parse_expr());
      } while (accept(TokKind::kComma));
      expect(TokKind::kRBrace, "after array initializer");
    } else {
      if (s->decl_type.is_array()) fail(cur(), "array initializer must be brace-enclosed");
      s->decl_init.push_back(parse_expr());
    }
  }
  expect(TokKind::kSemicolon, "after declaration");
  return s;
}

StmtPtr Parser::parse_if() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kIf;
  s->loc = consume().loc;  // 'if'
  expect(TokKind::kLParen, "after if");
  s->cond = parse_expr();
  expect(TokKind::kRParen, "after if condition");
  s->body.push_back(parse_stmt());
  if (accept(TokKind::kKwElse)) s->else_body.push_back(parse_stmt());
  return s;
}

StmtPtr Parser::parse_do_while() {
  // Desugared to `while (1) { body; if (!cond) break; }` -- a bottom-
  // test loop without duplicating the body (declarations are function-
  // scoped, so cloning would redeclare).
  SourceLoc loc = consume().loc;  // 'do'
  StmtPtr body = parse_stmt();
  expect(TokKind::kKwWhile, "after do body");
  expect(TokKind::kLParen, "after while");
  ExprPtr cond = parse_expr();
  SourceLoc cond_loc = cond->loc;
  expect(TokKind::kRParen, "after do-while condition");
  expect(TokKind::kSemicolon, "after do-while");

  auto brk = std::make_unique<Stmt>();
  brk->kind = StmtKind::kBreak;
  brk->loc = cond_loc;
  auto exit_if = std::make_unique<Stmt>();
  exit_if->kind = StmtKind::kIf;
  exit_if->loc = cond_loc;
  exit_if->cond = make_unary(cond_loc, UnaryOp::kLogicalNot, std::move(cond));
  exit_if->body.push_back(std::move(brk));

  auto loop = std::make_unique<Stmt>();
  loop->kind = StmtKind::kWhile;
  loop->loc = loc;
  loop->cond = make_int_lit(loc, BitVector::from_bool(true));
  loop->body.push_back(std::move(body));
  loop->body.push_back(std::move(exit_if));
  return loop;
}

StmtPtr Parser::parse_while() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kWhile;
  s->loc = consume().loc;  // 'while'
  expect(TokKind::kLParen, "after while");
  s->cond = parse_expr();
  expect(TokKind::kRParen, "after while condition");
  s->body.push_back(parse_stmt());
  return s;
}

StmtPtr Parser::parse_for() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kFor;
  s->loc = consume().loc;  // 'for'
  expect(TokKind::kLParen, "after for");
  if (!at(TokKind::kSemicolon)) {
    if (at(TokKind::kKwIntType) || at(TokKind::kKwUintType) || at(TokKind::kKwConst)) {
      s->for_init = parse_decl();  // consumes its ';'
    } else {
      s->for_init = parse_simple_stmt();
      expect(TokKind::kSemicolon, "after for initializer");
    }
  } else {
    consume();
  }
  if (!at(TokKind::kSemicolon)) s->cond = parse_expr();
  expect(TokKind::kSemicolon, "after for condition");
  if (!at(TokKind::kRParen)) s->for_step = parse_simple_stmt();
  expect(TokKind::kRParen, "after for step");
  s->body.push_back(parse_stmt());
  return s;
}

StmtPtr Parser::parse_assert() {
  SourceLoc loc = consume().loc;  // 'assert'
  expect(TokKind::kLParen, "after assert");
  std::size_t cond_begin = pos_;
  ExprPtr cond = parse_expr();
  std::size_t cond_end = pos_;
  expect(TokKind::kRParen, "after assert condition");
  expect(TokKind::kSemicolon, "after assert");
  StmtPtr s = make_assert(loc, std::move(cond), source_between(cond_begin, cond_end));
  return s;
}

StmtPtr Parser::parse_simple_stmt() {
  if (at(TokKind::kIdentifier) && cur().text == "assert_cycles") {
    // Timing assertion (the paper's §6 future-work extension): checks
    // that no more than N cycles elapsed since the previous marker in
    // the same process (or process start).
    SourceLoc loc = consume().loc;
    expect(TokKind::kLParen, "after assert_cycles");
    std::size_t begin = pos_;
    ExprPtr bound = parse_expr();
    std::size_t end = pos_;
    expect(TokKind::kRParen, "after assert_cycles bound");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kAssertCycles;
    s->loc = loc;
    s->cond = std::move(bound);
    s->assert_text = source_between(begin, end);
    return s;
  }
  if (at(TokKind::kIdentifier) && cur().text == "stream_write") {
    SourceLoc loc = consume().loc;
    expect(TokKind::kLParen, "after stream_write");
    std::string stream = expect(TokKind::kIdentifier, "stream name").text;
    expect(TokKind::kComma, "after stream name");
    ExprPtr value = parse_expr();
    expect(TokKind::kRParen, "after stream_write value");
    return make_stream_write(loc, std::move(stream), std::move(value));
  }

  // lvalue op= expr | lvalue++ | lvalue--
  if (!at(TokKind::kIdentifier)) fail(cur(), "expected statement");
  LValue lhs;
  lhs.loc = cur().loc;
  lhs.name = consume().text;
  if (accept(TokKind::kLBracket)) {
    lhs.index = parse_expr();
    expect(TokKind::kRBracket, "after array index");
  }

  auto lhs_as_expr = [&]() -> ExprPtr {
    if (lhs.index) return make_array_index(lhs.loc, lhs.name, lhs.index->clone());
    return make_var_ref(lhs.loc, lhs.name);
  };

  auto compound = [&](BinaryOp op) -> StmtPtr {
    SourceLoc loc = consume().loc;
    ExprPtr rhs = parse_expr();
    return make_assign(loc, std::move(lhs), make_binary(loc, op, lhs_as_expr(), std::move(rhs)));
  };

  switch (cur().kind) {
    case TokKind::kAssign: {
      SourceLoc loc = consume().loc;
      return make_assign(loc, std::move(lhs), parse_expr());
    }
    case TokKind::kPlusAssign: return compound(BinaryOp::kAdd);
    case TokKind::kMinusAssign: return compound(BinaryOp::kSub);
    case TokKind::kStarAssign: return compound(BinaryOp::kMul);
    case TokKind::kSlashAssign: return compound(BinaryOp::kDiv);
    case TokKind::kPercentAssign: return compound(BinaryOp::kRem);
    case TokKind::kAmpAssign: return compound(BinaryOp::kAnd);
    case TokKind::kPipeAssign: return compound(BinaryOp::kOr);
    case TokKind::kCaretAssign: return compound(BinaryOp::kXor);
    case TokKind::kShlAssign: return compound(BinaryOp::kShl);
    case TokKind::kShrAssign: return compound(BinaryOp::kShr);
    case TokKind::kPlusPlus: {
      SourceLoc loc = consume().loc;
      return make_assign(loc, std::move(lhs),
                         make_binary(loc, BinaryOp::kAdd, lhs_as_expr(),
                                     make_int_lit(loc, BitVector::from_u64(32, 1))));
    }
    case TokKind::kMinusMinus: {
      SourceLoc loc = consume().loc;
      return make_assign(loc, std::move(lhs),
                         make_binary(loc, BinaryOp::kSub, lhs_as_expr(),
                                     make_int_lit(loc, BitVector::from_u64(32, 1))));
    }
    default:
      fail(cur(), "expected assignment operator");
  }
}

// -------------------------------------------------------- Expressions --

namespace {
// Binary operator precedence, C-like. Higher binds tighter.
int binary_prec(TokKind k) {
  switch (k) {
    case TokKind::kStar:
    case TokKind::kSlash:
    case TokKind::kPercent: return 10;
    case TokKind::kPlus:
    case TokKind::kMinus: return 9;
    case TokKind::kShl:
    case TokKind::kShr: return 8;
    case TokKind::kLess:
    case TokKind::kLessEq:
    case TokKind::kGreater:
    case TokKind::kGreaterEq: return 7;
    case TokKind::kEqEq:
    case TokKind::kBangEq: return 6;
    case TokKind::kAmp: return 5;
    case TokKind::kCaret: return 4;
    case TokKind::kPipe: return 3;
    case TokKind::kAmpAmp: return 2;
    case TokKind::kPipePipe: return 1;
    default: return 0;
  }
}

BinaryOp binary_op_for(TokKind k) {
  switch (k) {
    case TokKind::kStar: return BinaryOp::kMul;
    case TokKind::kSlash: return BinaryOp::kDiv;
    case TokKind::kPercent: return BinaryOp::kRem;
    case TokKind::kPlus: return BinaryOp::kAdd;
    case TokKind::kMinus: return BinaryOp::kSub;
    case TokKind::kShl: return BinaryOp::kShl;
    case TokKind::kShr: return BinaryOp::kShr;
    case TokKind::kLess: return BinaryOp::kLt;
    case TokKind::kLessEq: return BinaryOp::kLe;
    case TokKind::kGreater: return BinaryOp::kGt;
    case TokKind::kGreaterEq: return BinaryOp::kGe;
    case TokKind::kEqEq: return BinaryOp::kEq;
    case TokKind::kBangEq: return BinaryOp::kNe;
    case TokKind::kAmp: return BinaryOp::kAnd;
    case TokKind::kCaret: return BinaryOp::kXor;
    case TokKind::kPipe: return BinaryOp::kOr;
    case TokKind::kAmpAmp: return BinaryOp::kLogicalAnd;
    case TokKind::kPipePipe: return BinaryOp::kLogicalOr;
    default: HLSAV_UNREACHABLE("not a binary operator token");
  }
}
}  // namespace

ExprPtr Parser::parse_expr() { return parse_ternary(); }

ExprPtr Parser::parse_ternary() {
  ExprPtr cond = parse_binary(1);
  if (!at(TokKind::kQuestion)) return cond;
  // Lower `c ? a : b` to ((c && a-part) | ...)? No: represent as a select
  // via two binaries is lossy. HLS-C keeps ?: out of the language; error.
  fail(cur(), "the ?: operator is not supported in HLS-C; use if/else");
}

ExprPtr Parser::parse_binary(int min_prec) {
  ExprPtr lhs = parse_unary();
  while (true) {
    int prec = binary_prec(cur().kind);
    if (prec == 0 || prec < min_prec) return lhs;
    TokKind op_tok = cur().kind;
    SourceLoc loc = consume().loc;
    ExprPtr rhs = parse_binary(prec + 1);
    lhs = make_binary(loc, binary_op_for(op_tok), std::move(lhs), std::move(rhs));
  }
}

ExprPtr Parser::parse_unary() {
  SourceLoc loc = cur().loc;
  if (accept(TokKind::kMinus)) return make_unary(loc, UnaryOp::kNeg, parse_unary());
  if (accept(TokKind::kTilde)) return make_unary(loc, UnaryOp::kNot, parse_unary());
  if (accept(TokKind::kBang)) return make_unary(loc, UnaryOp::kLogicalNot, parse_unary());
  if (accept(TokKind::kPlus)) return parse_unary();
  return parse_primary();
}

ExprPtr Parser::parse_primary() {
  const Token& t = cur();
  switch (t.kind) {
    case TokKind::kIntLiteral: {
      consume();
      // Literals carry a natural width of 32 unless the value needs more.
      unsigned width = 32;
      if (t.value > 0xffffffffull) width = 64;
      return make_int_lit(t.loc, BitVector::from_u64(width, t.value), t.value_signed);
    }
    case TokKind::kLParen: {
      consume();
      ExprPtr e = parse_expr();
      expect(TokKind::kRParen, "to close parenthesized expression");
      return e;
    }
    case TokKind::kIdentifier: {
      consume();
      if (t.text == "stream_read") {
        expect(TokKind::kLParen, "after stream_read");
        std::string stream = expect(TokKind::kIdentifier, "stream name").text;
        expect(TokKind::kRParen, "after stream name");
        return make_stream_read(t.loc, std::move(stream));
      }
      if (at(TokKind::kLParen)) {
        consume();
        std::vector<ExprPtr> args;
        if (!at(TokKind::kRParen)) {
          do {
            args.push_back(parse_expr());
          } while (accept(TokKind::kComma));
        }
        expect(TokKind::kRParen, "after call arguments");
        return make_call(t.loc, t.text, std::move(args));
      }
      if (at(TokKind::kLBracket)) {
        consume();
        ExprPtr index = parse_expr();
        expect(TokKind::kRBracket, "after array index");
        return make_array_index(t.loc, t.text, std::move(index));
      }
      return make_var_ref(t.loc, t.text);
    }
    default:
      fail(t, "expected expression, found " + std::string(tok_kind_name(t.kind)));
  }
}

std::unique_ptr<Program> parse_source(SourceManager& sm, DiagnosticEngine& diags,
                                      std::string name, std::string text) {
  FileId file = sm.add_buffer(std::move(name), std::move(text));
  Parser parser(sm, file, diags);
  return parser.parse_program();
}

}  // namespace hlsav::lang
