// Recursive-descent parser for HLS-C.
//
// Entry point: parse_program(). Compound assignments and ++/-- are
// desugared here; `#pragma HLS pipeline` / `#pragma HLS replicate`
// directives are attached to the following statement; the raw source
// text of every assert condition is captured for the ANSI-C failure
// message.
#pragma once

#include <memory>
#include <vector>

#include "lang/ast.h"
#include "lang/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace hlsav::lang {

class Parser {
 public:
  Parser(const SourceManager& sm, FileId file, DiagnosticEngine& diags);

  /// Parses the whole buffer. Returns a Program even on error; check
  /// diags.has_errors() before using it.
  [[nodiscard]] std::unique_ptr<Program> parse_program();

 private:
  struct ParseError {};  // thrown for panic-mode recovery (statement or top level)

  const SourceManager& sm_;
  FileId file_;
  DiagnosticEngine& diags_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;

  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] const Token& peek(std::size_t ahead = 1) const;
  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }
  const Token& consume();
  const Token& expect(TokKind k, const char* what);
  bool accept(TokKind k);
  [[noreturn]] void fail(const Token& tok, std::string message);
  void sync_to_toplevel();
  void sync_to_stmt();

  // Grammar productions.
  std::unique_ptr<Function> parse_function(bool is_extern);
  Param parse_param();
  Type parse_int_type();
  std::vector<StmtPtr> parse_block();
  StmtPtr parse_stmt();
  StmtPtr parse_stmt_no_pragma();
  StmtPtr parse_decl();
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_do_while();
  StmtPtr parse_for();
  StmtPtr parse_assert();
  StmtPtr parse_simple_stmt();  // assignment / ++ / -- / stream_write
  Pragmas parse_pragmas();

  ExprPtr parse_expr();
  ExprPtr parse_ternary();
  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_primary();

  /// Raw source text between two token offsets (for assert messages).
  [[nodiscard]] std::string source_between(std::size_t begin_tok, std::size_t end_tok) const;
};

/// Convenience: lex + parse a named buffer.
[[nodiscard]] std::unique_ptr<Program> parse_source(SourceManager& sm, DiagnosticEngine& diags,
                                                    std::string name, std::string text);

}  // namespace hlsav::lang
