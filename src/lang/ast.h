// Abstract syntax tree for HLS-C.
//
// Nodes are owned via unique_ptr down the tree. After semantic analysis
// every expression carries its computed Type, every assert statement its
// assertion-id-relevant metadata (the original condition text, needed for
// the ANSI-C failure message "Assertion 'expr' failed"), and every loop
// its pipeline directive if one was given via `#pragma HLS pipeline`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lang/type.h"
#include "support/bitvector.h"
#include "support/source_manager.h"

namespace hlsav::lang {

// ---------------------------------------------------------------- Expr --

enum class ExprKind : std::uint8_t {
  kIntLit,
  kVarRef,
  kArrayIndex,
  kUnary,
  kBinary,
  kCall,        // extern-HDL-function call
  kStreamRead,  // stream_read(s)
};

enum class UnaryOp : std::uint8_t { kNeg, kNot, kLogicalNot };

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogicalAnd, kLogicalOr,
};

[[nodiscard]] const char* binary_op_spelling(BinaryOp op);
[[nodiscard]] const char* unary_op_spelling(UnaryOp op);
[[nodiscard]] bool is_comparison(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  Type type;  // filled by sema

  // kIntLit
  BitVector literal{32};
  bool literal_signed = true;

  // kVarRef / kCall / kStreamRead: name of variable / function / stream.
  std::string name;

  // kArrayIndex: name = array, operands[0] = index.
  // kUnary: operands[0]; kBinary: operands[0], operands[1].
  // kCall: operands = arguments.
  std::vector<ExprPtr> operands;

  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  [[nodiscard]] ExprPtr clone() const;
  /// Renders the expression back to C-like text (used for assertion
  /// failure messages and IR naming).
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] ExprPtr make_int_lit(SourceLoc loc, BitVector value, bool is_signed = true);
[[nodiscard]] ExprPtr make_var_ref(SourceLoc loc, std::string name);
[[nodiscard]] ExprPtr make_array_index(SourceLoc loc, std::string array, ExprPtr index);
[[nodiscard]] ExprPtr make_unary(SourceLoc loc, UnaryOp op, ExprPtr operand);
[[nodiscard]] ExprPtr make_binary(SourceLoc loc, BinaryOp op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr make_call(SourceLoc loc, std::string callee, std::vector<ExprPtr> args);
[[nodiscard]] ExprPtr make_stream_read(SourceLoc loc, std::string stream);

// ---------------------------------------------------------------- Stmt --

enum class StmtKind : std::uint8_t {
  kBlock,
  kDecl,          // local variable or array declaration
  kAssign,        // lvalue = expr  (incl. compound ops, lowered to plain)
  kIf,
  kWhile,
  kFor,
  kAssert,
  kAssertCycles,  // assert_cycles(N): timing assertion (paper §6 ext.)
  kStreamWrite,   // stream_write(s, expr)
  kReturn,
  kBreak,
  kContinue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Lvalue: a scalar variable or one array element.
struct LValue {
  SourceLoc loc;
  std::string name;
  ExprPtr index;  // null for scalars

  [[nodiscard]] bool is_array_elem() const { return index != nullptr; }
  [[nodiscard]] LValue clone() const;
  [[nodiscard]] std::string to_string() const;
};

/// Synthesis directives attached to the following statement.
struct Pragmas {
  bool pipeline = false;
  /// `#pragma HLS replicate` on an array decl: duplicate the RAM for
  /// assertion reads (resource replication, paper §3.2).
  bool replicate = false;
  [[nodiscard]] bool empty() const { return !pipeline && !replicate; }
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;
  Pragmas pragmas;

  // kBlock
  std::vector<StmtPtr> body;

  // kDecl
  std::string decl_name;
  Type decl_type;
  bool decl_is_const = false;
  std::vector<ExprPtr> decl_init;  // scalar: 0/1 exprs; array: element list

  // kAssign
  LValue lhs;
  ExprPtr rhs;

  // kIf: cond, body = then, else_body = else.
  // kWhile: cond, body. kAssert: cond.
  ExprPtr cond;
  std::vector<StmtPtr> else_body;

  // kFor: init/step are single statements (assign or decl).
  StmtPtr for_init;
  StmtPtr for_step;

  // kAssert: original text of the condition (for failure messages),
  // enclosing function name, and a stable id assigned by sema.
  // kAssertCycles reuses these plus the evaluated bound.
  std::string assert_text;
  std::string assert_function;
  std::uint32_t assert_id = 0;
  std::uint64_t cycle_bound = 0;

  // kStreamWrite: stream name + value expr (in rhs).
  std::string stream_name;

  [[nodiscard]] StmtPtr clone() const;
};

[[nodiscard]] StmtPtr make_block(SourceLoc loc, std::vector<StmtPtr> body);
[[nodiscard]] StmtPtr make_assign(SourceLoc loc, LValue lhs, ExprPtr rhs);
[[nodiscard]] StmtPtr make_assert(SourceLoc loc, ExprPtr cond, std::string text);
[[nodiscard]] StmtPtr make_stream_write(SourceLoc loc, std::string stream, ExprPtr value);

// ------------------------------------------------------------ Function --

struct Param {
  SourceLoc loc;
  std::string name;
  Type type;
};

/// A top-level HLS-C function. Void functions whose parameters are all
/// streams are *processes* (Impulse-C co_process equivalents) and can be
/// instantiated in a Design; other functions are inlined computations.
struct Function {
  SourceLoc loc;
  std::string name;
  Type return_type;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  bool is_extern_hdl = false;  // `extern` declaration: external HDL function

  [[nodiscard]] bool is_process() const;
};

/// A parsed translation unit.
struct Program {
  FileId file = 0;
  std::vector<std::unique_ptr<Function>> functions;

  [[nodiscard]] const Function* find_function(std::string_view name) const;
};

// --------------------------------------------------------- AST walking --

/// Calls fn on every statement in the subtree (pre-order).
void walk_stmts(std::vector<StmtPtr>& body, const std::function<void(Stmt&)>& fn);
void walk_stmts(const std::vector<StmtPtr>& body, const std::function<void(const Stmt&)>& fn);
/// Calls fn on every expression in the statement subtree (pre-order).
void walk_exprs(const Stmt& stmt, const std::function<void(const Expr&)>& fn);
void walk_exprs(const Expr& expr, const std::function<void(const Expr&)>& fn);

}  // namespace hlsav::lang
