// Token definitions for the HLS-C lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_manager.h"

namespace hlsav::lang {

enum class TokKind : std::uint8_t {
  kEof,
  kIdentifier,
  kIntLiteral,   // decimal, hex (0x...) or character ('a')
  kPragma,       // a full "#pragma ..." line (text in Token::text)

  // Keywords.
  kKwVoid, kKwIf, kKwElse, kKwFor, kKwWhile, kKwDo, kKwReturn, kKwConst,
  kKwAssert, kKwExtern, kKwBreak, kKwContinue, kKwStreamIn, kKwStreamOut,
  kKwIntType,    // int8..int64 / intN / char / int  (width in Token::value)
  kKwUintType,   // uint8..uint64 / uintN / bool     (width in Token::value)

  // Punctuation & operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kLess, kGreater,          // < > double as template-ish delims
  kAssign, kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr, kLessEq, kGreaterEq, kEqEq, kBangEq,
  kAmpAmp, kPipePipe,
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
  kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign, kShrAssign,
  kPlusPlus, kMinusMinus,
  kQuestion, kColon, kDot,
};

struct Token {
  TokKind kind = TokKind::kEof;
  SourceLoc loc;
  std::size_t offset = 0;    // byte offset of the token start in the buffer
  std::string text;          // identifier spelling / pragma body
  std::uint64_t value = 0;   // literal value or int-type width
  bool value_signed = true;  // for literals: spelled without 'u' suffix

  [[nodiscard]] bool is(TokKind k) const { return kind == k; }
};

/// Human-readable token kind name for diagnostics.
[[nodiscard]] std::string_view tok_kind_name(TokKind k);

}  // namespace hlsav::lang
