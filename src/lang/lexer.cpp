#include "lang/lexer.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace hlsav::lang {

namespace {

struct Keyword {
  TokKind kind;
  std::uint64_t width;  // only for int/uint types
};

const std::unordered_map<std::string_view, Keyword>& keyword_map() {
  static const std::unordered_map<std::string_view, Keyword> kMap = {
      {"void", {TokKind::kKwVoid, 0}},
      {"if", {TokKind::kKwIf, 0}},
      {"else", {TokKind::kKwElse, 0}},
      {"for", {TokKind::kKwFor, 0}},
      {"while", {TokKind::kKwWhile, 0}},
      {"do", {TokKind::kKwDo, 0}},
      {"return", {TokKind::kKwReturn, 0}},
      {"const", {TokKind::kKwConst, 0}},
      {"assert", {TokKind::kKwAssert, 0}},
      {"extern", {TokKind::kKwExtern, 0}},
      {"break", {TokKind::kKwBreak, 0}},
      {"continue", {TokKind::kKwContinue, 0}},
      {"stream_in", {TokKind::kKwStreamIn, 0}},
      {"stream_out", {TokKind::kKwStreamOut, 0}},
      {"char", {TokKind::kKwIntType, 8}},
      {"int", {TokKind::kKwIntType, 32}},
      {"long", {TokKind::kKwIntType, 64}},
      {"bool", {TokKind::kKwUintType, 1}},
  };
  return kMap;
}

// Parses "int17" / "uint5" style spellings; returns width or 0.
std::uint64_t sized_int_width(std::string_view name, bool& is_signed) {
  std::string_view digits;
  if (name.size() > 3 && name.substr(0, 3) == "int") {
    is_signed = true;
    digits = name.substr(3);
  } else if (name.size() > 4 && name.substr(0, 4) == "uint") {
    is_signed = false;
    digits = name.substr(4);
  } else {
    return 0;
  }
  std::uint64_t w = 0;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return 0;
    w = w * 10 + static_cast<std::uint64_t>(c - '0');
    if (w > 64) return 0;
  }
  return (w >= 1 && w <= 64) ? w : 0;
}

}  // namespace

std::string_view tok_kind_name(TokKind k) {
  switch (k) {
    case TokKind::kEof: return "end of file";
    case TokKind::kIdentifier: return "identifier";
    case TokKind::kIntLiteral: return "integer literal";
    case TokKind::kPragma: return "#pragma";
    case TokKind::kKwVoid: return "'void'";
    case TokKind::kKwIf: return "'if'";
    case TokKind::kKwElse: return "'else'";
    case TokKind::kKwFor: return "'for'";
    case TokKind::kKwWhile: return "'while'";
    case TokKind::kKwDo: return "'do'";
    case TokKind::kKwReturn: return "'return'";
    case TokKind::kKwConst: return "'const'";
    case TokKind::kKwAssert: return "'assert'";
    case TokKind::kKwExtern: return "'extern'";
    case TokKind::kKwBreak: return "'break'";
    case TokKind::kKwContinue: return "'continue'";
    case TokKind::kKwStreamIn: return "'stream_in'";
    case TokKind::kKwStreamOut: return "'stream_out'";
    case TokKind::kKwIntType: return "signed integer type";
    case TokKind::kKwUintType: return "unsigned integer type";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kComma: return "','";
    case TokKind::kSemicolon: return "';'";
    case TokKind::kLess: return "'<'";
    case TokKind::kGreater: return "'>'";
    case TokKind::kAssign: return "'='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kAmp: return "'&'";
    case TokKind::kPipe: return "'|'";
    case TokKind::kCaret: return "'^'";
    case TokKind::kTilde: return "'~'";
    case TokKind::kBang: return "'!'";
    case TokKind::kShl: return "'<<'";
    case TokKind::kShr: return "'>>'";
    case TokKind::kLessEq: return "'<='";
    case TokKind::kGreaterEq: return "'>='";
    case TokKind::kEqEq: return "'=='";
    case TokKind::kBangEq: return "'!='";
    case TokKind::kAmpAmp: return "'&&'";
    case TokKind::kPipePipe: return "'||'";
    case TokKind::kPlusAssign: return "'+='";
    case TokKind::kMinusAssign: return "'-='";
    case TokKind::kStarAssign: return "'*='";
    case TokKind::kSlashAssign: return "'/='";
    case TokKind::kPercentAssign: return "'%='";
    case TokKind::kAmpAssign: return "'&='";
    case TokKind::kPipeAssign: return "'|='";
    case TokKind::kCaretAssign: return "'^='";
    case TokKind::kShlAssign: return "'<<='";
    case TokKind::kShrAssign: return "'>>='";
    case TokKind::kPlusPlus: return "'++'";
    case TokKind::kMinusMinus: return "'--'";
    case TokKind::kQuestion: return "'?'";
    case TokKind::kColon: return "':'";
    case TokKind::kDot: return "'.'";
  }
  return "?";
}

Lexer::Lexer(const SourceManager& sm, FileId file, DiagnosticEngine& diags)
    : sm_(sm), file_(file), diags_(diags), text_(sm.text(file)) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = peek();
  if (c == '\0') return c;
  ++pos_;
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char c) {
  if (peek() != c) return false;
  advance();
  return true;
}

void Lexer::skip_whitespace_and_comments() {
  while (true) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error(loc(), "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(TokKind k, SourceLoc l) const {
  Token t;
  t.kind = k;
  t.loc = l;
  return t;
}

Token Lexer::lex_identifier_or_keyword(SourceLoc start) {
  std::size_t begin = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') advance();
  std::string_view name = text_.substr(begin, pos_ - begin);

  if (auto it = keyword_map().find(name); it != keyword_map().end()) {
    Token t = make(it->second.kind, start);
    t.value = it->second.width;
    t.text = std::string(name);
    return t;
  }
  bool is_signed = true;
  if (std::uint64_t w = sized_int_width(name, is_signed); w != 0) {
    Token t = make(is_signed ? TokKind::kKwIntType : TokKind::kKwUintType, start);
    t.value = w;
    t.text = std::string(name);
    return t;
  }
  Token t = make(TokKind::kIdentifier, start);
  t.text = std::string(name);
  return t;
}

Token Lexer::lex_number(SourceLoc start) {
  std::size_t begin = pos_;
  std::uint64_t value = 0;
  bool overflow = false;
  // Accumulate with explicit overflow detection: an over-wide literal
  // must surface as a diagnostic, never wrap silently into a different
  // (valid-looking) constant.
  auto accumulate = [&](std::uint64_t base, std::uint64_t digit) {
    if (value > (UINT64_MAX - digit) / base) {
      overflow = true;
      return;
    }
    value = value * base + digit;
  };
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char c = advance();
      std::uint64_t digit = std::isdigit(static_cast<unsigned char>(c))
                                ? static_cast<std::uint64_t>(c - '0')
                                : static_cast<std::uint64_t>(std::tolower(c) - 'a' + 10);
      accumulate(16, digit);
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      accumulate(10, static_cast<std::uint64_t>(advance() - '0'));
    }
  }
  Token t = make(TokKind::kIntLiteral, start);
  t.value = value;
  t.value_signed = true;
  // Suffixes: u/U marks unsigned; l/L accepted and ignored.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
    char c = advance();
    if (c == 'u' || c == 'U') t.value_signed = false;
  }
  t.text = std::string(text_.substr(begin, pos_ - begin));
  if (overflow) {
    diags_.error_range(start, static_cast<std::uint32_t>(t.text.size()),
                       "integer literal '" + t.text + "' does not fit in 64 bits");
    t.value = 0;
  }
  return t;
}

Token Lexer::lex_char_literal(SourceLoc start) {
  advance();  // opening quote
  char c = advance();
  if (c == '\\') {
    char esc = advance();
    switch (esc) {
      case 'n': c = '\n'; break;
      case 't': c = '\t'; break;
      case 'r': c = '\r'; break;
      case '0': c = '\0'; break;
      case '\\': c = '\\'; break;
      case '\'': c = '\''; break;
      default:
        diags_.error(start, "unknown escape sequence in character literal");
        c = esc;
    }
  }
  if (!match('\'')) diags_.error(loc(), "expected closing ' in character literal");
  Token t = make(TokKind::kIntLiteral, start);
  t.value = static_cast<unsigned char>(c);
  return t;
}

Token Lexer::lex_pragma(SourceLoc start) {
  std::size_t begin = pos_;
  while (peek() != '\n' && peek() != '\0') advance();
  Token t = make(TokKind::kPragma, start);
  t.text = std::string(text_.substr(begin, pos_ - begin));
  return t;
}

Token Lexer::next() {
  while (true) {
    skip_whitespace_and_comments();
    std::size_t start_offset = pos_;
    std::optional<Token> t = next_impl();
    if (!t.has_value()) continue;  // bad character: reported, skipped
    t->offset = start_offset;
    return *t;
  }
}

std::optional<Token> Lexer::next_impl() {
  SourceLoc start = loc();
  char c = peek();
  if (c == '\0') return make(TokKind::kEof, start);
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return lex_identifier_or_keyword(start);
  }
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(start);
  if (c == '\'') return lex_char_literal(start);
  if (c == '#') {
    advance();
    return lex_pragma(start);
  }

  advance();
  switch (c) {
    case '(': return make(TokKind::kLParen, start);
    case ')': return make(TokKind::kRParen, start);
    case '{': return make(TokKind::kLBrace, start);
    case '}': return make(TokKind::kRBrace, start);
    case '[': return make(TokKind::kLBracket, start);
    case ']': return make(TokKind::kRBracket, start);
    case ',': return make(TokKind::kComma, start);
    case ';': return make(TokKind::kSemicolon, start);
    case '?': return make(TokKind::kQuestion, start);
    case ':': return make(TokKind::kColon, start);
    case '.': return make(TokKind::kDot, start);
    case '~': return make(TokKind::kTilde, start);
    case '+':
      if (match('+')) return make(TokKind::kPlusPlus, start);
      if (match('=')) return make(TokKind::kPlusAssign, start);
      return make(TokKind::kPlus, start);
    case '-':
      if (match('-')) return make(TokKind::kMinusMinus, start);
      if (match('=')) return make(TokKind::kMinusAssign, start);
      return make(TokKind::kMinus, start);
    case '*':
      if (match('=')) return make(TokKind::kStarAssign, start);
      return make(TokKind::kStar, start);
    case '/':
      if (match('=')) return make(TokKind::kSlashAssign, start);
      return make(TokKind::kSlash, start);
    case '%':
      if (match('=')) return make(TokKind::kPercentAssign, start);
      return make(TokKind::kPercent, start);
    case '&':
      if (match('&')) return make(TokKind::kAmpAmp, start);
      if (match('=')) return make(TokKind::kAmpAssign, start);
      return make(TokKind::kAmp, start);
    case '|':
      if (match('|')) return make(TokKind::kPipePipe, start);
      if (match('=')) return make(TokKind::kPipeAssign, start);
      return make(TokKind::kPipe, start);
    case '^':
      if (match('=')) return make(TokKind::kCaretAssign, start);
      return make(TokKind::kCaret, start);
    case '!':
      if (match('=')) return make(TokKind::kBangEq, start);
      return make(TokKind::kBang, start);
    case '=':
      if (match('=')) return make(TokKind::kEqEq, start);
      return make(TokKind::kAssign, start);
    case '<':
      if (match('<')) {
        if (match('=')) return make(TokKind::kShlAssign, start);
        return make(TokKind::kShl, start);
      }
      if (match('=')) return make(TokKind::kLessEq, start);
      return make(TokKind::kLess, start);
    case '>':
      if (match('>')) {
        if (match('=')) return make(TokKind::kShrAssign, start);
        return make(TokKind::kShr, start);
      }
      if (match('=')) return make(TokKind::kGreaterEq, start);
      return make(TokKind::kGreater, start);
    default:
      // Unprintable bytes (fuzzed / binary input) render as hex.
      if (std::isprint(static_cast<unsigned char>(c)) != 0) {
        diags_.error(start, std::string("unexpected character '") + c + "'");
      } else {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\x%02x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        diags_.error(start, std::string("unexpected character '") + buf + "'");
      }
      return std::nullopt;
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  while (true) {
    Token t = next();
    bool done = t.is(TokKind::kEof);
    out.push_back(std::move(t));
    if (done) return out;
  }
}

}  // namespace hlsav::lang
