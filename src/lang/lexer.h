// Hand-written lexer for HLS-C.
//
// Produces the token stream consumed by the recursive-descent parser.
// `#pragma` lines are tokenized whole (TokKind::kPragma) so the parser
// can attach synthesis directives (e.g. `#pragma HLS pipeline`) to the
// following statement, the way HLS tools do.
#pragma once

#include <optional>
#include <vector>

#include "lang/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace hlsav::lang {

class Lexer {
 public:
  Lexer(const SourceManager& sm, FileId file, DiagnosticEngine& diags);

  /// Lexes the whole buffer; always ends with an EOF token.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  const SourceManager& sm_;
  FileId file_;
  DiagnosticEngine& diags_;
  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;

  [[nodiscard]] SourceLoc loc() const { return SourceLoc{file_, line_, col_}; }
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool match(char c);
  void skip_whitespace_and_comments();

  Token next();
  /// One token, or nullopt for an unexpected character (reported and
  /// skipped -- lexing continues, so one stray byte cannot truncate the
  /// rest of the file into silence).
  std::optional<Token> next_impl();
  Token lex_identifier_or_keyword(SourceLoc start);
  Token lex_number(SourceLoc start);
  Token lex_char_literal(SourceLoc start);
  Token lex_pragma(SourceLoc start);
  Token make(TokKind k, SourceLoc l) const;
};

}  // namespace hlsav::lang
