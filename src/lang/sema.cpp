#include "lang/sema.h"

#include <unordered_map>

#include "support/str.h"

namespace hlsav::lang {

std::string AssertionInfo::failure_message() const {
  // Mirrors glibc: "file:line: function: Assertion `expr' failed."
  return file_name + ":" + std::to_string(loc.line) + ": " + function + ": Assertion `" +
         condition_text + "' failed.";
}

namespace {

class Analyzer {
 public:
  Analyzer(Program& program, const SourceManager& sm, DiagnosticEngine& diags)
      : program_(program), sm_(sm), diags_(diags) {}

  SemaResult run() {
    SemaResult result;
    for (auto& fn : program_.functions) {
      if (program_.find_function(fn->name) != fn.get()) {
        diags_.error(fn->loc, "redefinition of function '" + fn->name + "'");
        continue;
      }
      analyze_function(*fn);
    }
    result.ok = !diags_.has_errors();
    result.assertions = std::move(assertions_);
    return result;
  }

 private:
  Program& program_;
  const SourceManager& sm_;
  DiagnosticEngine& diags_;
  std::vector<AssertionInfo> assertions_;
  std::uint32_t next_assert_id_ = 0;

  // Per-function state. Declarations are function-scoped (no shadowing),
  // which keeps the name-keyed lowering maps unambiguous.
  struct Symbol {
    Type type;
    bool is_const = false;
    bool is_param = false;
  };
  std::unordered_map<std::string, Symbol> symbols_;
  Function* current_fn_ = nullptr;
  int loop_depth_ = 0;

  void analyze_function(Function& fn) {
    symbols_.clear();
    current_fn_ = &fn;
    loop_depth_ = 0;

    if (fn.is_extern_hdl) {
      if (!fn.return_type.is_int()) {
        diags_.error(fn.loc, "extern HDL function '" + fn.name + "' must return an integer");
      }
      for (const Param& p : fn.params) {
        if (!p.type.is_int()) {
          diags_.error(p.loc, "extern HDL function parameters must be integers");
        }
      }
      return;
    }

    for (const Param& p : fn.params) {
      if (!declare(p.name, Symbol{p.type, false, true})) {
        diags_.error(p.loc, "duplicate parameter name '" + p.name + "'");
      }
    }
    for (StmtPtr& s : fn.body) analyze_stmt(*s);
  }

  bool declare(const std::string& name, Symbol sym) {
    return symbols_.emplace(name, std::move(sym)).second;
  }

  const Symbol* lookup(const std::string& name) const {
    auto it = symbols_.find(name);
    return it == symbols_.end() ? nullptr : &it->second;
  }

  // ------------------------------------------------------- statements --

  void analyze_stmt(Stmt& s) {
    if (s.pragmas.pipeline && s.kind != StmtKind::kFor && s.kind != StmtKind::kWhile) {
      diags_.warning(s.loc, "#pragma HLS pipeline applies only to loops; ignored");
      s.pragmas.pipeline = false;
    }
    if (s.pragmas.replicate && s.kind != StmtKind::kDecl) {
      diags_.warning(s.loc, "#pragma HLS replicate applies only to array declarations; ignored");
      s.pragmas.replicate = false;
    }

    switch (s.kind) {
      case StmtKind::kBlock:
        for (StmtPtr& b : s.body) analyze_stmt(*b);
        break;
      case StmtKind::kDecl:
        analyze_decl(s);
        break;
      case StmtKind::kAssign:
        analyze_assign(s);
        break;
      case StmtKind::kIf:
        analyze_cond(s);
        for (StmtPtr& b : s.body) analyze_stmt(*b);
        for (StmtPtr& b : s.else_body) analyze_stmt(*b);
        break;
      case StmtKind::kWhile:
        analyze_cond(s);
        ++loop_depth_;
        for (StmtPtr& b : s.body) analyze_stmt(*b);
        --loop_depth_;
        break;
      case StmtKind::kFor:
        if (s.for_init) analyze_stmt(*s.for_init);
        if (s.cond) analyze_cond(s);
        if (s.for_step) analyze_stmt(*s.for_step);
        ++loop_depth_;
        for (StmtPtr& b : s.body) analyze_stmt(*b);
        --loop_depth_;
        break;
      case StmtKind::kAssert:
        analyze_assert(s);
        break;
      case StmtKind::kAssertCycles: {
        analyze_expr(*s.cond);
        require_int(*s.cond);
        s.assert_id = next_assert_id_++;
        s.assert_function = current_fn_->name;
        AssertionInfo info;
        info.id = s.assert_id;
        info.loc = s.loc;
        info.function = current_fn_->name;
        info.condition_text = "elapsed cycles <= " + s.assert_text;
        info.file_name = std::string(sm_.name(s.loc.file));
        assertions_.push_back(std::move(info));
        break;
      }
      case StmtKind::kStreamWrite:
        analyze_stream_write(s);
        break;
      case StmtKind::kReturn:
        analyze_return(s);
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          diags_.error(s.loc, "break/continue outside of a loop");
        }
        break;
    }
  }

  void analyze_decl(Stmt& s) {
    if (s.pragmas.replicate && !s.decl_type.is_array()) {
      diags_.warning(s.loc, "#pragma HLS replicate on a scalar has no effect");
      s.pragmas.replicate = false;
    }
    if (s.decl_type.is_array() &&
        s.decl_type.array_size() > (std::uint64_t{1} << 20)) {
      diags_.error(s.loc, "array '" + s.decl_name + "' exceeds the 1Mi-element block-RAM budget");
    }
    for (ExprPtr& e : s.decl_init) {
      analyze_expr(*e);
      require_int(*e);
    }
    if (s.decl_type.is_array() && !s.decl_init.empty() &&
        s.decl_init.size() != s.decl_type.array_size()) {
      diags_.error(s.loc, "array initializer has " + std::to_string(s.decl_init.size()) +
                              " elements but '" + s.decl_name + "' has " +
                              std::to_string(s.decl_type.array_size()));
    }
    if (s.decl_is_const && s.decl_init.empty()) {
      diags_.error(s.loc, "const declaration '" + s.decl_name + "' requires an initializer");
    }
    if (!declare(s.decl_name, Symbol{s.decl_type, s.decl_is_const, false})) {
      diags_.error(s.loc, "redeclaration of '" + s.decl_name +
                              "' (HLS-C declarations are function-scoped)");
    }
  }

  void analyze_assign(Stmt& s) {
    analyze_expr(*s.rhs);
    require_int(*s.rhs);
    const Symbol* sym = lookup(s.lhs.name);
    if (sym == nullptr) {
      diags_.error(s.lhs.loc, "use of undeclared identifier '" + s.lhs.name + "'");
      return;
    }
    if (sym->is_const) {
      diags_.error(s.lhs.loc, "cannot assign to const '" + s.lhs.name + "'");
    }
    if (s.lhs.is_array_elem()) {
      if (!sym->type.is_array()) {
        diags_.error(s.lhs.loc, "'" + s.lhs.name + "' is not an array");
        return;
      }
      analyze_expr(*s.lhs.index);
      require_int(*s.lhs.index);
    } else if (sym->type.is_array()) {
      diags_.error(s.lhs.loc, "cannot assign to whole array '" + s.lhs.name + "'");
    } else if (sym->type.is_stream()) {
      diags_.error(s.lhs.loc, "cannot assign to stream '" + s.lhs.name +
                                  "'; use stream_write(" + s.lhs.name + ", value)");
    }
  }

  void analyze_cond(Stmt& s) {
    analyze_expr(*s.cond);
    require_int(*s.cond);
  }

  void analyze_assert(Stmt& s) {
    analyze_expr(*s.cond);
    require_int(*s.cond);
    s.assert_id = next_assert_id_++;
    s.assert_function = current_fn_->name;
    AssertionInfo info;
    info.id = s.assert_id;
    info.loc = s.loc;
    info.function = current_fn_->name;
    info.condition_text = s.assert_text;
    info.file_name = std::string(sm_.name(s.loc.file));
    assertions_.push_back(std::move(info));
  }

  void analyze_stream_write(Stmt& s) {
    analyze_expr(*s.rhs);
    require_int(*s.rhs);
    const Symbol* sym = lookup(s.stream_name);
    if (sym == nullptr || !sym->type.is_stream()) {
      diags_.error(s.loc, "'" + s.stream_name + "' is not a stream");
      return;
    }
    if (sym->type.stream_dir() != StreamDir::kOut) {
      diags_.error(s.loc, "cannot write to input stream '" + s.stream_name + "'");
    }
  }

  void analyze_return(Stmt& s) {
    if (current_fn_->return_type.is_void()) {
      if (s.rhs) diags_.error(s.loc, "void function cannot return a value");
      return;
    }
    if (!s.rhs) {
      diags_.error(s.loc, "non-void function must return a value");
      return;
    }
    analyze_expr(*s.rhs);
    require_int(*s.rhs);
  }

  // ------------------------------------------------------ expressions --

  void require_int(const Expr& e) {
    if (!e.type.is_int() && !e.type.is_void()) {
      diags_.error(e.loc, "expected an integer expression");
    }
  }

  void analyze_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        e.type = Type::int_type(e.literal.width(), e.literal_signed);
        break;
      case ExprKind::kVarRef: {
        const Symbol* sym = lookup(e.name);
        if (sym == nullptr) {
          diags_.error(e.loc, "use of undeclared identifier '" + e.name + "'");
          e.type = Type::int_type(32, true);
          break;
        }
        if (sym->type.is_array()) {
          diags_.error(e.loc, "array '" + e.name + "' must be indexed");
          e.type = sym->type.element_type();
        } else if (sym->type.is_stream()) {
          diags_.error(e.loc, "stream '" + e.name + "' cannot be used as a value; " +
                                  "use stream_read(" + e.name + ")");
          e.type = sym->type.element_type();
        } else {
          e.type = sym->type;
        }
        break;
      }
      case ExprKind::kArrayIndex: {
        const Symbol* sym = lookup(e.name);
        analyze_expr(*e.operands[0]);
        require_int(*e.operands[0]);
        if (sym == nullptr || !sym->type.is_array()) {
          diags_.error(e.loc, "'" + e.name + "' is not an array");
          e.type = Type::int_type(32, true);
        } else {
          e.type = sym->type.element_type();
        }
        break;
      }
      case ExprKind::kUnary:
        analyze_expr(*e.operands[0]);
        require_int(*e.operands[0]);
        e.type = (e.unary_op == UnaryOp::kLogicalNot) ? Type::bool_type()
                                                      : e.operands[0]->type;
        break;
      case ExprKind::kBinary: {
        analyze_expr(*e.operands[0]);
        analyze_expr(*e.operands[1]);
        require_int(*e.operands[0]);
        require_int(*e.operands[1]);
        const Type& lt = e.operands[0]->type;
        const Type& rt = e.operands[1]->type;
        if (!lt.is_int() || !rt.is_int()) {
          e.type = Type::int_type(32, true);
          break;
        }
        switch (e.binary_op) {
          case BinaryOp::kShl:
          case BinaryOp::kShr:
            e.type = lt;
            break;
          case BinaryOp::kLt:
          case BinaryOp::kLe:
          case BinaryOp::kGt:
          case BinaryOp::kGe:
          case BinaryOp::kEq:
          case BinaryOp::kNe:
          case BinaryOp::kLogicalAnd:
          case BinaryOp::kLogicalOr:
            e.type = Type::bool_type();
            break;
          default:
            e.type = common_type(lt, rt);
        }
        break;
      }
      case ExprKind::kCall: {
        const Function* callee = program_.find_function(e.name);
        if (callee == nullptr) {
          diags_.error(e.loc, "call to unknown function '" + e.name + "'");
          e.type = Type::int_type(32, true);
          break;
        }
        if (!callee->is_extern_hdl) {
          diags_.error(e.loc, "only extern HDL functions may be called (got '" + e.name + "')");
        }
        if (e.operands.size() != callee->params.size()) {
          diags_.error(e.loc, "'" + e.name + "' expects " +
                                  std::to_string(callee->params.size()) + " arguments, got " +
                                  std::to_string(e.operands.size()));
        }
        for (ExprPtr& arg : e.operands) {
          analyze_expr(*arg);
          require_int(*arg);
        }
        e.type = callee->return_type;
        break;
      }
      case ExprKind::kStreamRead: {
        const Symbol* sym = lookup(e.name);
        if (sym == nullptr || !sym->type.is_stream()) {
          diags_.error(e.loc, "'" + e.name + "' is not a stream");
          e.type = Type::int_type(32, false);
          break;
        }
        if (sym->type.stream_dir() != StreamDir::kIn) {
          diags_.error(e.loc, "cannot read from output stream '" + e.name + "'");
        }
        e.type = sym->type.element_type();
        break;
      }
    }
  }
};

}  // namespace

SemaResult analyze(Program& program, const SourceManager& sm, DiagnosticEngine& diags) {
  Analyzer analyzer(program, sm, diags);
  return analyzer.run();
}

}  // namespace hlsav::lang
