#include "assertions/synthesize.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace hlsav::assertions {

using hlsav::BitVector;
using ir::BasicBlock;
using ir::Design;
using ir::MemId;
using ir::Op;
using ir::OpKind;
using ir::Operand;
using ir::Process;
using ir::RegId;
using ir::StreamId;

namespace {

constexpr unsigned kFailIdWidth = 32;

bool is_assert_meta(const Op& op) {
  return op.kind == OpKind::kAssert || op.kind == OpKind::kAssertTap ||
         op.kind == OpKind::kAssertFailWire || op.kind == OpKind::kAssertCycles;
}

SynthesisReport strip_all(Design& d) {
  SynthesisReport rep;
  rep.assertions_stripped = static_cast<unsigned>(d.assertions.size());
  for (auto& proc : d.processes) {
    for (BasicBlock& b : proc->blocks) {
      std::erase_if(b.ops, [](const Op& op) {
        return op.assert_tag != ir::kNoAssertTag || is_assert_meta(op);
      });
    }
  }
  d.assertions.clear();
  return rep;
}

class Synthesizer {
 public:
  Synthesizer(Design& d, const Options& opt) : d_(d), opt_(opt) {}

  SynthesisReport run() {
    d_.continue_on_failure = opt_.nabort;
    // Snapshot: checkers/collectors appended during the pass must not be
    // re-scanned.
    std::vector<Process*> app_procs;
    for (auto& p : d_.processes) app_procs.push_back(p.get());
    for (Process* p : app_procs) transform_process(*p);
    return rep_;
  }

 private:
  Design& d_;
  const Options& opt_;
  SynthesisReport rep_;
  std::unordered_map<std::string, StreamId> process_fail_stream_;
  std::unordered_map<MemId, MemId> replica_of_;
  std::map<unsigned, StreamId> collector_stream_;  // group -> packed stream

  // ------------------------------------------------ failure channels --

  /// One kAssertFail stream per process (the unshared configuration the
  /// paper measures in Fig. 4/5 as "unoptimized").
  StreamId fail_stream_for(Process& p) {
    auto it = process_fail_stream_.find(p.name);
    if (it != process_fail_stream_.end()) return it->second;
    StreamId s = d_.add_stream(p.name + ".assert_fail", kFailIdWidth, /*depth=*/16,
                               ir::StreamRole::kAssertFail);
    p.ports.push_back(ir::StreamPort{"__afail", /*is_input=*/false, kFailIdWidth, s});
    d_.stream(s).producer =
        ir::StreamEndpoint{ir::StreamEndpoint::Kind::kProcess, p.name, "__afail"};
    d_.connect_cpu_consumer(s);
    process_fail_stream_[p.name] = s;
    ++rep_.fail_streams_created;
    return s;
  }

  /// Collector process + packed stream for assertion group `group`
  /// (§4.2: `channel_width` failure bits share one stream).
  StreamId collector_stream_for(unsigned group) {
    auto it = collector_stream_.find(group);
    if (it != collector_stream_.end()) return it->second;

    std::string name = "assert_collector" + std::to_string(group);
    Process& col = d_.add_process(name);
    col.role = ir::ProcessRole::kAssertCollector;
    StreamId s = d_.add_stream(name + ".out", opt_.channel_width, /*depth=*/16,
                               ir::StreamRole::kAssertPacked);
    col.ports.push_back(ir::StreamPort{"out", /*is_input=*/false, opt_.channel_width, s});
    d_.stream(s).producer = ir::StreamEndpoint{ir::StreamEndpoint::Kind::kProcess, name, "out"};
    d_.connect_cpu_consumer(s);

    // Synthetic datapath so the area model sees the real cost of the
    // collector: per-assertion flag registers, an OR-reduce, the packed
    // word register and the guarded send.
    unsigned flags = std::min<unsigned>(
        opt_.channel_width,
        std::max<unsigned>(1, static_cast<unsigned>(d_.assertions.size()) -
                                   group * opt_.channel_width));
    ir::BlockId b = col.add_block("entry");
    col.entry = b;
    RegId any = col.add_reg("any", 1, false);
    std::vector<RegId> flag_regs;
    for (unsigned i = 0; i < flags; ++i) {
      flag_regs.push_back(col.add_reg("f" + std::to_string(i), 1, false));
    }
    Operand acc = Operand::make_reg(flag_regs[0]);
    for (unsigned i = 1; i < flags; ++i) {
      RegId t = col.add_reg("t" + std::to_string(i), 1, false);
      Op orop;
      orop.kind = OpKind::kBin;
      orop.bin = ir::BinKind::kOr;
      orop.args = {acc, Operand::make_reg(flag_regs[i])};
      orop.dest = t;
      col.block(b).ops.push_back(orop);
      acc = Operand::make_reg(t);
    }
    Op cp;
    cp.kind = OpKind::kCopy;
    cp.args = {acc};
    cp.dest = any;
    col.block(b).ops.push_back(cp);
    // The packed word is wired straight from the flag registers; the
    // simulator synthesizes the real word when a fail wire fires.
    Op send;
    send.kind = OpKind::kStreamWrite;
    send.stream = s;
    send.args = {Operand::make_imm(BitVector(opt_.channel_width))};
    send.pred = Operand::make_reg(any);
    col.block(b).ops.push_back(send);
    col.block(b).term.kind = ir::TermKind::kReturn;

    collector_stream_[group] = s;
    ++rep_.collector_processes;
    ++rep_.fail_streams_created;
    return s;
  }

  /// Appends the failure-signalling op for assertion `id` with condition
  /// `cond` to `ops`. In shared mode this is a zero-cost wire into the
  /// collector; otherwise a predicated stream write of the assertion id.
  void emit_failure_op(Process& sender, std::vector<Op>& ops, std::uint32_t id,
                       const Operand& cond, SourceLoc loc) {
    ir::AssertionRecord* rec = find_record(id);
    if (opt_.share_channels) {
      unsigned group = id / opt_.channel_width;
      rec->fail_stream = collector_stream_for(group);
      rec->fail_bit = id % opt_.channel_width;
      Op wire;
      wire.kind = OpKind::kAssertFailWire;
      wire.loc = loc;
      wire.assert_id = id;
      wire.assert_tag = id;
      wire.args = {cond};
      ops.push_back(std::move(wire));
    } else {
      StreamId s = sender.role == ir::ProcessRole::kAssertChecker ? checker_fail_stream(sender)
                                                                  : fail_stream_for(sender);
      rec->fail_stream = s;
      rec->fail_code = id;
      Op send;
      send.kind = OpKind::kStreamWrite;
      send.loc = loc;
      send.stream = s;
      send.args = {Operand::make_imm(BitVector::from_u64(kFailIdWidth, id))};
      send.pred = cond;
      send.pred_negated = true;  // fire when the condition is false
      send.assert_tag = id;
      ops.push_back(std::move(send));
    }
  }

  StreamId checker_fail_stream(Process& checker) {
    // Checkers have their own dedicated failure stream in unshared mode.
    if (const ir::StreamPort* port = checker.find_port("fail"); port != nullptr) {
      return port->stream;
    }
    StreamId s = d_.add_stream(checker.name + ".fail", kFailIdWidth, 16,
                               ir::StreamRole::kAssertFail);
    checker.ports.push_back(ir::StreamPort{"fail", false, kFailIdWidth, s});
    d_.stream(s).producer =
        ir::StreamEndpoint{ir::StreamEndpoint::Kind::kProcess, checker.name, "fail"};
    d_.connect_cpu_consumer(s);
    ++rep_.fail_streams_created;
    return s;
  }

  ir::AssertionRecord* find_record(std::uint32_t id) {
    for (ir::AssertionRecord& r : d_.assertions) {
      if (r.id == id) return &r;
    }
    HLSAV_UNREACHABLE("assertion id missing from catalogue");
  }

  // ------------------------------------------------------ replication --

  MemId replica_for(Process& owner, MemId mem) {
    if (auto it = replica_of_.find(mem); it != replica_of_.end()) return it->second;
    const ir::Memory orig = d_.memory(mem);  // copy: add_memory may realloc
    MemId rep = d_.add_memory(orig.name + "__rep", orig.owner_process, orig.width,
                              orig.is_signed, orig.size);
    ir::Memory& r = d_.memory(rep);
    r.role = ir::MemRole::kReplica;
    r.replica_of = mem;
    r.init = orig.init;
    replica_of_[mem] = rep;
    ++rep_.replicas_created;

    // Mirror every application store so the replica stays coherent; the
    // mirror writes use the replica's own port and merge into existing
    // states (is_extraction).
    for (BasicBlock& b : owner.blocks) {
      std::vector<Op> rebuilt;
      rebuilt.reserve(b.ops.size());
      for (const Op& op : b.ops) {
        rebuilt.push_back(op);
        if (op.kind == OpKind::kStore && op.mem == mem && !op.is_extraction) {
          Op mirror = op;
          mirror.mem = rep;
          mirror.is_extraction = true;
          rebuilt.push_back(std::move(mirror));
        }
      }
      b.ops = std::move(rebuilt);
    }
    return rep;
  }

  // ------------------------------------------------- per-process pass --

  void transform_process(Process& p) {
    // Blocks are appended during splitting; index-iterate.
    for (ir::BlockId bi = 0; bi < p.blocks.size(); ++bi) {
      bool restart = true;
      while (restart) {
        restart = false;
        BasicBlock& b = p.block(bi);
        for (std::size_t k = 0; k < b.ops.size(); ++k) {
          if (b.ops[k].kind != OpKind::kAssert) continue;
          bool block_continues = transform_assert(p, bi, k);
          ++rep_.assertions_synthesized;
          restart = block_continues;  // rescan: ops/block were rewritten
          break;
        }
      }
    }
    // Timing assertions (assert_cycles): the marker stays in place (it
    // costs no application states); a dedicated micro-checker carrying
    // the free-running counter, comparator and failure channel is added
    // for each one.
    for (ir::BlockId bi = 0; bi < p.blocks.size(); ++bi) {
      for (std::size_t k = 0; k < p.block(bi).ops.size(); ++k) {
        if (p.block(bi).ops[k].kind != OpKind::kAssertCycles) continue;
        synthesize_cycles_checker(p, p.block(bi).ops[k]);
        ++rep_.assertions_synthesized;
      }
    }
  }

  /// Timing assertion (paper §6 future work, implemented here): a tiny
  /// checker process holds the free-running cycle counter, the
  /// comparator against the marker's budget, and the failure channel.
  /// The application-side marker op is zero-cost.
  void synthesize_cycles_checker(Process& p, const Op& marker) {
    const std::uint32_t id = marker.assert_id;
    std::string chk_name = "chk_cyc_" + p.name + "_a" + std::to_string(id);
    Process& chk = d_.add_process(chk_name);
    chk.role = ir::ProcessRole::kAssertChecker;
    ir::BlockId cb = chk.add_block("entry");
    chk.entry = cb;
    ++rep_.checker_processes;

    RegId counter = chk.add_reg("cycle_counter", 32, false);
    RegId ok = chk.add_reg("within_budget", 1, false);
    Op cmp;
    cmp.kind = OpKind::kBin;
    cmp.loc = marker.loc;
    cmp.bin = ir::BinKind::kCmpLeU;
    cmp.args = {Operand::make_reg(counter),
                Operand::make_imm(BitVector::from_u64(32, marker.cycle_bound))};
    cmp.dest = ok;
    chk.block(cb).ops.push_back(std::move(cmp));
    emit_failure_op(chk, chk.block(cb).ops, id, Operand::make_reg(ok), marker.loc);
    chk.block(cb).term.kind = ir::TermKind::kReturn;

    ir::AssertionRecord* rec = find_record(id);
    rec->checker_process = chk_name;
  }

  /// Rewrites the assert at p.block(bi).ops[k]. Returns true if the same
  /// block should be rescanned for further asserts (no split happened).
  bool transform_assert(Process& p, ir::BlockId bi, std::size_t k) {
    BasicBlock& b = p.block(bi);
    Op assert_op = b.ops[k];
    const std::uint32_t id = assert_op.assert_id;
    const bool pipelined = p.loop_with_body(bi) != nullptr;

    if (opt_.parallelize) {
      parallelize_assert(p, bi, k, assert_op, pipelined);
      return true;
    }

    // ---- Unoptimized: straightforward if-statement conversion. ----
    if (opt_.share_channels || pipelined) {
      // The failure send stays inline (predicated / wired); the block is
      // not split, so pipelined bodies keep their single-block shape.
      std::vector<Op> fail_ops;
      emit_failure_op(p, fail_ops, id, assert_op.args[0], assert_op.loc);
      b.ops[k] = std::move(fail_ops[0]);
      return true;
    }

    // Sequential, one stream per process: split the block and branch to a
    // failure block that sends the assertion id. Copy the name first:
    // add_block may reallocate the block vector and invalidate `b`.
    const std::string base_name = b.name;
    ir::BlockId cont = p.add_block(base_name + "_cont" + std::to_string(id));
    ir::BlockId fail = p.add_block(base_name + "_fail" + std::to_string(id));
    {
      // Re-fetch: add_block may have reallocated the block vector.
      BasicBlock& blk = p.block(bi);
      BasicBlock& cont_blk = p.block(cont);
      BasicBlock& fail_blk = p.block(fail);

      cont_blk.ops.assign(blk.ops.begin() + static_cast<long>(k) + 1, blk.ops.end());
      cont_blk.term = blk.term;
      blk.ops.resize(k);

      std::vector<Op> fail_ops;
      // In unshared mode the send is unconditional inside the failure
      // block (the branch is the predicate).
      {
        StreamId s = fail_stream_for(p);
        ir::AssertionRecord* rec = find_record(id);
        rec->fail_stream = s;
        rec->fail_code = id;
        Op send;
        send.kind = OpKind::kStreamWrite;
        send.loc = assert_op.loc;
        send.stream = s;
        send.args = {Operand::make_imm(BitVector::from_u64(kFailIdWidth, id))};
        send.assert_tag = id;
        fail_ops.push_back(std::move(send));
      }
      fail_blk.ops = std::move(fail_ops);
      fail_blk.term = ir::Terminator{ir::TermKind::kJump, Operand::none(), cont, ir::kNoBlock};

      blk.term = ir::Terminator{ir::TermKind::kBranch, assert_op.args[0], cont, fail};
    }
    return false;  // rest of the block moved; outer loop reaches `cont` later
  }

  // --------------------------------------------- parallelization (§3.1) --

  void parallelize_assert(Process& p, ir::BlockId bi, std::size_t k, const Op& assert_op,
                          bool pipelined) {
    const std::uint32_t id = assert_op.assert_id;

    // First decide which memories need replicas, then create them:
    // replica creation inserts mirror stores and shifts op indices, so it
    // must happen before the slice indices are collected.
    std::unordered_map<MemId, MemId> use_replica;
    {
      const BasicBlock& b = p.block(bi);
      for (std::size_t i = 0; i < k; ++i) {
        const Op& op = b.ops[i];
        if (op.assert_tag != id || op.is_extraction || op.kind != OpKind::kLoad) continue;
        bool want_replica =
            opt_.replicate && (d_.memory(op.mem).replicate_for_assertions || pipelined);
        if (want_replica) use_replica.emplace(op.mem, ir::kNoMem);
      }
    }
    for (auto& [mem, rep] : use_replica) rep = replica_for(p, mem);

    // The condition slice: ops in this block tagged with this assertion.
    BasicBlock& b = p.block(bi);
    std::size_t assert_idx = 0;
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      if (b.ops[i].kind == OpKind::kAssert && b.ops[i].assert_id == id) assert_idx = i;
    }
    k = assert_idx;
    std::vector<std::size_t> slice;
    for (std::size_t i = 0; i < k; ++i) {
      if (b.ops[i].assert_tag == id && !b.ops[i].is_extraction) slice.push_back(i);
    }

    // Split the slice into ops that move to the checker and loads that
    // either stay as application-side extraction or retarget to replicas.
    std::unordered_set<std::size_t> moved;  // indices into b.ops
    for (std::size_t i : slice) {
      Op& op = b.ops[i];
      if (op.kind == OpKind::kLoad) {
        if (use_replica.contains(op.mem)) {
          moved.insert(i);  // the checker reads the replica
        } else {
          op.is_extraction = true;  // stays in the application
        }
      } else {
        moved.insert(i);
      }
    }

    // Build (or extend) the checker process. With group_checkers (§3.3's
    // proposed extension) every assertion of the process shares one
    // checker: per-assertion sub-blocks, one wrapper, one failure
    // channel.
    std::string chk_name;
    Process* chk_ptr = nullptr;
    ir::BlockId cb = ir::kNoBlock;
    if (opt_.group_checkers) {
      chk_name = "chk_" + p.name;
      chk_ptr = d_.find_process(chk_name);
      if (chk_ptr == nullptr) {
        chk_ptr = &d_.add_process(chk_name);
        chk_ptr->role = ir::ProcessRole::kAssertChecker;
        ++rep_.checker_processes;
        cb = chk_ptr->add_block("a" + std::to_string(id));
        chk_ptr->entry = cb;
      } else {
        cb = chk_ptr->add_block("a" + std::to_string(id));
      }
      chk_ptr->block(cb).term.kind = ir::TermKind::kReturn;
    } else {
      chk_name = "chk_" + p.name + "_a" + std::to_string(id);
      chk_ptr = &d_.add_process(chk_name);
      chk_ptr->role = ir::ProcessRole::kAssertChecker;
      cb = chk_ptr->add_block("entry");
      chk_ptr->entry = cb;
      ++rep_.checker_processes;
    }
    Process& chk = *chk_ptr;

    std::unordered_map<RegId, RegId> reg_map;  // app reg -> checker reg
    std::vector<RegId> input_app_regs;         // tap source order
    std::vector<RegId> input_chk_regs;

    auto map_operand = [&](const Operand& o) -> Operand {
      if (!o.is_reg()) return o;
      if (auto it = reg_map.find(o.reg); it != reg_map.end()) {
        return Operand::make_reg(it->second);
      }
      // Not defined by a moved op: it is an input tapped from the app.
      const ir::Register& r = p.reg(o.reg);
      RegId nr = chk.add_reg("in_" + r.name, r.width, r.is_signed);
      reg_map[o.reg] = nr;
      input_app_regs.push_back(o.reg);
      input_chk_regs.push_back(nr);
      return Operand::make_reg(nr);
    };

    for (std::size_t i : slice) {
      if (!moved.contains(i)) continue;
      Op op = b.ops[i];  // copy
      for (Operand& a : op.args) a = map_operand(a);
      if (!op.pred.is_none()) op.pred = map_operand(op.pred);
      if (op.kind == OpKind::kLoad) op.mem = use_replica.at(op.mem);
      if (op.dest != ir::kNoReg) {
        const ir::Register& r = p.reg(op.dest);
        RegId nr = chk.add_reg(r.name, r.width, r.is_signed);
        reg_map[op.dest] = nr;
        op.dest = nr;
      }
      chk.block(cb).ops.push_back(std::move(op));
    }

    // The condition itself, as seen from the checker.
    Operand chk_cond = assert_op.args[0];
    if (chk_cond.is_reg()) chk_cond = map_operand(chk_cond);
    emit_failure_op(chk, chk.block(cb).ops, id, chk_cond, assert_op.loc);
    chk.block(cb).term.kind = ir::TermKind::kReturn;

    ir::AssertionRecord* rec = find_record(id);
    rec->checker_process = chk_name;
    rec->checker_inputs = input_chk_regs;
    rec->checker_block = cb;

    // Rewrite the application block: drop moved ops, replace the assert
    // with a zero-cost tap carrying the input values.
    Op tap;
    tap.kind = OpKind::kAssertTap;
    tap.loc = assert_op.loc;
    tap.assert_id = id;
    tap.assert_tag = id;
    tap.is_extraction = true;
    for (RegId r : input_app_regs) tap.args.push_back(Operand::make_reg(r));
    if (!use_replica.empty()) tap.mem = use_replica.begin()->second;

    std::vector<Op> rebuilt;
    rebuilt.reserve(b.ops.size());
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      if (moved.contains(i)) continue;
      if (i == k) {
        rebuilt.push_back(tap);
        continue;
      }
      rebuilt.push_back(std::move(b.ops[i]));
    }
    b.ops = std::move(rebuilt);
  }
};

}  // namespace

std::string SynthesisReport::to_string() const {
  std::ostringstream os;
  os << "assertions synthesized: " << assertions_synthesized
     << ", stripped: " << assertions_stripped
     << ", failure streams: " << fail_streams_created
     << ", checkers: " << checker_processes
     << ", collectors: " << collector_processes
     << ", replicas: " << replicas_created;
  return os.str();
}

SynthesisReport synthesize(Design& design, const Options& options) {
  if (!options.enabled) return strip_all(design);
  Synthesizer s(design, options);
  return s.run();
}

}  // namespace hlsav::assertions
