// Per-assertion fault-coverage attribution.
//
// The paper argues (§5) that in-circuit assertions catch fault classes
// software simulation cannot; a fault-injection campaign turns that
// claim into a measurement. This table answers the follow-on question:
// *which* assertion caught *which* faults -- i.e. whether assertion
// placement (not just presence) determines what gets detected. The
// campaign runner records one entry per (assertion, fault-kind)
// detection; rendering walks the design's assertion catalogue in order,
// so the output is deterministic and includes assertions that never
// fired (coverage holes are the interesting rows).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ir/ir.h"

namespace hlsav::assertions {

class CoverageTable {
 public:
  explicit CoverageTable(const ir::Design& design) : design_(&design) {}

  /// Records that `assertion_id` detected one injected fault of `kind`.
  void record_detection(std::uint32_t assertion_id, const std::string& kind);
  /// Records one injected fault of `kind` and whether any assertion
  /// detected it (feeds the per-kind coverage rows).
  void record_fault(const std::string& kind, bool detected);

  /// Total faults detected by one assertion.
  [[nodiscard]] unsigned detections(std::uint32_t assertion_id) const;

  /// Renders the per-assertion table followed by per-kind coverage, in
  /// catalogue / lexicographic order (byte-stable across runs).
  [[nodiscard]] std::string render() const;

  /// Serializes the tallies as a line-oriented text block
  /// ("detection <id> <kind> <count>" / "fault <kind> <injected>
  /// <detected>", sorted), suitable for persisting a campaign's
  /// attribution next to its BENCH json.
  [[nodiscard]] std::string serialize() const;
  /// Merges a serialize() block into this table. Throws InternalError on
  /// a malformed line. serialize() of a fresh table after deserialize()
  /// round-trips byte-exactly.
  void deserialize(const std::string& text);

 private:
  struct KindTally {
    unsigned injected = 0;
    unsigned detected = 0;
  };

  const ir::Design* design_;
  /// assertion id -> fault kind -> detections.
  std::map<std::uint32_t, std::map<std::string, unsigned>> per_assertion_;
  std::map<std::string, KindTally> per_kind_;
};

}  // namespace hlsav::assertions
