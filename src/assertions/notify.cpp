#include "assertions/notify.h"

#include <sstream>

namespace hlsav::assertions {

std::vector<std::uint32_t> decode_failure_word(const ir::Design& design, ir::StreamId stream,
                                               std::uint64_t word) {
  std::vector<std::uint32_t> ids;
  const ir::Stream& s = design.stream(stream);
  switch (s.role) {
    case ir::StreamRole::kAssertFail:
      // The word is the assertion id itself.
      ids.push_back(static_cast<std::uint32_t>(word));
      break;
    case ir::StreamRole::kAssertPacked:
      // One bit per assertion of this collector's group.
      for (const ir::AssertionRecord& rec : design.assertions) {
        if (rec.fail_stream != stream) continue;
        if ((word >> rec.fail_bit) & 1) ids.push_back(rec.id);
      }
      break;
    default:
      internal_error("assertions/notify", 0,
                     "decode_failure_word on non-assertion stream '" + s.name + "'");
  }
  return ids;
}

bool NotificationFunction::on_word(ir::StreamId stream, std::uint64_t word,
                                   std::uint64_t cycle) {
  bool halt = false;
  for (std::uint32_t id : decode_failure_word(*design_, stream, word)) {
    halt |= on_direct(id, cycle);
  }
  return halt;
}

bool NotificationFunction::on_direct(std::uint32_t assertion_id, std::uint64_t cycle) {
  const ir::AssertionRecord* rec = design_->find_assertion(assertion_id);
  Failure f;
  f.assertion_id = assertion_id;
  f.cycle = cycle;
  f.message = rec != nullptr
                  ? rec->failure_message()
                  : "<unknown assertion #" + std::to_string(assertion_id) + "> failed.";
  if (sink_) sink_(f);
  failures_.push_back(std::move(f));
  if (!design_->continue_on_failure) {
    aborted_ = true;
    return true;
  }
  return false;
}

std::string NotificationFunction::render() const {
  std::ostringstream os;
  for (const Failure& f : failures_) {
    os << f.message << "  [cycle " << f.cycle << "]\n";
  }
  if (aborted_) os << "Application aborted on first assertion failure.\n";
  return os.str();
}

}  // namespace hlsav::assertions
