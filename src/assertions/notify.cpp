#include "assertions/notify.h"

#include <sstream>

namespace hlsav::assertions {

std::vector<std::uint32_t> decode_failure_word(const ir::Design& design, ir::StreamId stream,
                                               std::uint64_t word) {
  std::vector<std::uint32_t> ids;
  const ir::Stream& s = design.stream(stream);
  switch (s.role) {
    case ir::StreamRole::kAssertFail:
      // The word is the assertion id itself.
      ids.push_back(static_cast<std::uint32_t>(word));
      break;
    case ir::StreamRole::kAssertPacked:
      // One bit per assertion of this collector's group.
      for (const ir::AssertionRecord& rec : design.assertions) {
        if (rec.fail_stream != stream) continue;
        if ((word >> rec.fail_bit) & 1) ids.push_back(rec.id);
      }
      break;
    default:
      internal_error("assertions/notify", 0,
                     "decode_failure_word on non-assertion stream '" + s.name + "'");
  }
  return ids;
}

void NotificationFunction::build_index() {
  index_built_ = true;
  for (const ir::AssertionRecord& rec : design_->assertions) {
    by_id_.emplace(rec.id, &rec);
    if (rec.fail_stream != ir::kNoStream &&
        design_->stream(rec.fail_stream).role == ir::StreamRole::kAssertPacked) {
      packed_groups_[rec.fail_stream].push_back(&rec);
    }
  }
}

bool NotificationFunction::on_word(ir::StreamId stream, std::uint64_t word,
                                   std::uint64_t cycle) {
  if (!index_built_) build_index();
  bool halt = false;
  switch (design_->stream(stream).role) {
    case ir::StreamRole::kAssertFail:
      // The word is the assertion id itself.
      halt = on_direct(static_cast<std::uint32_t>(word), cycle);
      break;
    case ir::StreamRole::kAssertPacked: {
      // One bit per assertion of this collector's group.
      auto it = packed_groups_.find(stream);
      if (it != packed_groups_.end()) {
        for (const ir::AssertionRecord* rec : it->second) {
          if ((word >> rec->fail_bit) & 1) halt |= on_direct(rec->id, cycle);
        }
      }
      break;
    }
    default:
      internal_error("assertions/notify", 0,
                     "decode_failure_word on non-assertion stream '" +
                         design_->stream(stream).name + "'");
  }
  return halt;
}

bool NotificationFunction::on_direct(std::uint32_t assertion_id, std::uint64_t cycle) {
  if (!index_built_) build_index();
  auto it = by_id_.find(assertion_id);
  const ir::AssertionRecord* rec = it == by_id_.end() ? nullptr : it->second;
  Failure f;
  f.assertion_id = assertion_id;
  f.cycle = cycle;
  f.message = rec != nullptr
                  ? rec->failure_message()
                  : "<unknown assertion #" + std::to_string(assertion_id) + "> failed.";
  if (sink_) sink_(f);
  failures_.push_back(std::move(f));
  if (!design_->continue_on_failure) {
    aborted_ = true;
    return true;
  }
  return false;
}

std::string NotificationFunction::render() const {
  std::ostringstream os;
  for (const Failure& f : failures_) {
    os << f.message << "  [cycle " << f.cycle << "]\n";
  }
  if (aborted_) os << "Application aborted on first assertion failure.\n";
  return os.str();
}

}  // namespace hlsav::assertions
