// In-circuit assertion synthesis (the paper's §3 and §4).
//
// Transforms a lowered design in place:
//
//  * NDEBUG (enabled=false): every assert and its condition slice is
//    removed; the design is the "Original" application.
//
//  * Unoptimized: each `assert` becomes the paper's straightforward
//    if-statement conversion. In sequential code the block is split and
//    a failure branch writes the assertion id to the process's failure
//    stream; inside pipelined loop bodies the failure send becomes a
//    predicated stream write so the loop stays a single block. Condition
//    ops stay inline and keep their assert tags, so the scheduler gives
//    the check its own state(s).
//
//  * Parallelized (§3.1): condition computation moves into a dedicated
//    checker process; the application keeps only zero-cost register taps
//    plus any block-RAM extraction loads, and never waits for the check.
//
//  * Replicated (§3.2): for tagged loads in pipelined bodies (or from
//    memories marked `#pragma HLS replicate`), a write-mirrored replica
//    RAM is created; the checker reads the replica through its own port
//    and the application only taps the index after the mirrored write
//    commits.
//
//  * Shared channels (§3.3/§4.2): failure signalling becomes a 1-bit
//    wire into a collector process; one `channel_width`-bit stream
//    serves up to that many assertions instead of one stream per
//    process.
//
// Failure reporting always flows over ordinary HLS streams to the CPU
// (portability), where notify.h decodes ids into the ANSI-C message.
#pragma once

#include <string>
#include <vector>

#include "assertions/options.h"
#include "ir/ir.h"

namespace hlsav::assertions {

struct SynthesisReport {
  unsigned assertions_synthesized = 0;
  unsigned fail_streams_created = 0;
  unsigned checker_processes = 0;
  unsigned collector_processes = 0;
  unsigned replicas_created = 0;
  unsigned assertions_stripped = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Applies assertion synthesis to `design` in place. Call ir::verify()
/// afterwards in tests. The design must still contain kAssert ops (i.e.
/// run this exactly once per design).
SynthesisReport synthesize(ir::Design& design, const Options& options);

}  // namespace hlsav::assertions
