// CPU-side assertion notification function (paper Fig. 1, §4.1).
//
// The notification function is the software task that monitors the
// failure streams coming back from the FPGA over the multiplexed
// channel, decodes assertion identifiers (or packed failure-bit words),
// and prints the standard ANSI-C failure message. Unless NABORT is set,
// the first failure halts the application.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ir.h"

namespace hlsav::assertions {

/// One decoded assertion failure.
struct Failure {
  std::uint32_t assertion_id = 0;
  std::string message;
  std::uint64_t cycle = 0;  // FPGA cycle at which the failure was sent
};

/// Decodes one word received on `stream` into the assertion ids it
/// reports. kAssertFail streams carry one id per word; kAssertPacked
/// streams carry one bit per assertion of the collector's group.
[[nodiscard]] std::vector<std::uint32_t> decode_failure_word(const ir::Design& design,
                                                             ir::StreamId stream,
                                                             std::uint64_t word);

/// The notification function: collects failures, renders messages,
/// decides whether to halt. Thread-free; the simulator drives it.
class NotificationFunction {
 public:
  using Sink = std::function<void(const Failure&)>;

  explicit NotificationFunction(const ir::Design& design) : design_(&design) {}

  /// Optional callback invoked on every failure (e.g. to print to
  /// stderr); failures are recorded regardless.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Feeds one received word from a failure stream. Returns true if the
  /// application should halt (first failure and NABORT is off).
  bool on_word(ir::StreamId stream, std::uint64_t word, std::uint64_t cycle);

  /// Reports a failure by assertion id directly (software simulation,
  /// where assert statements are evaluated in place). Same halt rules.
  bool on_direct(std::uint32_t assertion_id, std::uint64_t cycle);

  [[nodiscard]] const std::vector<Failure>& failures() const { return failures_; }
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Renders all collected failures, one message per line.
  [[nodiscard]] std::string render() const;

 private:
  /// Builds the id -> record and packed-stream -> group indices on first
  /// use, so a notification storm (NABORT hang tracing) does not rescan
  /// the whole assertion catalogue per delivered word.
  void build_index();

  const ir::Design* design_;
  Sink sink_;
  std::vector<Failure> failures_;
  bool aborted_ = false;
  bool index_built_ = false;
  std::unordered_map<std::uint32_t, const ir::AssertionRecord*> by_id_;
  /// Group members per kAssertPacked stream, in catalogue order (the
  /// order decode_failure_word reports them).
  std::unordered_map<ir::StreamId, std::vector<const ir::AssertionRecord*>> packed_groups_;
};

}  // namespace hlsav::assertions
