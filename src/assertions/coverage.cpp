#include "assertions/coverage.h"

#include <sstream>

#include "support/table.h"

namespace hlsav::assertions {

void CoverageTable::record_detection(std::uint32_t assertion_id, const std::string& kind) {
  ++per_assertion_[assertion_id][kind];
}

void CoverageTable::record_fault(const std::string& kind, bool detected) {
  KindTally& t = per_kind_[kind];
  ++t.injected;
  if (detected) ++t.detected;
}

unsigned CoverageTable::detections(std::uint32_t assertion_id) const {
  auto it = per_assertion_.find(assertion_id);
  if (it == per_assertion_.end()) return 0;
  unsigned n = 0;
  for (const auto& [kind, count] : it->second) n += count;
  return n;
}

std::string CoverageTable::render() const {
  std::ostringstream os;

  TextTable per_assert("Per-assertion fault coverage");
  per_assert.header({"assertion", "location", "condition", "faults detected", "kinds"});
  for (const ir::AssertionRecord& rec : design_->assertions) {
    std::string kinds;
    unsigned total = 0;
    auto it = per_assertion_.find(rec.id);
    if (it != per_assertion_.end()) {
      for (const auto& [kind, count] : it->second) {
        if (!kinds.empty()) kinds += ", ";
        kinds += kind + " x" + std::to_string(count);
        total += count;
      }
    }
    std::string label = "#";
    label += std::to_string(rec.id);
    per_assert.row({label, rec.process + ":" + std::to_string(rec.line), rec.condition_text,
                    std::to_string(total), kinds});
  }
  os << per_assert.render();

  TextTable per_kind("Fault-kind detection rates");
  per_kind.header({"fault kind", "injected", "detected", "coverage"});
  for (const auto& [kind, tally] : per_kind_) {
    double pct =
        tally.injected == 0 ? 0.0 : 100.0 * static_cast<double>(tally.detected) /
                                        static_cast<double>(tally.injected);
    per_kind.row({kind, std::to_string(tally.injected), std::to_string(tally.detected),
                  fmt_double(pct, 1) + "%"});
  }
  os << per_kind.render();
  return os.str();
}

}  // namespace hlsav::assertions
