#include "assertions/coverage.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/table.h"

namespace hlsav::assertions {

void CoverageTable::record_detection(std::uint32_t assertion_id, const std::string& kind) {
  ++per_assertion_[assertion_id][kind];
}

void CoverageTable::record_fault(const std::string& kind, bool detected) {
  KindTally& t = per_kind_[kind];
  ++t.injected;
  if (detected) ++t.detected;
}

unsigned CoverageTable::detections(std::uint32_t assertion_id) const {
  auto it = per_assertion_.find(assertion_id);
  if (it == per_assertion_.end()) return 0;
  unsigned n = 0;
  for (const auto& [kind, count] : it->second) n += count;
  return n;
}

std::string CoverageTable::render() const {
  std::ostringstream os;

  TextTable per_assert("Per-assertion fault coverage");
  per_assert.header({"assertion", "location", "condition", "faults detected", "kinds"});
  for (const ir::AssertionRecord& rec : design_->assertions) {
    std::string kinds;
    unsigned total = 0;
    auto it = per_assertion_.find(rec.id);
    if (it != per_assertion_.end()) {
      for (const auto& [kind, count] : it->second) {
        if (!kinds.empty()) kinds += ", ";
        kinds += kind + " x" + std::to_string(count);
        total += count;
      }
    }
    std::string label = "#";
    label += std::to_string(rec.id);
    per_assert.row({label, rec.process + ":" + std::to_string(rec.line), rec.condition_text,
                    std::to_string(total), kinds});
  }
  os << per_assert.render();

  TextTable per_kind("Fault-kind detection rates");
  per_kind.header({"fault kind", "injected", "detected", "coverage"});
  for (const auto& [kind, tally] : per_kind_) {
    double pct =
        tally.injected == 0 ? 0.0 : 100.0 * static_cast<double>(tally.detected) /
                                        static_cast<double>(tally.injected);
    per_kind.row({kind, std::to_string(tally.injected), std::to_string(tally.detected),
                  fmt_double(pct, 1) + "%"});
  }
  os << per_kind.render();
  return os.str();
}

std::string CoverageTable::serialize() const {
  // std::map iteration is already sorted, so the block is byte-stable.
  std::ostringstream os;
  for (const auto& [id, kinds] : per_assertion_) {
    for (const auto& [kind, count] : kinds) {
      os << "detection " << id << " " << kind << " " << count << "\n";
    }
  }
  for (const auto& [kind, tally] : per_kind_) {
    os << "fault " << kind << " " << tally.injected << " " << tally.detected << "\n";
  }
  return os.str();
}

void CoverageTable::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "detection") {
      std::uint32_t id = 0;
      std::string kind;
      unsigned count = 0;
      ls >> id >> kind >> count;
      HLSAV_CHECK(!ls.fail() && !kind.empty(),
                  "malformed coverage detection line: '" + line + "'");
      per_assertion_[id][kind] += count;
    } else if (tag == "fault") {
      std::string kind;
      KindTally t;
      ls >> kind >> t.injected >> t.detected;
      HLSAV_CHECK(!ls.fail() && !kind.empty(), "malformed coverage fault line: '" + line + "'");
      KindTally& dst = per_kind_[kind];
      dst.injected += t.injected;
      dst.detected += t.detected;
    } else {
      internal_error("coverage", 0, "unknown coverage line tag '" + tag + "'");
    }
  }
}

}  // namespace hlsav::assertions
