#include "assertions/report.h"

#include <sstream>

namespace hlsav::assertions {

std::string describe_framework(const ir::Design& d) {
  std::ostringstream os;
  os << "assertion framework for design '" << d.name << "'\n";

  os << "application tasks:\n";
  for (const auto& p : d.processes) {
    if (p->role != ir::ProcessRole::kApplication) continue;
    unsigned asserts = 0;
    for (const ir::AssertionRecord& a : d.assertions) {
      if (a.process == p->name) ++asserts;
    }
    os << "  " << p->name << " (" << asserts << " assertion"
       << (asserts == 1 ? "" : "s") << ")\n";
  }

  bool any_checker = false;
  for (const auto& p : d.processes) {
    if (p->role != ir::ProcessRole::kAssertChecker) continue;
    if (!any_checker) {
      os << "assertion checkers (run concurrently; latency only delays notification):\n";
      any_checker = true;
    }
    os << "  " << p->name << " checks";
    for (const ir::AssertionRecord& a : d.assertions) {
      if (a.checker_process == p->name) os << " #" << a.id;
    }
    os << '\n';
  }

  bool any_collector = false;
  for (const auto& p : d.processes) {
    if (p->role != ir::ProcessRole::kAssertCollector) continue;
    if (!any_collector) {
      os << "failure collectors (bit-packed shared channels):\n";
      any_collector = true;
    }
    os << "  " << p->name << '\n';
  }

  bool any_replica = false;
  for (const ir::Memory& m : d.memories) {
    if (m.role != ir::MemRole::kReplica) continue;
    if (!any_replica) {
      os << "replicated RAMs (dedicated assertion read ports):\n";
      any_replica = true;
    }
    os << "  " << m.name << " mirrors " << d.memory(m.replica_of).name << '\n';
  }

  os << "failure channels to the CPU (time-multiplexed physical link):\n";
  bool any_stream = false;
  for (const ir::Stream& s : d.streams) {
    if (s.dead) continue;
    if (s.role != ir::StreamRole::kAssertFail && s.role != ir::StreamRole::kAssertPacked) {
      continue;
    }
    any_stream = true;
    os << "  " << s.name << " <" << s.width << "> "
       << (s.role == ir::StreamRole::kAssertFail ? "(id per failure)" : "(bit per assertion)")
       << '\n';
  }
  if (!any_stream) os << "  (none -- assertions stripped or not yet synthesized)\n";

  os << "notification decode table:\n";
  for (const ir::AssertionRecord& a : d.assertions) {
    os << "  #" << a.id << " -> \"" << a.failure_message() << "\"";
    if (a.fail_stream != ir::kNoStream) {
      const ir::Stream& s = d.stream(a.fail_stream);
      os << "  via " << s.name;
      if (s.role == ir::StreamRole::kAssertPacked) os << " bit " << a.fail_bit;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hlsav::assertions
