// Assertion synthesis configuration.
//
// The paper's design space, as independent switches:
//  - enabled=false          -> NDEBUG: strip every assertion (the
//                              "Original" columns of Tables 1-2).
//  - parallelize (§3.1)     -> move condition evaluation into concurrent
//                              checker processes; the application only
//                              taps operand values and proceeds.
//  - replicate (§3.2)       -> honor `#pragma HLS replicate` (and, inside
//                              pipelined loops, automatically) by giving
//                              checkers a write-mirrored replica RAM with
//                              a dedicated read port.
//  - share_channels (§3.3 / §4.2) -> pack up to `channel_width` failure
//                              flags into one stream through collector
//                              processes instead of one stream per
//                              process.
//  - nabort                 -> NABORT: report failures but keep running
//                              (hang tracing with assert(0), §5.1).
#pragma once

namespace hlsav::assertions {

struct Options {
  bool enabled = true;
  bool parallelize = false;
  bool replicate = false;
  bool share_channels = false;
  unsigned channel_width = 32;
  bool nabort = false;
  /// §3.3's proposed extension (future work in the paper): group every
  /// parallelized assertion of a process into one shared checker
  /// process (per-assertion sub-blocks, one wrapper, one failure
  /// channel) instead of one checker process per assertion.
  bool group_checkers = false;

  /// NDEBUG build: assertions compiled out.
  static Options ndebug() {
    Options o;
    o.enabled = false;
    return o;
  }
  /// The paper's "unoptimized" baseline: straightforward if-statement
  /// conversion, one failure stream per process.
  static Options unoptimized() { return Options{}; }
  /// All optimizations on (the paper's "optimized" configuration).
  static Options optimized() {
    Options o;
    o.parallelize = true;
    o.replicate = true;
    o.share_channels = true;
    return o;
  }
};

}  // namespace hlsav::assertions
