// Human-readable rendering of the synthesized assertion framework --
// the textual equivalent of the paper's Fig. 1: application tasks,
// assertion checkers, collectors, replica RAMs, failure channels, and
// the CPU-side notification decode table.
#pragma once

#include <string>

#include "ir/ir.h"

namespace hlsav::assertions {

[[nodiscard]] std::string describe_framework(const ir::Design& design);

}  // namespace hlsav::assertions
