# Empty dependencies file for bench_table2_edgedetect.
# This may be replaced when dependencies are built.
