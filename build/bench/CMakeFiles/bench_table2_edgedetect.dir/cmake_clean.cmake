file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_edgedetect.dir/bench_table2_edgedetect.cpp.o"
  "CMakeFiles/bench_table2_edgedetect.dir/bench_table2_edgedetect.cpp.o.d"
  "bench_table2_edgedetect"
  "bench_table2_edgedetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_edgedetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
