file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_freq_scalability.dir/bench_fig4_freq_scalability.cpp.o"
  "CMakeFiles/bench_fig4_freq_scalability.dir/bench_fig4_freq_scalability.cpp.o.d"
  "bench_fig4_freq_scalability"
  "bench_fig4_freq_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_freq_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
