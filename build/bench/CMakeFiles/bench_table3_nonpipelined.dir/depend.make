# Empty dependencies file for bench_table3_nonpipelined.
# This may be replaced when dependencies are built.
