file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nonpipelined.dir/bench_table3_nonpipelined.cpp.o"
  "CMakeFiles/bench_table3_nonpipelined.dir/bench_table3_nonpipelined.cpp.o.d"
  "bench_table3_nonpipelined"
  "bench_table3_nonpipelined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nonpipelined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
