file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tripledes.dir/bench_table1_tripledes.cpp.o"
  "CMakeFiles/bench_table1_tripledes.dir/bench_table1_tripledes.cpp.o.d"
  "bench_table1_tripledes"
  "bench_table1_tripledes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tripledes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
