# Empty dependencies file for bench_table4_pipelined.
# This may be replaced when dependencies are built.
