
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_pipelined.cpp" "bench/CMakeFiles/bench_table4_pipelined.dir/bench_table4_pipelined.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_pipelined.dir/bench_table4_pipelined.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/hlsav_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/hlsav_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hlsav_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlsav_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hlsav_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/assertions/CMakeFiles/hlsav_assert.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hlsav_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hlsav_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hlsav_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
