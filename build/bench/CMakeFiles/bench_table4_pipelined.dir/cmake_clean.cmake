file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_pipelined.dir/bench_table4_pipelined.cpp.o"
  "CMakeFiles/bench_table4_pipelined.dir/bench_table4_pipelined.cpp.o.d"
  "bench_table4_pipelined"
  "bench_table4_pipelined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_pipelined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
