file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_divergence.dir/bench_sec51_divergence.cpp.o"
  "CMakeFiles/bench_sec51_divergence.dir/bench_sec51_divergence.cpp.o.d"
  "bench_sec51_divergence"
  "bench_sec51_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
