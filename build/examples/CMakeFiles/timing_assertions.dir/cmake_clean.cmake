file(REMOVE_RECURSE
  "CMakeFiles/timing_assertions.dir/timing_assertions.cpp.o"
  "CMakeFiles/timing_assertions.dir/timing_assertions.cpp.o.d"
  "timing_assertions"
  "timing_assertions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_assertions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
