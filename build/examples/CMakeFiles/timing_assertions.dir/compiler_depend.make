# Empty compiler generated dependencies file for timing_assertions.
# This may be replaced when dependencies are built.
