file(REMOVE_RECURSE
  "CMakeFiles/divergence_debug.dir/divergence_debug.cpp.o"
  "CMakeFiles/divergence_debug.dir/divergence_debug.cpp.o.d"
  "divergence_debug"
  "divergence_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergence_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
