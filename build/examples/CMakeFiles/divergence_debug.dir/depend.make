# Empty dependencies file for divergence_debug.
# This may be replaced when dependencies are built.
