# Empty compiler generated dependencies file for edge_detect_verify.
# This may be replaced when dependencies are built.
