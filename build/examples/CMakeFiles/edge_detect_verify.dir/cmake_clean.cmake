file(REMOVE_RECURSE
  "CMakeFiles/edge_detect_verify.dir/edge_detect_verify.cpp.o"
  "CMakeFiles/edge_detect_verify.dir/edge_detect_verify.cpp.o.d"
  "edge_detect_verify"
  "edge_detect_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_detect_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
