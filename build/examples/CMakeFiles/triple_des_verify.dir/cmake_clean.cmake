file(REMOVE_RECURSE
  "CMakeFiles/triple_des_verify.dir/triple_des_verify.cpp.o"
  "CMakeFiles/triple_des_verify.dir/triple_des_verify.cpp.o.d"
  "triple_des_verify"
  "triple_des_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triple_des_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
