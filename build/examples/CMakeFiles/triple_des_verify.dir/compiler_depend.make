# Empty compiler generated dependencies file for triple_des_verify.
# This may be replaced when dependencies are built.
