# Empty dependencies file for hlsavc.
# This may be replaced when dependencies are built.
