file(REMOVE_RECURSE
  "CMakeFiles/hlsavc.dir/hlsavc.cpp.o"
  "CMakeFiles/hlsavc.dir/hlsavc.cpp.o.d"
  "hlsavc"
  "hlsavc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsavc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
