file(REMOVE_RECURSE
  "CMakeFiles/hlsav_apps.dir/appbuild.cpp.o"
  "CMakeFiles/hlsav_apps.dir/appbuild.cpp.o.d"
  "CMakeFiles/hlsav_apps.dir/bmp.cpp.o"
  "CMakeFiles/hlsav_apps.dir/bmp.cpp.o.d"
  "CMakeFiles/hlsav_apps.dir/des.cpp.o"
  "CMakeFiles/hlsav_apps.dir/des.cpp.o.d"
  "CMakeFiles/hlsav_apps.dir/edge.cpp.o"
  "CMakeFiles/hlsav_apps.dir/edge.cpp.o.d"
  "CMakeFiles/hlsav_apps.dir/loopback.cpp.o"
  "CMakeFiles/hlsav_apps.dir/loopback.cpp.o.d"
  "libhlsav_apps.a"
  "libhlsav_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
