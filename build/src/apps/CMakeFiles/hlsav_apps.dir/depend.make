# Empty dependencies file for hlsav_apps.
# This may be replaced when dependencies are built.
