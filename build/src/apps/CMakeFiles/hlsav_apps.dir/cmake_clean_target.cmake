file(REMOVE_RECURSE
  "libhlsav_apps.a"
)
