file(REMOVE_RECURSE
  "CMakeFiles/hlsav_sched.dir/pipeline.cpp.o"
  "CMakeFiles/hlsav_sched.dir/pipeline.cpp.o.d"
  "CMakeFiles/hlsav_sched.dir/schedule.cpp.o"
  "CMakeFiles/hlsav_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/hlsav_sched.dir/sequential.cpp.o"
  "CMakeFiles/hlsav_sched.dir/sequential.cpp.o.d"
  "libhlsav_sched.a"
  "libhlsav_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
