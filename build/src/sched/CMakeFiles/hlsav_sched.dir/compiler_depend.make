# Empty compiler generated dependencies file for hlsav_sched.
# This may be replaced when dependencies are built.
