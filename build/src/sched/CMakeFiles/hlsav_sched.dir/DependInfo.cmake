
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/pipeline.cpp" "src/sched/CMakeFiles/hlsav_sched.dir/pipeline.cpp.o" "gcc" "src/sched/CMakeFiles/hlsav_sched.dir/pipeline.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/hlsav_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/hlsav_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/sequential.cpp" "src/sched/CMakeFiles/hlsav_sched.dir/sequential.cpp.o" "gcc" "src/sched/CMakeFiles/hlsav_sched.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/hlsav_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hlsav_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hlsav_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
