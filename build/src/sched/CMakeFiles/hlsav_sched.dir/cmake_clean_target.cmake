file(REMOVE_RECURSE
  "libhlsav_sched.a"
)
