file(REMOVE_RECURSE
  "libhlsav_sim.a"
)
