# Empty dependencies file for hlsav_sim.
# This may be replaced when dependencies are built.
