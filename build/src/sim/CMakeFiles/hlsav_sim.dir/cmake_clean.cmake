file(REMOVE_RECURSE
  "CMakeFiles/hlsav_sim.dir/simulator.cpp.o"
  "CMakeFiles/hlsav_sim.dir/simulator.cpp.o.d"
  "libhlsav_sim.a"
  "libhlsav_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
