file(REMOVE_RECURSE
  "CMakeFiles/hlsav_support.dir/bitvector.cpp.o"
  "CMakeFiles/hlsav_support.dir/bitvector.cpp.o.d"
  "CMakeFiles/hlsav_support.dir/diagnostics.cpp.o"
  "CMakeFiles/hlsav_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/hlsav_support.dir/source_manager.cpp.o"
  "CMakeFiles/hlsav_support.dir/source_manager.cpp.o.d"
  "CMakeFiles/hlsav_support.dir/str.cpp.o"
  "CMakeFiles/hlsav_support.dir/str.cpp.o.d"
  "CMakeFiles/hlsav_support.dir/table.cpp.o"
  "CMakeFiles/hlsav_support.dir/table.cpp.o.d"
  "libhlsav_support.a"
  "libhlsav_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
