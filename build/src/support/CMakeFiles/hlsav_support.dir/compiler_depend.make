# Empty compiler generated dependencies file for hlsav_support.
# This may be replaced when dependencies are built.
