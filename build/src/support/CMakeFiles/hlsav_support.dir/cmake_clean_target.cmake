file(REMOVE_RECURSE
  "libhlsav_support.a"
)
