file(REMOVE_RECURSE
  "CMakeFiles/hlsav_fpga.dir/area.cpp.o"
  "CMakeFiles/hlsav_fpga.dir/area.cpp.o.d"
  "CMakeFiles/hlsav_fpga.dir/timing.cpp.o"
  "CMakeFiles/hlsav_fpga.dir/timing.cpp.o.d"
  "libhlsav_fpga.a"
  "libhlsav_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
