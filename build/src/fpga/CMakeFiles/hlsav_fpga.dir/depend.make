# Empty dependencies file for hlsav_fpga.
# This may be replaced when dependencies are built.
