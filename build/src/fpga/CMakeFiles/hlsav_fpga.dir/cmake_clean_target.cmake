file(REMOVE_RECURSE
  "libhlsav_fpga.a"
)
