file(REMOVE_RECURSE
  "CMakeFiles/hlsav_ir.dir/ir.cpp.o"
  "CMakeFiles/hlsav_ir.dir/ir.cpp.o.d"
  "CMakeFiles/hlsav_ir.dir/lower.cpp.o"
  "CMakeFiles/hlsav_ir.dir/lower.cpp.o.d"
  "CMakeFiles/hlsav_ir.dir/optimize.cpp.o"
  "CMakeFiles/hlsav_ir.dir/optimize.cpp.o.d"
  "CMakeFiles/hlsav_ir.dir/print.cpp.o"
  "CMakeFiles/hlsav_ir.dir/print.cpp.o.d"
  "CMakeFiles/hlsav_ir.dir/verify.cpp.o"
  "CMakeFiles/hlsav_ir.dir/verify.cpp.o.d"
  "libhlsav_ir.a"
  "libhlsav_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
