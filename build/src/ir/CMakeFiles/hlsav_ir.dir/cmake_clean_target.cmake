file(REMOVE_RECURSE
  "libhlsav_ir.a"
)
