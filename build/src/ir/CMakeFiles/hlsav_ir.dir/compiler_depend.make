# Empty compiler generated dependencies file for hlsav_ir.
# This may be replaced when dependencies are built.
