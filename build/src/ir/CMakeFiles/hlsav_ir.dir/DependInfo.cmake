
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ir.cpp" "src/ir/CMakeFiles/hlsav_ir.dir/ir.cpp.o" "gcc" "src/ir/CMakeFiles/hlsav_ir.dir/ir.cpp.o.d"
  "/root/repo/src/ir/lower.cpp" "src/ir/CMakeFiles/hlsav_ir.dir/lower.cpp.o" "gcc" "src/ir/CMakeFiles/hlsav_ir.dir/lower.cpp.o.d"
  "/root/repo/src/ir/optimize.cpp" "src/ir/CMakeFiles/hlsav_ir.dir/optimize.cpp.o" "gcc" "src/ir/CMakeFiles/hlsav_ir.dir/optimize.cpp.o.d"
  "/root/repo/src/ir/print.cpp" "src/ir/CMakeFiles/hlsav_ir.dir/print.cpp.o" "gcc" "src/ir/CMakeFiles/hlsav_ir.dir/print.cpp.o.d"
  "/root/repo/src/ir/verify.cpp" "src/ir/CMakeFiles/hlsav_ir.dir/verify.cpp.o" "gcc" "src/ir/CMakeFiles/hlsav_ir.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/hlsav_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hlsav_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
