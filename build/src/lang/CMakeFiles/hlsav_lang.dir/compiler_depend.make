# Empty compiler generated dependencies file for hlsav_lang.
# This may be replaced when dependencies are built.
