file(REMOVE_RECURSE
  "libhlsav_lang.a"
)
