file(REMOVE_RECURSE
  "CMakeFiles/hlsav_lang.dir/ast.cpp.o"
  "CMakeFiles/hlsav_lang.dir/ast.cpp.o.d"
  "CMakeFiles/hlsav_lang.dir/lexer.cpp.o"
  "CMakeFiles/hlsav_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/hlsav_lang.dir/parser.cpp.o"
  "CMakeFiles/hlsav_lang.dir/parser.cpp.o.d"
  "CMakeFiles/hlsav_lang.dir/sema.cpp.o"
  "CMakeFiles/hlsav_lang.dir/sema.cpp.o.d"
  "CMakeFiles/hlsav_lang.dir/type.cpp.o"
  "CMakeFiles/hlsav_lang.dir/type.cpp.o.d"
  "libhlsav_lang.a"
  "libhlsav_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
