file(REMOVE_RECURSE
  "CMakeFiles/hlsav_rtl.dir/netlist.cpp.o"
  "CMakeFiles/hlsav_rtl.dir/netlist.cpp.o.d"
  "CMakeFiles/hlsav_rtl.dir/verilog.cpp.o"
  "CMakeFiles/hlsav_rtl.dir/verilog.cpp.o.d"
  "libhlsav_rtl.a"
  "libhlsav_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
