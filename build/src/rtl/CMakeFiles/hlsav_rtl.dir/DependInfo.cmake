
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/netlist.cpp" "src/rtl/CMakeFiles/hlsav_rtl.dir/netlist.cpp.o" "gcc" "src/rtl/CMakeFiles/hlsav_rtl.dir/netlist.cpp.o.d"
  "/root/repo/src/rtl/verilog.cpp" "src/rtl/CMakeFiles/hlsav_rtl.dir/verilog.cpp.o" "gcc" "src/rtl/CMakeFiles/hlsav_rtl.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/hlsav_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hlsav_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hlsav_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hlsav_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
