file(REMOVE_RECURSE
  "libhlsav_rtl.a"
)
