# Empty compiler generated dependencies file for hlsav_rtl.
# This may be replaced when dependencies are built.
