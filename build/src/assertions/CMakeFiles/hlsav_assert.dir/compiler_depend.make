# Empty compiler generated dependencies file for hlsav_assert.
# This may be replaced when dependencies are built.
