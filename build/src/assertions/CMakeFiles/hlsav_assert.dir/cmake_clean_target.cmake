file(REMOVE_RECURSE
  "libhlsav_assert.a"
)
