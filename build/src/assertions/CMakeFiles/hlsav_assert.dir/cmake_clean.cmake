file(REMOVE_RECURSE
  "CMakeFiles/hlsav_assert.dir/notify.cpp.o"
  "CMakeFiles/hlsav_assert.dir/notify.cpp.o.d"
  "CMakeFiles/hlsav_assert.dir/report.cpp.o"
  "CMakeFiles/hlsav_assert.dir/report.cpp.o.d"
  "CMakeFiles/hlsav_assert.dir/synthesize.cpp.o"
  "CMakeFiles/hlsav_assert.dir/synthesize.cpp.o.d"
  "libhlsav_assert.a"
  "libhlsav_assert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsav_assert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
