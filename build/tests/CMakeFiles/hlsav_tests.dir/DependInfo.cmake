
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/des_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/apps/des_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/apps/des_test.cpp.o.d"
  "/root/repo/tests/apps/edge_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/apps/edge_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/apps/edge_test.cpp.o.d"
  "/root/repo/tests/apps/loopback_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/apps/loopback_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/apps/loopback_test.cpp.o.d"
  "/root/repo/tests/apps/sweep_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/apps/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/apps/sweep_test.cpp.o.d"
  "/root/repo/tests/assertions/grouped_checkers_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/assertions/grouped_checkers_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/assertions/grouped_checkers_test.cpp.o.d"
  "/root/repo/tests/assertions/notify_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/assertions/notify_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/assertions/notify_test.cpp.o.d"
  "/root/repo/tests/assertions/report_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/assertions/report_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/assertions/report_test.cpp.o.d"
  "/root/repo/tests/assertions/synthesize_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/assertions/synthesize_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/assertions/synthesize_test.cpp.o.d"
  "/root/repo/tests/assertions/timing_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/assertions/timing_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/assertions/timing_test.cpp.o.d"
  "/root/repo/tests/fpga/area_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/fpga/area_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/fpga/area_test.cpp.o.d"
  "/root/repo/tests/fpga/timing_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/fpga/timing_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/fpga/timing_test.cpp.o.d"
  "/root/repo/tests/integration/equivalence_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/integration/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/integration/equivalence_test.cpp.o.d"
  "/root/repo/tests/ir/lower_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/ir/lower_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/ir/lower_test.cpp.o.d"
  "/root/repo/tests/ir/optimize_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/ir/optimize_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/ir/optimize_test.cpp.o.d"
  "/root/repo/tests/ir/print_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/ir/print_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/ir/print_test.cpp.o.d"
  "/root/repo/tests/ir/verify_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/ir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/ir/verify_test.cpp.o.d"
  "/root/repo/tests/lang/lexer_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/lang/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/lang/lexer_test.cpp.o.d"
  "/root/repo/tests/lang/parser_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/lang/parser_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/lang/parser_test.cpp.o.d"
  "/root/repo/tests/lang/robustness_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/lang/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/lang/robustness_test.cpp.o.d"
  "/root/repo/tests/lang/sema_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/lang/sema_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/lang/sema_test.cpp.o.d"
  "/root/repo/tests/lang/type_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/lang/type_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/lang/type_test.cpp.o.d"
  "/root/repo/tests/rtl/netlist_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/rtl/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/rtl/netlist_test.cpp.o.d"
  "/root/repo/tests/rtl/verilog_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/rtl/verilog_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/rtl/verilog_test.cpp.o.d"
  "/root/repo/tests/sched/pipeline_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/sched/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/sched/pipeline_test.cpp.o.d"
  "/root/repo/tests/sched/sequential_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/sched/sequential_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/sched/sequential_test.cpp.o.d"
  "/root/repo/tests/sim/edge_cases_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/sim/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/sim/edge_cases_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/support/bitvector_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/support/bitvector_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/support/bitvector_test.cpp.o.d"
  "/root/repo/tests/support/source_manager_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/support/source_manager_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/support/source_manager_test.cpp.o.d"
  "/root/repo/tests/support/str_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/support/str_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/support/str_test.cpp.o.d"
  "/root/repo/tests/support/table_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/support/table_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/support/table_test.cpp.o.d"
  "/root/repo/tests/tools/hlsavc_test.cpp" "tests/CMakeFiles/hlsav_tests.dir/tools/hlsavc_test.cpp.o" "gcc" "tests/CMakeFiles/hlsav_tests.dir/tools/hlsavc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/hlsav_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/hlsav_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hlsav_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlsav_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hlsav_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/assertions/CMakeFiles/hlsav_assert.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hlsav_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hlsav_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hlsav_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
