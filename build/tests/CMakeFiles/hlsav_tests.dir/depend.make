# Empty dependencies file for hlsav_tests.
# This may be replaced when dependencies are built.
