// Reproduces Table 2: edge-detection assertion overhead on the EP2S180.
//
// Two optimized assertions check that the streamed image's width and
// height match the hardware configuration (128x96 here, mirroring the
// paper's fixed-size kernel).
#include "bench/common.h"

#include "apps/edge.h"

namespace {

using namespace hlsav;
using bench::Characterized;

constexpr unsigned kW = 128;
constexpr unsigned kH = 96;

const sched::SchedOptions kEdgeSched = [] {
  sched::SchedOptions o;
  // The 5x5 window datapath is fully combinational inside the
  // rate-limited pipeline (Impulse-C chains the whole 25-tap reduction),
  // which is what makes this kernel's Fmax much lower than the DES one.
  o.chain_depth = 16;
  return o;
}();

std::unique_ptr<apps::CompiledApp>& compiled() {
  static std::unique_ptr<apps::CompiledApp> app =
      apps::compile_app("edge_detect", "edge.c", apps::edge::hlsc_source(kW, kH));
  return app;
}

void print_table2() {
  Characterized orig =
      bench::characterize(compiled()->design, assertions::Options::ndebug(), kEdgeSched);
  Characterized asrt =
      bench::characterize(compiled()->design, assertions::Options::optimized(), kEdgeSched);

  std::cout << bench::overhead_table(
      "Table 2: Edge-detection assertion overhead (measured by this implementation)", orig,
      asrt);

  TextTable paper("Paper's Table 2 (Curreri et al., measured on real Quartus/XD1000)");
  paper.header({"EP2S180", "Original", "Assert", "Overhead"});
  paper.row({"Logic Used", "12250 (8.54%)", "12273 (8.56%)", "+23 (+0.02%)"});
  paper.row({"Comb. ALUT", "6726 (4.69%)", "6809 (4.75%)", "+83 (+0.06%)"});
  paper.row({"Registers", "9371 (6.53%)", "9417 (6.56%)", "+46 (+0.03%)"});
  paper.row({"Block RAM bits", "141120 (1.50%)", "141696 (1.51%)", "+576 (+0.01%)"});
  paper.row({"Block interconnect", "19904 (3.71%)", "19994 (3.73%)", "+90 (+0.02%)"});
  paper.row({"Frequency (MHz)", "77.5", "79.3", "+1.8 (+2.32%)"});
  std::cout << paper.render();

  // Functional check on a small image with the same kernel structure.
  auto small = apps::compile_app("edge_small", "edge.c", apps::edge::hlsc_source(32, 24));
  Characterized cfg = bench::characterize(small->design, assertions::Options::optimized());
  apps::img::Image input = apps::img::synthetic_image(32, 24, 21);
  sim::ExternRegistry ext;
  sim::Simulator s(cfg.design, cfg.schedule, ext, {});
  s.feed("edge.in", apps::edge::to_word_stream(input));
  sim::RunResult r = s.run();
  apps::img::Image hw = apps::edge::from_word_stream(s.received("edge.out"), 32, 24);
  apps::img::Image gold = apps::edge::golden_edge(input);
  std::cout << "functional check (32x24 image): "
            << (hw.pixels == gold.pixels ? "matches golden model" : "MISMATCH") << ", "
            << r.cycles << " cycles, "
            << (r.failures.empty() ? "no assertion failures" : "ASSERTION FAILURES") << "\n\n";
}

void BM_SynthesizeEdge(benchmark::State& state) {
  for (auto _ : state) {
    ir::Design d = compiled()->design.clone();
    benchmark::DoNotOptimize(assertions::synthesize(d, assertions::Options::optimized()));
  }
}
BENCHMARK(BM_SynthesizeEdge);

void BM_AreaModelEdge(benchmark::State& state) {
  Characterized c =
      bench::characterize(compiled()->design, assertions::Options::optimized(), kEdgeSched);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpga::estimate_area(c.netlist));
  }
}
BENCHMARK(BM_AreaModelEdge);

void BM_SimulateEdgeRow(benchmark::State& state) {
  auto small = apps::compile_app("edge_bench", "edge.c", apps::edge::hlsc_source(32, 8));
  Characterized cfg = bench::characterize(small->design, assertions::Options::ndebug());
  apps::img::Image input = apps::img::synthetic_image(32, 8, 5);
  sim::ExternRegistry ext;
  for (auto _ : state) {
    sim::Simulator s(cfg.design, cfg.schedule, ext, {});
    s.feed("edge.in", apps::edge::to_word_stream(input));
    benchmark::DoNotOptimize(s.run());
  }
}
BENCHMARK(BM_SimulateEdgeRow);

}  // namespace

int main(int argc, char** argv) {
  hlsav::bench::print_provenance_banner("bench_table2_edgedetect");
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
