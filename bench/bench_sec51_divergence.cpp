// Reproduces §5.1: in-circuit verification catching bugs that software
// simulation misses.
//
//  (a) Translation fault: Impulse-C erroneously narrowed a 64-bit
//      comparison to 5 bits (4294967286 > 4294967296 became 22 > 0).
//      Software simulation executes source semantics and passes; the
//      injected-fault circuit fails the assertion.
//  (b) External HDL function whose C simulation model diverges from the
//      core's real behaviour.
//  (c) Hang tracing: assert(0) markers + NABORT localize where a process
//      stopped making progress (the paper's DES read-instead-of-write
//      bug).
#include "bench/common.h"

namespace {

using namespace hlsav;
using assertions::Options;

const char* kNarrowSrc = R"(
  // Fig. 3-style kernel: a 64-bit guard computes a RAM address.
  void f(stream_in<32> in, stream_out<32> out) {
    uint32 mem[32];
    uint64 c1;
    uint64 c2;
    c1 = 4294967296;
    c2 = stream_read(in);
    uint32 addr;
    addr = 0;
    if (c2 > c1) {
      addr = 99;
    }
    assert(addr < 32);
    mem[addr & 31] = 1;
    stream_write(out, addr);
  }
)";

struct Outcome {
  std::string status;
  std::string detail;
};

Outcome run_case(const ir::Design& lowered, sim::SimMode mode, bool inject,
                 const sim::ExternRegistry& ext, const std::string& in_stream,
                 const std::vector<std::uint64_t>& feed, bool synthesize_asserts) {
  ir::Design d = lowered.clone();
  if (synthesize_asserts) assertions::synthesize(d, Options::unoptimized());
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::SimOptions so;
  so.mode = mode;
  if (inject) so.faults.add_narrow_compare("", 11, 5);
  sim::Simulator s(d, sch, ext, so);
  s.feed(in_stream, feed);
  sim::RunResult r = s.run();
  Outcome o;
  switch (r.status) {
    case sim::RunStatus::kCompleted: o.status = "completed"; break;
    case sim::RunStatus::kAborted: o.status = "ABORTED"; break;
    case sim::RunStatus::kHung: o.status = "HUNG"; break;
    case sim::RunStatus::kDeadline: o.status = "BUDGET"; break;
  }
  if (!r.failures.empty()) o.detail = r.failures[0].message;
  return o;
}

void case_a_narrow_compare() {
  auto app = apps::compile_app("sec51a", "fig3.c", kNarrowSrc);
  sim::ExternRegistry ext;
  std::vector<std::uint64_t> feed = {4294967286u};

  Outcome sw = run_case(app->design, sim::SimMode::kSoftware, false, ext, "f.in", feed, false);
  Outcome hw = run_case(app->design, sim::SimMode::kHardware, true, ext, "f.in", feed, true);

  TextTable t("S5.1(a): erroneously narrowed 64-bit comparison (translation fault)");
  t.header({"execution", "result", "assertion report"});
  t.row({"software simulation (source semantics)", sw.status, sw.detail});
  t.row({"in-circuit (5-bit narrowed compare)", hw.status, hw.detail});
  std::cout << t.render();
  std::cout << "paper: the assertion never fails in simulation but fails on the XD1000;\n"
               "4294967286 > 4294967296 becomes 22 > 0 after the 5-bit narrowing.\n\n";
}

void case_b_extern_divergence() {
  const char* src = R"(
    extern uint32 accel(uint32 v);
    void f(stream_in<32> in, stream_out<32> out) {
      uint32 r;
      r = accel(stream_read(in));
      assert(r < 1000);
      stream_write(out, r);
    }
  )";
  auto app = apps::compile_app("sec51b", "extern.c", src);
  sim::ExternRegistry ext;
  ext.add("accel",
          [](const std::vector<BitVector>& a) {  // C model used in simulation
            return BitVector::from_u64(32, a[0].to_u64() / 4);
          },
          [](const std::vector<BitVector>& a) {  // real HDL core behaviour
            return BitVector::from_u64(32, a[0].to_u64() * 4);
          });
  std::vector<std::uint64_t> feed = {900};
  Outcome sw = run_case(app->design, sim::SimMode::kSoftware, false, ext, "f.in", feed, false);
  Outcome hw = run_case(app->design, sim::SimMode::kHardware, false, ext, "f.in", feed, true);
  TextTable t("S5.1(b): external HDL function vs its C simulation model");
  t.header({"execution", "result", "assertion report"});
  t.row({"software simulation (C model: v/4)", sw.status, sw.detail});
  t.row({"in-circuit (HDL core: v*4)", hw.status, hw.detail});
  std::cout << t.render() << '\n';
}

void case_c_hang_trace() {
  // A two-process pipeline where the consumer reads one more word than
  // the producer sends (the paper's read-instead-of-write class of bug):
  // software-ish reasoning says it completes, the circuit hangs.
  const char* src = R"(
    void producer(stream_in<32> in, stream_out<32> link) {
      for (uint32 i = 0; i < 4; i++) {
        stream_write(link, stream_read(in));
      }
    }
    void consumer(stream_in<32> link, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      assert(0);
      for (uint32 i = 0; i < 5; i++) {
        acc = acc + stream_read(link);
        assert(0);
      }
      stream_write(out, acc);
      assert(0);
    }
  )";
  auto app = apps::compile_app("sec51c", "hang.c", src);
  ir::StreamId link = app->design.find_process("producer")->find_port("link")->stream;
  app->design.connect_consumer(link, "consumer", "link");

  ir::Design d = app->design.clone();
  Options opt = Options::unoptimized();
  opt.nabort = true;  // trace markers must not abort
  assertions::synthesize(d, opt);
  ir::verify(d);
  sched::DesignSchedule sch = sched::schedule_design(d);
  sim::ExternRegistry ext;
  sim::Simulator s(d, sch, ext, {});
  s.feed("producer.in", {1, 2, 3, 4});
  sim::RunResult r = s.run();

  TextTable t("S5.1(c): hang localization with assert(0) markers + NABORT");
  t.header({"what", "value"});
  t.row({"run status", r.status == sim::RunStatus::kHung ? "HUNG (as on the XD1000)" : "??"});
  t.row({"trace markers reached", std::to_string(r.failures.size())});
  for (const auto& f : r.failures) {
    t.row({"  marker", f.message});
  }
  std::cout << t.render();
  std::cout << "hang report:\n" << r.hang_report
            << "comparing reached markers against a run of the correct code pinpoints\n"
               "the blocking statement, as in the paper's DES hang case study.\n\n";
}

void BM_DivergenceCase(benchmark::State& state) {
  auto app = apps::compile_app("sec51a", "fig3.c", kNarrowSrc);
  sim::ExternRegistry ext;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_case(app->design, sim::SimMode::kHardware, true, ext, "f.in", {4294967286u}, true));
  }
}
BENCHMARK(BM_DivergenceCase);

}  // namespace

int main(int argc, char** argv) {
  hlsav::bench::print_provenance_banner("bench_sec51_divergence");
  case_a_narrow_compare();
  case_b_extern_divergence();
  case_c_hang_trace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
