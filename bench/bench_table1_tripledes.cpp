// Reproduces Table 1: Triple-DES assertion overhead on the EP2S180.
//
// The paper adds two optimized (parallelized + shared-channel) ASCII
// bound assertions to an Impulse-C Triple-DES decryptor and reports the
// area and Fmax deltas. Here the decryptor is our generated HLS-C
// kernel, assertion synthesis is real, and the area/Fmax columns come
// from the analytic EP2S180 model (see DESIGN.md's calibration policy).
#include "bench/common.h"

#include "apps/des.h"

namespace {

using namespace hlsav;
using bench::Characterized;

const std::array<std::uint64_t, 3> kKeys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                            0x456789ABCDEF0123ull};

const sched::SchedOptions kDesSched = [] {
  sched::SchedOptions o;
  o.chain_depth = 6;  // Impulse-C chains aggressively in this kernel
  return o;
}();

std::unique_ptr<apps::CompiledApp>& compiled() {
  static std::unique_ptr<apps::CompiledApp> app =
      apps::compile_app("triple_des", "des3.c", apps::des::hlsc_decrypt_source(kKeys));
  return app;
}

void print_table1() {
  Characterized orig =
      bench::characterize(compiled()->design, assertions::Options::ndebug(), kDesSched);
  Characterized asrt =
      bench::characterize(compiled()->design, assertions::Options::optimized(), kDesSched);

  std::cout << bench::overhead_table(
      "Table 1: Triple-DES assertion overhead (measured by this implementation)", orig, asrt);

  TextTable paper("Paper's Table 1 (Curreri et al., measured on real Quartus/XD1000)");
  paper.header({"EP2S180", "Original", "Assert", "Overhead"});
  paper.row({"Logic Used", "13677 (9.53%)", "13851 (9.65%)", "+174 (+0.12%)"});
  paper.row({"Comb. ALUT", "7929 (5.52%)", "8025 (5.59%)", "+96 (+0.07%)"});
  paper.row({"Registers", "10019 (6.98%)", "10055 (7.01%)", "+36 (+0.03%)"});
  paper.row({"Block RAM bits", "222912 (2.37%)", "223488 (2.38%)", "+576 (+0.01%)"});
  paper.row({"Block interconnect", "24657 (4.60%)", "24878 (4.64%)", "+221 (+0.04%)"});
  paper.row({"Frequency (MHz)", "145.7", "142.0", "-3.7 (-2.54%)"});
  std::cout << paper.render();

  // Ablation: grouped checkers (the paper's §3.3 proposed extension) --
  // one shared checker process for both assertions instead of two.
  assertions::Options grouped = assertions::Options::optimized();
  grouped.group_checkers = true;
  Characterized grp = bench::characterize(compiled()->design, grouped, kDesSched);
  std::cout << "ablation group_checkers=on: ALUT overhead "
            << (asrt.area.aluts - orig.area.aluts) << " -> " << (grp.area.aluts - orig.area.aluts)
            << ", register overhead " << (asrt.area.registers - orig.area.registers) << " -> "
            << (grp.area.registers - orig.area.registers)
            << " (one checker wrapper + one failure channel for the whole process)\n\n";

  // Functional sanity: the characterized assert design actually decrypts.
  sim::ExternRegistry ext;
  sim::Simulator s(asrt.design, asrt.schedule, ext, {});
  std::string text = "FPGA in-circuit assertion-based verification.";
  std::vector<std::uint64_t> blocks = apps::des::pack_text(text);
  std::vector<std::uint64_t> cipher;
  for (std::uint64_t b : blocks) cipher.push_back(apps::des::triple_des_encrypt(b, kKeys));
  s.feed("des3.in", apps::des::to_word_stream(cipher));
  sim::RunResult r = s.run();
  std::cout << "functional check: decrypted " << s.received("des3.txt").size()
            << " characters in " << r.cycles << " cycles, "
            << (r.failures.empty() ? "no assertion failures" : "ASSERTION FAILURES") << "\n\n";
}

void BM_SynthesizeTripleDes(benchmark::State& state) {
  for (auto _ : state) {
    ir::Design d = compiled()->design.clone();
    benchmark::DoNotOptimize(assertions::synthesize(d, assertions::Options::optimized()));
  }
}
BENCHMARK(BM_SynthesizeTripleDes);

void BM_ScheduleTripleDes(benchmark::State& state) {
  ir::Design d = compiled()->design.clone();
  assertions::synthesize(d, assertions::Options::optimized());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_design(d, kDesSched));
  }
}
BENCHMARK(BM_ScheduleTripleDes);

void BM_SimulateDecryptBlock(benchmark::State& state) {
  ir::Design d = compiled()->design.clone();
  assertions::synthesize(d, assertions::Options::optimized());
  sched::DesignSchedule sch = sched::schedule_design(d, kDesSched);
  sim::ExternRegistry ext;
  std::vector<std::uint64_t> cipher = {
      apps::des::triple_des_encrypt(apps::des::pack_text("8 chars!")[0], kKeys)};
  for (auto _ : state) {
    sim::Simulator s(d, sch, ext, {});
    s.feed("des3.in", apps::des::to_word_stream(cipher));
    benchmark::DoNotOptimize(s.run());
  }
}
BENCHMARK(BM_SimulateDecryptBlock);

}  // namespace

int main(int argc, char** argv) {
  hlsav::bench::print_provenance_banner("bench_table1_tripledes");
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
