// Reproduces Figure 4: maximum clock frequency vs process count for the
// streaming-loopback application (original / unoptimized assertions /
// channel-shared "optimized" assertions).
//
// Paper anchor points: 128 processes -> original 190.6 MHz, unoptimized
// 154 MHz (-18.8%), optimized 189.3 MHz.
#include "bench/common.h"

#include "apps/loopback.h"

namespace {

using namespace hlsav;
using assertions::Options;

Options shared_only() {
  Options o;
  o.share_channels = true;  // Fig. 4/5 apply sharing to the channels only
  return o;
}

void print_fig4() {
  TextTable t("Figure 4: Assertion frequency scalability (Fmax, MHz)");
  t.header({"processes", "original", "unoptimized", "optimized (shared channels)",
            "unopt overhead %", "paper anchor"});
  for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    auto app = apps::loopback::build(n, 8);
    bench::Characterized orig = bench::characterize(app->design, Options::ndebug());
    bench::Characterized unopt = bench::characterize(app->design, Options::unoptimized());
    bench::Characterized opt = bench::characterize(app->design, shared_only());
    double ovh = 100.0 * (orig.timing.fmax_mhz - unopt.timing.fmax_mhz) / orig.timing.fmax_mhz;
    std::string anchor = n == 128 ? "190.6 / 154 / 189.3" : "";
    t.row({std::to_string(n), fmt_double(orig.timing.fmax_mhz, 1),
           fmt_double(unopt.timing.fmax_mhz, 1), fmt_double(opt.timing.fmax_mhz, 1),
           fmt_double(ovh, 1), anchor});
  }
  std::cout << t.render();
  std::cout << "paper: unoptimized assertions cost 18.8% Fmax at 128 processes; the\n"
               "channel-sharing optimization recovers it to within ~1% of the original.\n\n";
}

void BM_CharacterizeLoopback(benchmark::State& state) {
  unsigned n = static_cast<unsigned>(state.range(0));
  auto app = apps::loopback::build(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::characterize(app->design, Options::unoptimized()));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CharacterizeLoopback)->Arg(8)->Arg(32)->Arg(128)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  hlsav::bench::print_provenance_banner("bench_fig4_freq_scalability");
  print_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
