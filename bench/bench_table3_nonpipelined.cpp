// Reproduces Table 3: latency overhead of non-pipelined single-comparison
// assertions.
//
// The numbers are *emergent*: each micro-kernel is compiled, assertion-
// synthesized (unoptimized vs parallelized), scheduled, and the FSM
// states on the passing path are counted. Cycle counts are additionally
// cross-checked by actually running the cycle simulator.
#include "bench/common.h"

namespace {

using namespace hlsav;
using assertions::Options;

struct Kernel {
  const char* name;
  const char* paper_unopt;
  const char* paper_opt;
  std::string src;
  std::vector<std::uint64_t> feed;
};

std::vector<Kernel> kernels() {
  return {
      {"Scalar variable", "1", "0",
       R"(void k(stream_in<32> in, stream_out<32> out) {
            uint32 x;
            x = stream_read(in);
            uint32 y;
            y = x + 1;
            assert(x > 0);
            stream_write(out, y);
          })",
       {7}},
      {"Array (non-consecutive)", "1", "0",
       R"(void k(stream_in<32> in, stream_out<32> out) {
            uint32 b[8];
            uint32 c[8];
            uint32 x;
            x = stream_read(in);
            b[0] = x;
            c[0] = x;
            uint32 w;
            w = c[0] + 1;
            assert(b[1] >= 0);
            stream_write(out, w);
          })",
       {7}},
      {"Array (consecutive)", "2", "1",
       R"(void k(stream_in<32> in, stream_out<32> out) {
            uint32 b[8];
            uint32 x;
            x = stream_read(in);
            b[0] = x;
            assert(b[0] > 0);
            uint32 y;
            y = b[1];
            stream_write(out, y);
          })",
       {7}},
  };
}

struct Measured {
  unsigned states = 0;
  std::uint64_t sim_cycles = 0;
};

Measured measure(const std::string& src, const Options& opt) {
  auto app = apps::compile_app("t3", "t3.c", src);
  bench::Characterized c = bench::characterize(app->design, opt);
  Measured m;
  m.states = sched::passing_path_states(*c.design.find_process("k"), *c.schedule.find("k"));
  sim::ExternRegistry ext;
  sim::Simulator s(c.design, c.schedule, ext, {});
  s.feed("k.in", {7});
  sim::RunResult r = s.run();
  m.sim_cycles = r.cycles;
  return m;
}

void print_table3() {
  Options opt_parallel;
  opt_parallel.parallelize = true;  // Table 3 uses parallelization only

  TextTable t("Table 3: Non-pipelined single-comparison assertion latency overhead");
  t.header({"Assertion data structure", "Unoptimized (paper)", "Unoptimized (measured)",
            "Optimized (paper)", "Optimized (measured)", "sim-cycles orig/unopt/opt"});
  for (const Kernel& k : kernels()) {
    Measured base = measure(k.src, Options::ndebug());
    Measured unopt = measure(k.src, Options::unoptimized());
    Measured opt = measure(k.src, opt_parallel);
    t.row({k.name, k.paper_unopt, std::to_string(unopt.states - base.states), k.paper_opt,
           std::to_string(opt.states - base.states),
           std::to_string(base.sim_cycles) + "/" + std::to_string(unopt.sim_cycles) + "/" +
               std::to_string(opt.sim_cycles)});
  }
  std::cout << t.render() << '\n';
}

void BM_MeasureKernel(benchmark::State& state) {
  const Kernel k = kernels()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure(k.src, Options::unoptimized()));
  }
}
BENCHMARK(BM_MeasureKernel)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  hlsav::bench::print_provenance_banner("bench_table3_nonpipelined");
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
