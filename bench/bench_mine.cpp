// Mined-assertion economics bench: runs the full `hlsavc mine` pipeline
// (golden capture -> invariant mining -> per-candidate synthesis and
// fault-campaign scoring) over the paper's case studies and records what
// the trajectory tracking needs: how long mining takes, how many
// hypotheses survive the golden filter, the kill-rate uplift the best
// mined checker buys over the hand-written assertions, and what that
// checker costs in ALUTs and BRAM bits.
//
// Usage: bench_mine [--json <path>] [--quick] [--threads N]
#include "bench/common.h"

#include <sstream>

#include "apps/des.h"
#include "apps/edge.h"
#include "mine/miner.h"
#include "mine/score.h"
#include "trace/trace.h"

namespace {

using namespace hlsav;

// Buffered loopback: values cross a BRAM between the read loop and the
// write loop. The hand-written assert sees the words on the way in; only
// a mined bound on the read-back register can catch high-bit BRAM
// corruption, which is exactly the uplift this bench quantifies.
const char* kBufferedLoopback = R"(void loop(stream_in<32> in, stream_out<32> out) {
  uint32 buf[8];
  for (uint32 i = 0; i < 8; i++) {
    uint32 v = stream_read(in);
    assert(v > 0);
    buf[i & 7] = v;
  }
  for (uint32 j = 0; j < 8; j++) {
    uint32 w = buf[j & 7];
    stream_write(out, w);
  }
}
)";

struct Workload {
  std::string name;
  std::unique_ptr<apps::CompiledApp> app;
  sched::SchedOptions sched_opts;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
};

std::vector<Workload> workloads(bool quick) {
  std::vector<Workload> out;
  {
    Workload w;
    w.name = "loopback_buffered";
    w.app = apps::compile_app("mine_loopback", "loop.c", kBufferedLoopback);
    w.feeds = {{"loop.in", {1, 2, 3, 4, 5, 6, 7, 8}}};
    out.push_back(std::move(w));
  }
  {
    const std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                               0x456789ABCDEF0123ull};
    Workload w;
    w.name = "tripledes";
    w.app = apps::compile_app("triple_des", "des3.c", apps::des::hlsc_decrypt_source(keys));
    std::vector<std::uint64_t> cipher;
    for (std::uint64_t b : apps::des::pack_text("Fault campaign.")) {
      cipher.push_back(apps::des::triple_des_encrypt(b, keys));
    }
    w.sched_opts.chain_depth = 6;
    w.feeds = {{"des3.in", apps::des::to_word_stream(cipher)}};
    out.push_back(std::move(w));
  }
  {
    const unsigned iw = quick ? 16 : 32, ih = quick ? 12 : 24;
    Workload w;
    w.name = "edge_detect";
    w.app = apps::compile_app("edge_detect", "edge.c", apps::edge::hlsc_source(iw, ih));
    w.sched_opts.chain_depth = 16;
    w.feeds = {{"edge.in", apps::edge::to_word_stream(apps::img::synthetic_image(iw, ih, 7))}};
    out.push_back(std::move(w));
  }
  return out;
}

struct MineRow {
  std::string name;
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  std::size_t candidates = 0;
  std::size_t survivors = 0;
  double mine_seconds = 0.0;
  double score_seconds = 0.0;
  std::size_t baseline_sites = 0;
  std::size_t baseline_detected = 0;
  // Best survivor by the ranking metric (gain per area unit).
  bool has_best = false;
  mine::CandidateScore best;

  [[nodiscard]] double baseline_rate() const {
    return baseline_sites > 0
               ? static_cast<double>(baseline_detected) / static_cast<double>(baseline_sites)
               : 0.0;
  }
  /// Kill-rate uplift of the best mined checker: newly detected sites
  /// as a fraction of the baseline's classified site set.
  [[nodiscard]] double uplift() const {
    return has_best && baseline_sites > 0
               ? static_cast<double>(best.newly_detected) / static_cast<double>(baseline_sites)
               : 0.0;
  }
};

std::string row_json(const MineRow& r) {
  std::ostringstream os;
  os << "{\"name\": \"" << r.name << "\", \"records\": " << r.records
     << ", \"dropped\": " << r.dropped << ", \"candidates\": " << r.candidates
     << ", \"survivors\": " << r.survivors
     << ", \"mine_seconds\": " << fmt_double(r.mine_seconds, 4)
     << ", \"score_seconds\": " << fmt_double(r.score_seconds, 4)
     << ", \"baseline_sites\": " << r.baseline_sites
     << ", \"baseline_detected\": " << r.baseline_detected
     << ", \"baseline_rate\": " << fmt_double(r.baseline_rate(), 4)
     << ", \"kill_rate_uplift\": " << fmt_double(r.uplift(), 4);
  if (r.has_best) {
    os << ", \"best\": {\"text\": \"" << r.best.inv.text
       << "\", \"newly_detected\": " << r.best.newly_detected
       << ", \"newly_harmful\": " << r.best.newly_harmful
       << ", \"delta_aluts\": " << r.best.delta_aluts
       << ", \"delta_bram_bits\": " << r.best.delta_bram_bits
       << ", \"gain_per_cost\": " << fmt_double(r.best.gain_per_cost(), 4) << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_mine.json";
  bool quick = false;
  unsigned threads = 1;  // single worker: scoring campaigns stay deterministic AND cheap
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: bench_mine [--json <path>] [--quick] [--threads N]\n";
      return 2;
    }
  }
  bench::print_provenance_banner("bench_mine");

  using clock = std::chrono::steady_clock;
  sim::ExternRegistry externs;
  std::vector<MineRow> rows;
  for (Workload& w : workloads(quick)) {
    const ir::Design& lowered = w.app->design;
    sched::DesignSchedule schedule = sched::schedule_design(lowered, w.sched_opts);

    // Golden capture of the pre-synthesis design: the same window
    // `hlsavc mine` records before hypothesizing.
    trace::TraceConfig tc;
    tc.capacity = std::size_t{1} << 16;
    trace::TraceEngine engine(lowered, tc);
    sim::SimOptions so;
    so.mode = sim::SimMode::kSoftware;
    so.ela = &engine;
    sim::Simulator s(lowered, schedule, externs, so);
    for (const auto& [stream, values] : w.feeds) s.feed(stream, values);
    sim::RunResult golden = s.run();
    if (!golden.completed() || !golden.failures.empty()) {
      std::cerr << w.name << ": golden run did not complete cleanly; skipping\n";
      continue;
    }

    MineRow row;
    row.name = w.name;
    row.dropped = engine.dropped();
    std::vector<trace::TraceRecord> window = engine.window();

    auto t0 = clock::now();
    mine::MineResult mined = mine::mine_invariants(lowered, window);
    row.mine_seconds = std::chrono::duration<double>(clock::now() - t0).count();
    row.records = mined.records;
    row.candidates = mined.candidates.size();

    mine::ScoreOptions sopt;
    sopt.sched = w.sched_opts;
    sopt.threads = threads;
    // Scoring runs one fault campaign per survivor; cap the sweep so the
    // bigger designs stay benchable. The cap takes candidates in miner
    // order, which is deterministic, so the JSON is comparable PR to PR.
    sopt.max_candidates = quick ? 8 : 24;
    if (quick) sopt.max_faults = 24;
    auto t1 = clock::now();
    StatusOr<mine::ScoreReport> rep =
        mine::score_candidates(lowered, externs, w.feeds, mined.candidates, sopt);
    row.score_seconds = std::chrono::duration<double>(clock::now() - t1).count();
    if (!rep.ok()) {
      std::cerr << w.name << ": scoring failed: " << rep.status().to_string() << "\n";
      continue;
    }
    row.survivors = rep->survivors();
    row.baseline_sites = rep->baseline_sites;
    row.baseline_detected = rep->baseline_detected;
    if (!rep->ranked.empty() && rep->ranked.front().survived) {
      row.has_best = true;
      row.best = rep->ranked.front();
    }
    rows.push_back(std::move(row));

    std::cout << "\n== " << w.name << " ==\n" << rep->render();
  }

  TextTable t("Trace-mined assertion economics (best checker per workload)");
  t.header({"workload", "records", "cands", "survive", "base det", "new", "harmful", "uplift",
            "dALUT", "dBRAM", "mine s", "score s"});
  for (const MineRow& r : rows) {
    t.row({r.name, std::to_string(r.records), std::to_string(r.candidates),
           std::to_string(r.survivors),
           std::to_string(r.baseline_detected) + "/" + std::to_string(r.baseline_sites),
           r.has_best ? std::to_string(r.best.newly_detected) : "-",
           r.has_best ? std::to_string(r.best.newly_harmful) : "-",
           fmt_double(100.0 * r.uplift(), 1) + "%",
           r.has_best ? std::to_string(r.best.delta_aluts) : "-",
           r.has_best ? std::to_string(r.best.delta_bram_bits) : "-",
           fmt_double(r.mine_seconds, 3), fmt_double(r.score_seconds, 3)});
  }
  std::cout << "\n" << t.render();

  {
    bench::BenchJsonDoc doc(json_path, "mine", "workloads");
    for (const MineRow& r : rows) doc.item(row_json(r));
  }
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
