// Fault-injection campaign bench: sweeps the enumerated fault space of
// the paper's case studies and measures how much of it the synthesized
// in-circuit assertions detect, under both Unoptimized (per-process
// checkers) and Parallelized/optimized assertion synthesis. The paper
// argues assertions catch what software simulation cannot (§5); this
// harness quantifies the claim per assertion and per fault kind, and
// shows that assertion *placement* -- not just presence -- determines
// coverage (the two synthesis configs check the same conditions, yet
// classify faults differently cycle-by-cycle).
//
// It also reproduces the §5.1 hang-debugging workflow: when a fault
// stalls the stream network, the wait-for-graph detector localizes the
// hang to the blocked process and stream immediately (NABORT keeps any
// assertion reports flowing while the design is stuck).
//
// Usage: bench_fault_campaign [--json <path>] [--quick] [--threads N]
//                             [--progress] [--profile]
#include "bench/common.h"

#include <sstream>

#include "apps/des.h"
#include "apps/edge.h"
#include "apps/loopback.h"
#include "sim/campaign.h"

namespace {

using namespace hlsav;

struct PreparedSim {
  std::string name;
  std::string config;
  ir::Design design;
  sched::DesignSchedule schedule;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
};

struct CampaignRow {
  std::string name;
  std::string config;
  sim::CampaignReport report;
};

PreparedSim prepare(const std::string& name, const std::string& config,
                    const ir::Design& lowered, const assertions::Options& opt,
                    const sched::SchedOptions& sched_opts = {}) {
  PreparedSim p{name, config, lowered.clone(), {}, {}};
  assertions::synthesize(p.design, opt);
  ir::verify(p.design);
  p.schedule = sched::schedule_design(p.design, sched_opts);
  return p;
}

std::vector<PreparedSim> workloads(bool quick) {
  std::vector<PreparedSim> out;

  auto add_both = [&out](const std::string& name, const apps::CompiledApp& app,
                         const sched::SchedOptions& sched_opts,
                         std::map<std::string, std::vector<std::uint64_t>> feeds) {
    assertions::Options unopt = assertions::Options::unoptimized();
    assertions::Options opt = assertions::Options::optimized();
    out.push_back(prepare(name, "unoptimized", app.design, unopt, sched_opts));
    out.back().feeds = feeds;
    out.push_back(prepare(name, "parallelized", app.design, opt, sched_opts));
    out.back().feeds = std::move(feeds);
  };

  {
    const unsigned stages = 4, words = 16;
    auto app = apps::loopback::build(stages, words);
    std::vector<std::uint64_t> data(words);
    for (unsigned i = 0; i < words; ++i) data[i] = i + 1;  // all > 0: golden is clean
    add_both("loopback_n4", *app, {}, {{apps::loopback::input_stream(stages), data}});
  }
  {
    const std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                               0x456789ABCDEF0123ull};
    auto app = apps::compile_app("triple_des", "des3.c", apps::des::hlsc_decrypt_source(keys));
    std::vector<std::uint64_t> cipher;
    for (std::uint64_t b : apps::des::pack_text("Fault campaign.")) {
      cipher.push_back(apps::des::triple_des_encrypt(b, keys));
    }
    sched::SchedOptions sched_opts;
    sched_opts.chain_depth = 6;
    add_both("tripledes", *app, sched_opts,
             {{"des3.in", apps::des::to_word_stream(cipher)}});
  }
  {
    const unsigned w = quick ? 16 : 32, h = quick ? 12 : 24;
    auto app = apps::compile_app("edge_detect", "edge.c", apps::edge::hlsc_source(w, h));
    apps::img::Image input = apps::img::synthetic_image(w, h, 7);
    sched::SchedOptions sched_opts;
    sched_opts.chain_depth = 16;
    add_both("edge_detect", *app, sched_opts, {{"edge.in", apps::edge::to_word_stream(input)}});
  }
  return out;
}

/// Reruns one faulted variant verbatim and prints the hang report --
/// the §5.1 debugging workflow: the wait-for-graph names the stuck
/// process and stream instead of leaving the user with a dead board.
void show_hang_localization(const PreparedSim& p, const sim::FaultSpec& fault) {
  sim::ExternRegistry ext;
  sim::SimOptions so;
  so.mode = sim::SimMode::kHardware;
  so.faults.add(fault);
  sim::Simulator s(p.design, p.schedule, ext, so);
  for (const auto& [stream, values] : p.feeds) s.feed(stream, values);
  sim::RunResult r = s.run();
  std::cout << "hang localization (" << p.name << "/" << p.config << ", s" << fault.id << ": "
            << fault.describe(p.design) << "):\n"
            << r.hang_report;
}

void write_campaign_json(const std::string& path, const std::vector<CampaignRow>& rows) {
  bench::BenchJsonDoc doc(path, "fault_campaign", "campaigns");
  for (const CampaignRow& r : rows) {
    std::ostringstream os;
    os << "{\"name\": \"" << r.name << "\", \"config\": \"" << r.config
       << "\", \"threads\": " << r.report.threads << ", \"sites\": " << r.report.sites_total
       << ", \"run\": " << r.report.results.size()
       << ", \"benign\": " << r.report.count(sim::FaultOutcome::kBenign)
       << ", \"detected\": " << r.report.count(sim::FaultOutcome::kDetected)
       << ", \"silent_corruption\": " << r.report.count(sim::FaultOutcome::kSilentCorruption)
       << ", \"hang_detected\": " << r.report.count(sim::FaultOutcome::kHangDetected)
       << ", \"hang_timeout\": " << r.report.count(sim::FaultOutcome::kHangTimeout)
       << ", \"detection_rate\": " << fmt_double(r.report.detection_rate(), 4) << "}";
    doc.item(os.str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fault_campaign.json";
  bool quick = false;
  bool progress = false;
  bool profile = false;
  unsigned threads = 0;  // 0 = one worker per hardware thread
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--progress") {
      progress = true;  // heartbeat to stderr; stdout stays machine-clean
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: bench_fault_campaign [--json <path>] [--quick] [--threads N]\n"
                   "                            [--progress] [--profile]\n";
      return 2;
    }
  }
  bench::print_provenance_banner("bench_fault_campaign");

  sim::ExternRegistry ext;
  std::vector<PreparedSim> ws = workloads(quick);
  std::vector<CampaignRow> rows;
  for (const PreparedSim& p : ws) {
    sim::CampaignOptions copt;
    copt.threads = threads;
    copt.progress = progress;
    copt.profile = profile;
    if (quick) copt.max_faults = 12;  // seeded sample, site ids stay stable
    rows.push_back(
        {p.name, p.config, sim::run_campaign(p.design, p.schedule, ext, p.feeds, copt)});
  }
  if (!rows.empty()) {
    std::cout << "campaign workers: " << rows.front().report.threads << "\n";
  }

  TextTable t("Fault-injection campaigns (assertion coverage per synthesis config)");
  t.header({"workload", "config", "sites run", "benign", "detected", "silent", "hang-det",
            "hang-t/o", "det rate"});
  for (const CampaignRow& r : rows) {
    t.row({r.name, r.config,
           std::to_string(r.report.results.size()) + "/" + std::to_string(r.report.sites_total),
           std::to_string(r.report.count(sim::FaultOutcome::kBenign)),
           std::to_string(r.report.count(sim::FaultOutcome::kDetected)),
           std::to_string(r.report.count(sim::FaultOutcome::kSilentCorruption)),
           std::to_string(r.report.count(sim::FaultOutcome::kHangDetected)),
           std::to_string(r.report.count(sim::FaultOutcome::kHangTimeout)),
           fmt_double(100.0 * r.report.detection_rate(), 1) + "%"});
  }
  std::cout << t.render();

  // Per-assertion attribution for the paper's two table-driving apps,
  // in both configs: the placement-determines-coverage evidence.
  for (std::size_t i = 0; i < ws.size(); ++i) {
    if (ws[i].name == "loopback_n4") continue;  // summary row is enough
    std::cout << "\n== " << rows[i].name << " / " << rows[i].config << " ==\n"
              << rows[i].report.render(ws[i].design);
  }

  // Hang localization demo: first hang the campaign detected, replayed
  // with the wait-for-graph report (NABORT keeps reports flowing).
  for (std::size_t i = 0; i < ws.size(); ++i) {
    const sim::FaultResult* hang = nullptr;
    for (const sim::FaultResult& f : rows[i].report.results) {
      if (f.outcome == sim::FaultOutcome::kHangDetected) {
        hang = &f;
        break;
      }
    }
    if (hang != nullptr) {
      std::cout << "\n";
      show_hang_localization(ws[i], hang->site);
      break;
    }
  }

  write_campaign_json(json_path, rows);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
