// Campaign-service bench: what crash containment costs.
//
// The hlsavd supervisor runs a fault campaign as worker subprocesses
// with per-worker journal shards, so a segfaulting or wedged site can
// be contained instead of killing the sweep. Containment is not free:
// workers re-compile the design, every site is fsync'd, and a crash
// costs a respawn (backoff + re-compile + golden re-run). This harness
// prices all of it against the in-process runner on the same design:
//
//   * in-process        -- run_campaign, one process, no journal
//   * in-process+journal-- the fsync-per-site baseline
//   * service W=1/2/4   -- sharded supervisor, worker subprocesses
//   * service+crashes   -- same, with sites that SIGKILL their worker
//     (the --crash-at-site hook), measuring contained-recovery cost
//   * daemon watch=0/8  -- a live hlsavd daemon, the same job with no
//     watchers vs 8 concurrent `watch` subscribers, gating the
//     progress-fan-out overhead (ratio must stay under 4x -- generous
//     because VM wall clocks swing 2x on their own)
//   * daemon+spool      -- the same job with the write-ahead job spool
//     on (vs the --no-spool rows above), gating what the durable
//     accept promise costs: a handful of fsyncs per job, amortized
//     over the whole campaign (ratio must stay under 3x)
//
// Every service row is checked byte-identical against the in-process
// report -- the bench doubles as the determinism contract's stopwatch.
//
// Usage: bench_campaign_service [--json <path>] [--quick]
//                               [--hlsavd <path>] [--inner N]
#include "bench/common.h"

#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <thread>

#include "pipeline/compile.h"
#include "serve/client.h"
#include "serve/shard.h"
#include "sim/campaign.h"
#include "support/io.h"
#include "support/subprocess.h"

#ifndef HLSAVD_PATH
#define HLSAVD_PATH "hlsavd"
#endif

namespace {

using namespace hlsav;

struct ServiceRow {
  std::string config;
  double wall_ms = 0.0;
  unsigned workers = 0;
  unsigned respawns = 0;
  std::size_t quarantined = 0;
  std::size_t sites = 0;
  bool identical = true;  // byte-identical to the in-process report
};

/// The benched design: an inner compute loop makes each site run
/// hundreds of thousands of cycles, so per-site work dominates the
/// supervisor's bookkeeping the way a real campaign's would.
std::string design_source(unsigned inner) {
  std::ostringstream os;
  os << "void f(stream_in<32> in, stream_out<32> out) {\n"
     << "  for (uint32 i = 0; i < 8; i++) {\n"
     << "    uint32 v = stream_read(in);\n"
     << "    uint32 acc = 0;\n"
     << "    for (uint32 j = 0; j < " << inner << "; j++) {\n"
     << "      acc = acc + v;\n"
     << "    }\n"
     << "    assert(acc >= v);\n"
     << "    stream_write(out, acc);\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::string row_json(const ServiceRow& r) {
  std::ostringstream os;
  os << "{\"config\": \"" << r.config << "\", \"workers\": " << r.workers
     << ", \"wall_ms\": " << fmt_double(r.wall_ms, 2) << ", \"sites\": " << r.sites
     << ", \"respawns\": " << r.respawns << ", \"quarantined\": " << r.quarantined
     << ", \"byte_identical\": " << (r.identical ? "true" : "false") << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_campaign_service.json";
  std::string hlsavd = HLSAVD_PATH;
  bool quick = false;
  unsigned inner = 0;  // 0 = pick from quick
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--hlsavd" && i + 1 < argc) {
      hlsavd = argv[++i];
    } else if (arg == "--inner" && i + 1 < argc) {
      inner = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: bench_campaign_service [--json <path>] [--quick]\n"
                   "                              [--hlsavd <path>] [--inner N]\n";
      return 2;
    }
  }
  if (inner == 0) inner = quick ? 500 : 5000;
  bench::print_provenance_banner("bench_campaign_service");

  // Scratch area: design source, journals, shards, crash tokens.
  char tmpl[] = "/tmp/hlsav_bench_svc_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "cannot create scratch dir\n";
    return 1;
  }
  std::string design_path = std::string(dir) + "/bench_design.c";
  {
    Status st = write_file_atomic(design_path, design_source(inner));
    if (!st.ok()) {
      std::cerr << st.to_string() << "\n";
      return 1;
    }
  }

  serve::CampaignSpec spec;
  spec.design_path = design_path;
  spec.feeds = "f.in=1,2,3,4,5,6,7,8";
  spec.seed = 7;

  using clock = std::chrono::steady_clock;
  std::vector<ServiceRow> rows;

  // ---- in-process reference (no journal, then with journal) ----
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  StatusOr<pipeline::Compiled> compiled =
      pipeline::compile_file(sm, diags, design_path, {});
  if (!compiled.ok()) {
    std::cerr << diags.render() << compiled.status().to_string() << "\n";
    return 1;
  }
  StatusOr<std::map<std::string, std::vector<std::uint64_t>>> feeds =
      serve::parse_feed_spec(spec.feeds);
  if (!feeds.ok()) {
    std::cerr << feeds.status().to_string() << "\n";
    return 1;
  }

  sim::ExternRegistry externs;
  std::string reference;
  {
    sim::CampaignOptions copt;
    copt.seed = spec.seed;
    auto t0 = clock::now();
    sim::CampaignReport rep =
        sim::run_campaign(compiled->design, compiled->schedule, externs, *feeds, copt);
    auto t1 = clock::now();
    reference = rep.render(compiled->design);
    rows.push_back({"in-process", ms_between(t0, t1), 1, 0, 0, rep.results.size(), true});
  }
  {
    sim::CampaignOptions copt;
    copt.seed = spec.seed;
    copt.journal = std::string(dir) + "/inproc.jsonl";
    auto t0 = clock::now();
    sim::CampaignReport rep =
        sim::run_campaign(compiled->design, compiled->schedule, externs, *feeds, copt);
    auto t1 = clock::now();
    rows.push_back({"in-process+journal", ms_between(t0, t1), 1, 0, 0, rep.results.size(),
                    rep.render(compiled->design) == reference});
  }

  // ---- sharded service path at several worker counts ----
  auto run_service = [&](const std::string& config, unsigned workers,
                         std::vector<std::uint32_t> crash_at) {
    std::string job_dir = std::string(dir) + "/" + config;
    ::mkdir(job_dir.c_str(), 0755);
    serve::CampaignSpec s = spec;
    s.crash_at = std::move(crash_at);
    serve::SupervisorOptions sup;
    sup.worker_binary = hlsavd;
    sup.job_dir = job_dir;
    sup.workers = workers;
    sup.backoff_base_ms = 1;
    sup.backoff_cap_ms = 20;
    auto t0 = clock::now();
    StatusOr<serve::SupervisedResult> res = serve::run_sharded_campaign(s, sup);
    auto t1 = clock::now();
    if (!res.ok()) {
      std::cerr << config << ": " << res.status().to_string() << "\n";
      return;
    }
    // With crash sites the report legitimately differs only if a site
    // was quarantined (kept out of these runs); otherwise every config
    // must reproduce the reference byte for byte.
    rows.push_back({config, ms_between(t0, t1), workers, res->respawns,
                    res->quarantined.size(), res->report.results.size(),
                    res->rendered == reference});
  };

  run_service("service-w1", 1, {});
  run_service("service-w2", 2, {});
  run_service("service-w4", 4, {});
  run_service("service-w2-crash2", 2, {2, 5});  // two contained worker kills

  // ---- watcher fan-out overhead against a live daemon ----
  // The same job through a real hlsavd daemon: once with nobody
  // watching, once with 8 concurrent subscribers draining the full
  // frame stream. The delta prices ProgressHub fan-out + the watcher
  // send threads; byte-identity of every watcher's report is checked
  // against the in-process reference.
  double watch0_ms = 0.0, watch8_ms = 0.0;
  auto run_daemon = [&](const std::string& config, unsigned n_watchers, double& wall_out,
                        std::vector<std::string> extra_flags) {
    std::string sock = std::string(dir) + "/" + config + ".sock";
    std::string work = std::string(dir) + "/" + config + ".work";
    std::vector<std::string> argv = {hlsavd, "serve", "--socket=" + sock, "--work-dir=" + work};
    for (std::string& f : extra_flags) argv.push_back(std::move(f));
    StatusOr<Subprocess> daemon = Subprocess::spawn(argv, /*capture_stdout=*/false);
    if (!daemon.ok()) {
      std::cerr << config << ": " << daemon.status().to_string() << "\n";
      return;
    }
    for (int i = 0; i < 500 && ::access(sock.c_str(), F_OK) != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    std::vector<std::thread> watchers;
    std::vector<std::string> watch_outs(n_watchers);
    std::vector<int> watch_rcs(n_watchers, -1);
    for (unsigned w = 0; w < n_watchers; ++w) {
      watch_outs[w] = std::string(dir) + "/" + config + ".watch" + std::to_string(w);
      watchers.emplace_back([&, w] {
        serve::WatchOptions wopt;
        wopt.wait_ms = 10'000;
        wopt.quiet = true;
        wopt.out_path = watch_outs[w];
        watch_rcs[w] = serve::watch_job(sock, 1, wopt);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    serve::CampaignSpec s = spec;
    s.workers = 2;
    std::string out = std::string(dir) + "/" + config + ".report";
    auto t0 = clock::now();
    int rc = serve::submit_job(sock, s, out, /*quiet=*/true);
    auto t1 = clock::now();
    for (std::thread& t : watchers) t.join();
    (void)serve::request_shutdown(sock);
    (void)daemon->wait();
    if (rc != 0) {
      std::cerr << config << ": submit failed with rc " << rc << "\n";
      return;
    }
    wall_out = ms_between(t0, t1);

    bool identical = slurp(out) == reference;
    unsigned ok_watchers = 0;
    for (unsigned w = 0; w < n_watchers; ++w) {
      if (watch_rcs[w] == 0 && slurp(watch_outs[w]) == reference) ++ok_watchers;
    }
    identical = identical && ok_watchers == n_watchers;
    ServiceRow row{config, wall_out, 2, 0, 0, 0, identical};
    // Sites from the reference row: the daemon path reports the same sweep.
    row.sites = rows.front().sites;
    rows.push_back(row);
  };
  // --no-spool on the watcher rows keeps them measuring exactly what
  // they always did: fan-out cost, nothing else.
  run_daemon("daemon-w2-watch0", 0, watch0_ms, {"--no-spool"});
  run_daemon("daemon-w2-watch8", 8, watch8_ms, {"--no-spool"});
  double watcher_overhead = watch0_ms > 0 ? watch8_ms / watch0_ms : 0.0;
  // Generous gate: VM wall clocks alone swing ~2x; fan-out to 8
  // never-blocking buffers should be lost in the noise, so 4x means a
  // real regression (publish blocking on subscriber I/O, say).
  constexpr double kWatcherOverheadGate = 4.0;
  bool watcher_overhead_ok = watch0_ms == 0.0 || watcher_overhead < kWatcherOverheadGate;

  // ---- write-ahead spool overhead ----
  // Same daemon, same job, spool on (the serve default): the accept
  // path gains an atomic header write + two directory/entry fsyncs and
  // each state transition one more. Against a whole campaign that must
  // stay in the noise; 3x catches a real regression (an fsync per
  // frame, say) while ignoring VM clock swing.
  double spool_ms = 0.0;
  run_daemon("daemon-w2-spool", 0, spool_ms, {});
  double spool_overhead = watch0_ms > 0 ? spool_ms / watch0_ms : 0.0;
  constexpr double kSpoolOverheadGate = 3.0;
  bool spool_overhead_ok =
      watch0_ms == 0.0 || spool_ms == 0.0 || spool_overhead < kSpoolOverheadGate;

  // ---- report ----
  TextTable t("Campaign service: crash-containment cost (" +
              std::to_string(rows.front().sites) + " sites, inner=" + std::to_string(inner) +
              ")");
  t.header({"config", "workers", "wall ms", "respawns", "quarantined", "identical"});
  for (const ServiceRow& r : rows) {
    t.row({r.config, std::to_string(r.workers), fmt_double(r.wall_ms, 1),
           std::to_string(r.respawns), std::to_string(r.quarantined),
           r.identical ? "yes" : "NO"});
  }
  std::cout << t.render();

  std::cout << "watcher overhead (8 subscribers vs 0): " << fmt_double(watcher_overhead, 2)
            << "x (gate " << fmt_double(kWatcherOverheadGate, 1) << "x)\n";
  std::cout << "spool overhead (write-ahead spool vs --no-spool): "
            << fmt_double(spool_overhead, 2) << "x (gate " << fmt_double(kSpoolOverheadGate, 1)
            << "x)\n";

  bool all_identical = true;
  for (const ServiceRow& r : rows) all_identical = all_identical && r.identical;
  if (!all_identical) {
    std::cerr << "BYTE-IDENTITY VIOLATION: a service run diverged from the in-process "
                 "report\n";
  }
  if (!watcher_overhead_ok) {
    std::cerr << "WATCHER OVERHEAD VIOLATION: 8 subscribers cost "
              << fmt_double(watcher_overhead, 2) << "x (gate "
              << fmt_double(kWatcherOverheadGate, 1) << "x)\n";
  }
  if (!spool_overhead_ok) {
    std::cerr << "SPOOL OVERHEAD VIOLATION: the write-ahead spool cost "
              << fmt_double(spool_overhead, 2) << "x (gate "
              << fmt_double(kSpoolOverheadGate, 1) << "x)\n";
  }

  {
    bench::BenchJsonDoc doc(json_path, "campaign_service", "configs");
    for (const ServiceRow& r : rows) doc.item(row_json(r));
    doc.field("byte_identical", all_identical ? "true" : "false");
    doc.field("watcher_overhead", fmt_double(watcher_overhead, 3));
    doc.field("watcher_overhead_gate", fmt_double(kWatcherOverheadGate, 1));
    doc.field("spool_overhead", fmt_double(spool_overhead, 3));
    doc.field("spool_overhead_gate", fmt_double(kSpoolOverheadGate, 1));
  }
  std::cout << "wrote " << json_path << "\n";
  return all_identical && watcher_overhead_ok && spool_overhead_ok ? 0 : 1;
}
