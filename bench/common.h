// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench binary prints the paper's table/figure rows side by side
// with the values measured from this implementation, then runs a few
// google-benchmark timings of the underlying machinery (synthesis,
// scheduling, simulation throughput).
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "apps/appbuild.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "fpga/area.h"
#include "fpga/device.h"
#include "fpga/timing.h"
#include "rtl/netlist.h"
#include "sched/schedule.h"
#include "sim/simulator.h"
#include "support/table.h"

namespace hlsav::bench {

/// One synthesized + characterized configuration of a design.
struct Characterized {
  ir::Design design;
  assertions::SynthesisReport synth;
  sched::DesignSchedule schedule;
  rtl::Netlist netlist;
  fpga::AreaReport area;
  fpga::TimingReport timing;
};

inline Characterized characterize(const ir::Design& lowered, const assertions::Options& opt,
                                  const sched::SchedOptions& sched_opts = {}) {
  Characterized c{lowered.clone(), {}, {}, {}, {}, {}};
  c.synth = assertions::synthesize(c.design, opt);
  ir::verify(c.design);
  c.schedule = sched::schedule_design(c.design, sched_opts);
  c.netlist = rtl::build_netlist(c.design, c.schedule);
  c.area = fpga::estimate_area(c.netlist);
  c.timing = fpga::estimate_fmax(c.netlist, fpga::Device::ep2s180());
  return c;
}

/// Renders an overhead table in the exact shape of the paper's
/// Tables 1-2: Original / Assert / Overhead columns per resource row.
inline std::string overhead_table(const std::string& title, const Characterized& original,
                                  const Characterized& assert_cfg) {
  const fpga::Device dev = fpga::Device::ep2s180();
  TextTable t(title);
  t.header({"EP2S180", "Original", "Assert", "Overhead"});
  auto row = [&t, &dev](const std::string& name, std::uint64_t total, std::uint64_t a,
                        std::uint64_t b) {
    double pa = 100.0 * static_cast<double>(a) / static_cast<double>(total);
    double pb = 100.0 * static_cast<double>(b) / static_cast<double>(total);
    t.row({name, fmt_count_pct(static_cast<long long>(a), pa),
           fmt_count_pct(static_cast<long long>(b), pb),
           fmt_overhead(static_cast<long long>(b) - static_cast<long long>(a), pb - pa)});
  };
  row("Logic Used (of " + std::to_string(dev.logic) + ")", dev.logic, original.area.logic,
      assert_cfg.area.logic);
  row("Comb. ALUT (of " + std::to_string(dev.aluts) + ")", dev.aluts, original.area.aluts,
      assert_cfg.area.aluts);
  row("Registers (of " + std::to_string(dev.registers) + ")", dev.registers,
      original.area.registers, assert_cfg.area.registers);
  row("Block RAM bits (of " + std::to_string(dev.bram_bits) + ")", dev.bram_bits,
      original.area.bram_bits, assert_cfg.area.bram_bits);
  row("Block interconnect (of " + std::to_string(dev.interconnect) + ")", dev.interconnect,
      original.area.interconnect, assert_cfg.area.interconnect);
  double fa = original.timing.fmax_mhz;
  double fb = assert_cfg.timing.fmax_mhz;
  t.row({"Frequency (MHz)", fmt_double(fa, 1), fmt_double(fb, 1),
         fmt_double(fb - fa, 1) + " (" + fmt_double(100.0 * (fb - fa) / fa, 2) + "%)"});
  return t.render();
}

}  // namespace hlsav::bench
