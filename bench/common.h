// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench binary prints the paper's table/figure rows side by side
// with the values measured from this implementation, then runs a few
// google-benchmark timings of the underlying machinery (synthesis,
// scheduling, simulation throughput).
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/appbuild.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "fpga/area.h"
#include "fpga/device.h"
#include "fpga/timing.h"
#include "rtl/netlist.h"
#include "sched/schedule.h"
#include "sim/simulator.h"
#include "support/table.h"

// Build provenance stamped into every BENCH_*.json so perf-trajectory
// points are attributable to a commit and build flavour. The macros are
// injected by bench/CMakeLists.txt; the fallbacks keep non-CMake builds
// compiling.
#ifndef HLSAV_GIT_SHA
#define HLSAV_GIT_SHA "unknown"
#endif
#ifndef HLSAV_BUILD_TYPE
#define HLSAV_BUILD_TYPE "unspecified"
#endif

namespace hlsav::bench {

/// The `"git_sha": ..., "build_type": ...` JSON fragment shared by all
/// bench JSON writers.
inline std::string json_provenance() {
  std::string s = "\"git_sha\": \"";
  s += HLSAV_GIT_SHA;
  s += "\", \"build_type\": \"";
  s += HLSAV_BUILD_TYPE;
  s += "\"";
  return s;
}

/// One synthesized + characterized configuration of a design.
struct Characterized {
  ir::Design design;
  assertions::SynthesisReport synth;
  sched::DesignSchedule schedule;
  rtl::Netlist netlist;
  fpga::AreaReport area;
  fpga::TimingReport timing;
};

inline Characterized characterize(const ir::Design& lowered, const assertions::Options& opt,
                                  const sched::SchedOptions& sched_opts = {}) {
  Characterized c{lowered.clone(), {}, {}, {}, {}, {}};
  c.synth = assertions::synthesize(c.design, opt);
  ir::verify(c.design);
  c.schedule = sched::schedule_design(c.design, sched_opts);
  c.netlist = rtl::build_netlist(c.design, c.schedule);
  c.area = fpga::estimate_area(c.netlist);
  c.timing = fpga::estimate_fmax(c.netlist, fpga::Device::ep2s180());
  return c;
}

/// Renders an overhead table in the exact shape of the paper's
/// Tables 1-2: Original / Assert / Overhead columns per resource row.
inline std::string overhead_table(const std::string& title, const Characterized& original,
                                  const Characterized& assert_cfg) {
  const fpga::Device dev = fpga::Device::ep2s180();
  TextTable t(title);
  t.header({"EP2S180", "Original", "Assert", "Overhead"});
  auto row = [&t, &dev](const std::string& name, std::uint64_t total, std::uint64_t a,
                        std::uint64_t b) {
    double pa = 100.0 * static_cast<double>(a) / static_cast<double>(total);
    double pb = 100.0 * static_cast<double>(b) / static_cast<double>(total);
    t.row({name, fmt_count_pct(static_cast<long long>(a), pa),
           fmt_count_pct(static_cast<long long>(b), pb),
           fmt_overhead(static_cast<long long>(b) - static_cast<long long>(a), pb - pa)});
  };
  row("Logic Used (of " + std::to_string(dev.logic) + ")", dev.logic, original.area.logic,
      assert_cfg.area.logic);
  row("Comb. ALUT (of " + std::to_string(dev.aluts) + ")", dev.aluts, original.area.aluts,
      assert_cfg.area.aluts);
  row("Registers (of " + std::to_string(dev.registers) + ")", dev.registers,
      original.area.registers, assert_cfg.area.registers);
  row("Block RAM bits (of " + std::to_string(dev.bram_bits) + ")", dev.bram_bits,
      original.area.bram_bits, assert_cfg.area.bram_bits);
  row("Block interconnect (of " + std::to_string(dev.interconnect) + ")", dev.interconnect,
      original.area.interconnect, assert_cfg.area.interconnect);
  double fa = original.timing.fmax_mhz;
  double fb = assert_cfg.timing.fmax_mhz;
  t.row({"Frequency (MHz)", fmt_double(fa, 1), fmt_double(fb, 1),
         fmt_double(fb - fa, 1) + " (" + fmt_double(100.0 * (fb - fa) / fa, 2) + "%)"});
  return t.render();
}

// ------------------------------------------------- simulation timing --

/// Wall-clock throughput of one simulated workload: how many FSMD cycles
/// the simulator chews through per second of host time. This is the
/// number the perf-trajectory tracking (BENCH_sim.json) records per PR.
struct SimThroughput {
  std::string name;
  std::uint64_t runs = 0;
  std::uint64_t cycles_per_run = 0;  // RunResult::cycles of one run
  double wall_seconds = 0.0;

  [[nodiscard]] double cycles_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(runs) * static_cast<double>(cycles_per_run) / wall_seconds
               : 0.0;
  }
};

/// Times `run_once` (which must return the RunResult::cycles of the run)
/// until `min_seconds` of wall clock accumulate, with at least
/// `min_runs` runs. The first call is a discarded warm-up.
template <typename F>
SimThroughput time_simulation(const std::string& name, F&& run_once, double min_seconds = 0.5,
                              std::uint64_t min_runs = 3) {
  using clock = std::chrono::steady_clock;
  SimThroughput t;
  t.name = name;
  t.cycles_per_run = run_once();  // warm-up, also pins the cycle count
  auto start = clock::now();
  while (true) {
    std::uint64_t cycles = run_once();
    ++t.runs;
    if (cycles != t.cycles_per_run) {
      std::cerr << "WARNING: " << name << " cycle count not reproducible (" << cycles << " vs "
                << t.cycles_per_run << ")\n";
    }
    t.wall_seconds = std::chrono::duration<double>(clock::now() - start).count();
    if (t.wall_seconds >= min_seconds && t.runs >= min_runs) break;
  }
  return t;
}

/// Writes the per-workload throughput numbers as a small JSON document
/// (schema documented in README.md, "Simulator throughput bench").
inline void write_bench_json(const std::string& path, const std::string& bench_name,
                             const std::vector<SimThroughput>& results) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"" << bench_name << "\",\n  " << json_provenance()
     << ",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SimThroughput& t = results[i];
    os << "    {\"name\": \"" << t.name << "\", \"runs\": " << t.runs
       << ", \"cycles_per_run\": " << t.cycles_per_run << ", \"wall_seconds\": "
       << fmt_double(t.wall_seconds, 4) << ", \"cycles_per_sec\": "
       << fmt_double(t.cycles_per_sec(), 1) << "}" << (i + 1 < results.size() ? "," : "")
       << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace hlsav::bench
