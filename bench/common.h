// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench binary prints the paper's table/figure rows side by side
// with the values measured from this implementation, then runs a few
// google-benchmark timings of the underlying machinery (synthesis,
// scheduling, simulation throughput).
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/appbuild.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "fpga/area.h"
#include "fpga/device.h"
#include "fpga/timing.h"
#include "rtl/netlist.h"
#include "sched/schedule.h"
#include "sim/simulator.h"
#include "support/io.h"
#include "support/table.h"

// Build provenance stamped into every BENCH_*.json so perf-trajectory
// points are attributable to a commit and build flavour. The macros are
// injected by bench/CMakeLists.txt; the fallbacks keep non-CMake builds
// compiling.
#ifndef HLSAV_GIT_SHA
#define HLSAV_GIT_SHA "unknown"
#endif
#ifndef HLSAV_BUILD_TYPE
#define HLSAV_BUILD_TYPE "unspecified"
#endif

namespace hlsav::bench {

/// The `"git_sha": ..., "build_type": ...` JSON fragment shared by all
/// bench JSON writers.
inline std::string json_provenance() {
  std::string s = "\"git_sha\": \"";
  s += HLSAV_GIT_SHA;
  s += "\", \"build_type\": \"";
  s += HLSAV_BUILD_TYPE;
  s += "\"";
  return s;
}

/// "<bench> @ <sha> (<build>)" header every bench main prints first, so
/// captured stdout is attributable to a commit without the JSON file.
inline void print_provenance_banner(const std::string& bench_name) {
  std::cout << bench_name << " @ " << HLSAV_GIT_SHA << " (" << HLSAV_BUILD_TYPE << ")\n";
}

/// Streams the framing shared by every BENCH_*.json document:
///   { "bench": <name>, <provenance>, "<array>": [ <items>... ], <fields>... }
/// Items and field values are preformatted JSON; the writer owns only
/// the commas, indentation, and braces every harness used to hand-roll.
///
/// The document is buffered in memory and written atomically (temp
/// sibling + rename, support/io.h) when the writer goes out of scope: a
/// bench process killed mid-run leaves the previous BENCH_*.json, never
/// half a document.
class BenchJsonDoc {
 public:
  BenchJsonDoc(std::string path, const std::string& bench_name, const std::string& array_name)
      : path_(std::move(path)) {
    os_ << "{\n  \"bench\": \"" << bench_name << "\",\n  " << json_provenance() << ",\n  \""
        << array_name << "\": [\n";
  }
  BenchJsonDoc(const BenchJsonDoc&) = delete;
  BenchJsonDoc& operator=(const BenchJsonDoc&) = delete;
  ~BenchJsonDoc() {
    close_array();
    os_ << "\n}\n";
    Status st = write_file_atomic(path_, os_.str());
    if (!st.ok()) std::cerr << "bench json write failed: " << st.to_string() << "\n";
  }

  /// One element of the main array (a complete JSON value).
  void item(const std::string& json) {
    os_ << (first_item_ ? "" : ",\n") << "    " << json;
    first_item_ = false;
  }
  /// An extra top-level field, emitted after the array.
  void field(const std::string& name, const std::string& json) {
    close_array();
    os_ << ",\n  \"" << name << "\": " << json;
  }

 private:
  void close_array() {
    if (array_closed_) return;
    os_ << "\n  ]";
    array_closed_ = true;
  }

  std::string path_;
  std::ostringstream os_;
  bool first_item_ = true;
  bool array_closed_ = false;
};

/// One synthesized + characterized configuration of a design.
struct Characterized {
  ir::Design design;
  assertions::SynthesisReport synth;
  sched::DesignSchedule schedule;
  rtl::Netlist netlist;
  fpga::AreaReport area;
  fpga::TimingReport timing;
};

inline Characterized characterize(const ir::Design& lowered, const assertions::Options& opt,
                                  const sched::SchedOptions& sched_opts = {}) {
  Characterized c{lowered.clone(), {}, {}, {}, {}, {}};
  c.synth = assertions::synthesize(c.design, opt);
  ir::verify(c.design);
  c.schedule = sched::schedule_design(c.design, sched_opts);
  c.netlist = rtl::build_netlist(c.design, c.schedule);
  c.area = fpga::estimate_area(c.netlist);
  c.timing = fpga::estimate_fmax(c.netlist, fpga::Device::ep2s180());
  return c;
}

/// Renders an overhead table in the exact shape of the paper's
/// Tables 1-2: Original / Assert / Overhead columns per resource row.
inline std::string overhead_table(const std::string& title, const Characterized& original,
                                  const Characterized& assert_cfg) {
  const fpga::Device dev = fpga::Device::ep2s180();
  TextTable t(title);
  t.header({"EP2S180", "Original", "Assert", "Overhead"});
  auto row = [&t, &dev](const std::string& name, std::uint64_t total, std::uint64_t a,
                        std::uint64_t b) {
    double pa = 100.0 * static_cast<double>(a) / static_cast<double>(total);
    double pb = 100.0 * static_cast<double>(b) / static_cast<double>(total);
    t.row({name, fmt_count_pct(static_cast<long long>(a), pa),
           fmt_count_pct(static_cast<long long>(b), pb),
           fmt_overhead(static_cast<long long>(b) - static_cast<long long>(a), pb - pa)});
  };
  row("Logic Used (of " + std::to_string(dev.logic) + ")", dev.logic, original.area.logic,
      assert_cfg.area.logic);
  row("Comb. ALUT (of " + std::to_string(dev.aluts) + ")", dev.aluts, original.area.aluts,
      assert_cfg.area.aluts);
  row("Registers (of " + std::to_string(dev.registers) + ")", dev.registers,
      original.area.registers, assert_cfg.area.registers);
  row("Block RAM bits (of " + std::to_string(dev.bram_bits) + ")", dev.bram_bits,
      original.area.bram_bits, assert_cfg.area.bram_bits);
  row("Block interconnect (of " + std::to_string(dev.interconnect) + ")", dev.interconnect,
      original.area.interconnect, assert_cfg.area.interconnect);
  double fa = original.timing.fmax_mhz;
  double fb = assert_cfg.timing.fmax_mhz;
  t.row({"Frequency (MHz)", fmt_double(fa, 1), fmt_double(fb, 1),
         fmt_double(fb - fa, 1) + " (" + fmt_double(100.0 * (fb - fa) / fa, 2) + "%)"});
  return t.render();
}

// ------------------------------------------------- simulation timing --

/// Wall-clock throughput of one simulated workload: how many FSMD cycles
/// the simulator chews through per second of host time. This is the
/// number the perf-trajectory tracking (BENCH_sim.json) records per PR.
struct SimThroughput {
  std::string name;
  std::uint64_t runs = 0;
  std::uint64_t cycles_per_run = 0;  // RunResult::cycles of one run
  double wall_seconds = 0.0;

  [[nodiscard]] double cycles_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(runs) * static_cast<double>(cycles_per_run) / wall_seconds
               : 0.0;
  }
};

/// Times `run_once` (which must return the RunResult::cycles of the run)
/// until `min_seconds` of wall clock accumulate, with at least
/// `min_runs` runs. The first call is a discarded warm-up. With
/// `best_of > 1` the whole measurement repeats and the fastest window
/// wins: a loaded host only ever slows a window down, so the max is the
/// noise-robust estimate (what the CI throughput guard compares).
template <typename F>
SimThroughput time_simulation(const std::string& name, F&& run_once, double min_seconds = 0.5,
                              std::uint64_t min_runs = 3, unsigned best_of = 1) {
  using clock = std::chrono::steady_clock;
  SimThroughput best;
  for (unsigned rep = 0; rep == 0 || rep < best_of; ++rep) {
    SimThroughput t;
    t.name = name;
    t.cycles_per_run = run_once();  // warm-up, also pins the cycle count
    auto start = clock::now();
    while (true) {
      std::uint64_t cycles = run_once();
      ++t.runs;
      if (cycles != t.cycles_per_run) {
        std::cerr << "WARNING: " << name << " cycle count not reproducible (" << cycles << " vs "
                  << t.cycles_per_run << ")\n";
      }
      t.wall_seconds = std::chrono::duration<double>(clock::now() - start).count();
      if (t.wall_seconds >= min_seconds && t.runs >= min_runs) break;
    }
    if (rep == 0 || t.cycles_per_sec() > best.cycles_per_sec()) best = t;
  }
  return best;
}

/// One throughput result as the JSON object write_bench_json emits.
inline std::string throughput_json(const SimThroughput& t) {
  std::string s = "{\"name\": \"" + t.name + "\", \"runs\": " + std::to_string(t.runs) +
                  ", \"cycles_per_run\": " + std::to_string(t.cycles_per_run) +
                  ", \"wall_seconds\": " + fmt_double(t.wall_seconds, 4) +
                  ", \"cycles_per_sec\": " + fmt_double(t.cycles_per_sec(), 1) + "}";
  return s;
}

/// Writes the per-workload throughput numbers as a small JSON document
/// (schema documented in README.md, "Simulator throughput bench").
/// `profile_json`, when non-empty, is embedded as a top-level "profile"
/// field (a ProfileReport::to_json() object).
/// `speedup_json`, when non-empty, is embedded as a top-level
/// "compiled_speedup" field (per-workload compiled/interpreter
/// cycles-per-sec ratios plus their geomean; see bench_sim_throughput
/// --engine=both).
inline void write_bench_json(const std::string& path, const std::string& bench_name,
                             const std::vector<SimThroughput>& results,
                             const std::string& profile_json = "",
                             const std::string& speedup_json = "") {
  BenchJsonDoc doc(path, bench_name, "workloads");
  for (const SimThroughput& t : results) doc.item(throughput_json(t));
  if (!profile_json.empty()) doc.field("profile", profile_json);
  if (!speedup_json.empty()) doc.field("compiled_speedup", speedup_json);
}

/// Reads the workload name -> cycles/sec map back out of a BENCH_*.json
/// written by write_bench_json. Line-oriented scan: the writer above
/// controls the shape (one workload object per line), so no general
/// JSON parser is needed here.
inline std::map<std::string, double> read_bench_workloads(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) {
    std::size_t n = line.find("\"name\": \"");
    std::size_t c = line.find("\"cycles_per_sec\": ");
    if (n == std::string::npos || c == std::string::npos) continue;
    n += 9;
    std::size_t ne = line.find('"', n);
    if (ne == std::string::npos) continue;
    out[line.substr(n, ne - n)] = std::stod(line.substr(c + 18));
  }
  return out;
}

}  // namespace hlsav::bench
