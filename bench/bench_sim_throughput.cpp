// Simulator throughput harness: measures cycles-simulated/sec of the
// cycle-accurate FSMD simulator across the reproduction's workloads and
// writes BENCH_sim.json so the perf trajectory is tracked across PRs.
//
// Workloads:
//  * the Fig. 4/5 streaming-loopback chain at 1..128 processes
//    (optimized assertion synthesis, the paper's recommended config,
//    plus the unoptimized per-process-checker config at 128), and
//  * the Table 1/2 application pipelines: Triple-DES decrypt and the
//    5x5-window edge detector.
//
// The "_prof" rows re-run a workload with the cycle-attribution
// profiler armed, so the armed overhead is measured alongside; the
// disabled-profiler rows are the ones --compare guards.
//
// --engine selects which simulation engine(s) to measure: the
// interpreter (default, what --compare baselines were recorded with),
// the AOT-compiled backend (rows named "<workload>_compiled"), or both.
// With both, the per-workload compiled/interpreter speedups and their
// geomean are printed and embedded in BENCH_sim.json as a top-level
// "compiled_speedup" field.
//
// Usage: bench_sim_throughput [--json <path>] [--quick] [--best-of N]
//                             [--engine interpreter|compiled|both]
//                             [--compare <baseline.json> [--tolerance <pct>]]
#include "bench/common.h"

#include <cmath>
#include <optional>

#include "apps/des.h"
#include "apps/edge.h"
#include "apps/loopback.h"
#include "codegen/engine.h"
#include "metrics/profile.h"

namespace {

using namespace hlsav;
using bench::SimThroughput;

/// Timing windows per workload; the fastest wins (see time_simulation).
/// The CI guard runs --best-of 3 so host-load noise cannot trip the
/// throughput tolerance.
unsigned g_best_of = 1;

struct PreparedSim {
  ir::Design design;
  sched::DesignSchedule schedule;
};

PreparedSim prepare(const ir::Design& lowered, const assertions::Options& opt,
                    const sched::SchedOptions& sched_opts = {}) {
  PreparedSim p{lowered.clone(), {}};
  assertions::synthesize(p.design, opt);
  ir::verify(p.design);
  p.schedule = sched::schedule_design(p.design, sched_opts);
  return p;
}

/// A fresh armed Profiler per run when `profiled` (the same lifetime
/// `hlsavc profile` gives it), no profiler at all otherwise. When `cd`
/// is non-null the compiled engine runs the workload (profiled and
/// compiled are never combined: an armed profiler makes the compiled
/// engine decline, see Simulator::init_engine).
sim::SimOptions sim_options(const PreparedSim& p, bool profiled,
                            std::optional<metrics::Profiler>& prof,
                            const codegen::CompiledDesign* cd = nullptr) {
  sim::SimOptions so;
  if (profiled) {
    prof.emplace(p.design, p.schedule);
    so.profile = &*prof;
  }
  if (cd != nullptr) {
    so.engine = sim::SimEngine::kCompiled;
    so.compiled = cd->handle();
  }
  return so;
}

/// AOT-compiles the prepared design for a "<name>_compiled" row.
/// Returns null (with a note on stderr) when no host compiler is
/// available or codegen declines -- the bench then simply omits the
/// compiled row instead of failing.
std::unique_ptr<codegen::CompiledDesign> prepare_compiled(const PreparedSim& p,
                                                          const std::string& name) {
  StatusOr<std::unique_ptr<codegen::CompiledDesign>> cd = codegen::prepare(p.design, p.schedule);
  if (!cd.ok()) {
    std::cerr << "note: skipping " << name << "_compiled: " << cd.status().message() << "\n";
    return nullptr;
  }
  return std::move(*cd);
}

std::optional<SimThroughput> loopback_throughput(unsigned stages, unsigned words,
                                                 const assertions::Options& opt,
                                                 const std::string& name, double min_seconds,
                                                 bool profiled = false, bool compiled = false) {
  auto app = apps::loopback::build(stages, words);
  PreparedSim p = prepare(app->design, opt);
  std::unique_ptr<codegen::CompiledDesign> cd;
  if (compiled && (cd = prepare_compiled(p, name)) == nullptr) return std::nullopt;
  std::vector<std::uint64_t> data(words);
  for (unsigned i = 0; i < words; ++i) data[i] = i + 1;  // all > 0: no failures
  sim::ExternRegistry ext;
  return bench::time_simulation(
      compiled ? name + "_compiled" : name,
      [&] {
        std::optional<metrics::Profiler> prof;
        sim::Simulator s(p.design, p.schedule, ext, sim_options(p, profiled, prof, cd.get()));
        s.feed(apps::loopback::input_stream(stages), data);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "loopback bench run misbehaved");
        HLSAV_CHECK(cd == nullptr || s.engine_active(),
                    "compiled engine fell back during loopback bench: " + s.engine_note());
        return r.cycles;
      },
      min_seconds, 3, g_best_of);
}

std::optional<SimThroughput> des_throughput(double min_seconds, bool profiled = false,
                                            bool compiled = false) {
  const std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                             0x456789ABCDEF0123ull};
  auto app = apps::compile_app("triple_des", "des3.c", apps::des::hlsc_decrypt_source(keys));
  sched::SchedOptions sched_opts;
  sched_opts.chain_depth = 6;
  PreparedSim p = prepare(app->design, assertions::Options::optimized(), sched_opts);
  std::unique_ptr<codegen::CompiledDesign> cd;
  if (compiled && (cd = prepare_compiled(p, "tripledes_decrypt")) == nullptr) return std::nullopt;
  std::string text = "In-circuit assertion-based verification throughput.";
  std::vector<std::uint64_t> cipher;
  for (std::uint64_t b : apps::des::pack_text(text)) {
    cipher.push_back(apps::des::triple_des_encrypt(b, keys));
  }
  std::vector<std::uint64_t> feed_words = apps::des::to_word_stream(cipher);
  sim::ExternRegistry ext;
  return bench::time_simulation(
      compiled ? "tripledes_decrypt_compiled"
               : (profiled ? "tripledes_decrypt_prof" : "tripledes_decrypt"),
      [&] {
        std::optional<metrics::Profiler> prof;
        sim::Simulator s(p.design, p.schedule, ext, sim_options(p, profiled, prof, cd.get()));
        s.feed("des3.in", feed_words);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "3DES bench run misbehaved");
        HLSAV_CHECK(cd == nullptr || s.engine_active(),
                    "compiled engine fell back during 3DES bench: " + s.engine_note());
        return r.cycles;
      },
      min_seconds, 3, g_best_of);
}

std::optional<SimThroughput> edge_throughput(double min_seconds, bool profiled = false,
                                             bool compiled = false) {
  constexpr unsigned kW = 64;
  constexpr unsigned kH = 48;
  auto app = apps::compile_app("edge_detect", "edge.c", apps::edge::hlsc_source(kW, kH));
  sched::SchedOptions sched_opts;
  sched_opts.chain_depth = 16;
  PreparedSim p = prepare(app->design, assertions::Options::optimized(), sched_opts);
  std::unique_ptr<codegen::CompiledDesign> cd;
  if (compiled && (cd = prepare_compiled(p, "edge_detect_64x48")) == nullptr) return std::nullopt;
  apps::img::Image input = apps::img::synthetic_image(kW, kH, 7);
  std::vector<std::uint64_t> feed_words = apps::edge::to_word_stream(input);
  sim::ExternRegistry ext;
  return bench::time_simulation(
      compiled ? "edge_detect_64x48_compiled"
               : (profiled ? "edge_detect_64x48_prof" : "edge_detect_64x48"),
      [&] {
        std::optional<metrics::Profiler> prof;
        sim::Simulator s(p.design, p.schedule, ext, sim_options(p, profiled, prof, cd.get()));
        s.feed("edge.in", feed_words);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "edge bench run misbehaved");
        HLSAV_CHECK(cd == nullptr || s.engine_active(),
                    "compiled engine fell back during edge bench: " + s.engine_note());
        return r.cycles;
      },
      min_seconds, 3, g_best_of);
}

/// One fully profiled loopback run whose report JSON is embedded in
/// BENCH_sim.json: the trajectory records where the cycles go, not just
/// how fast they pass.
std::string embedded_profile_json(unsigned words) {
  auto app = apps::loopback::build(4, words);
  PreparedSim p = prepare(app->design, assertions::Options::optimized());
  std::vector<std::uint64_t> data(words);
  for (unsigned i = 0; i < words; ++i) data[i] = i + 1;
  metrics::Profiler prof(p.design, p.schedule);
  sim::SimOptions so;
  so.profile = &prof;
  sim::ExternRegistry ext;
  sim::Simulator s(p.design, p.schedule, ext, so);
  s.feed(apps::loopback::input_stream(4), data);
  sim::RunResult r = s.run();
  HLSAV_CHECK(r.completed(), "profiled loopback run misbehaved");
  return prof.report().to_json();
}

/// The disabled-profiler throughput guard: geomean of current/baseline
/// over the workloads both files measured, excluding the armed "_prof"
/// rows (those measure armed overhead, not disabled cost).
int compare_against_baseline(const std::string& json_path, const std::string& baseline_path,
                             double tolerance_pct) {
  std::map<std::string, double> baseline = bench::read_bench_workloads(baseline_path);
  std::map<std::string, double> current = bench::read_bench_workloads(json_path);
  double log_sum = 0.0;
  unsigned n = 0;
  for (const auto& [name, cps] : current) {
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, "_prof") == 0) continue;
    auto it = baseline.find(name);
    if (it == baseline.end() || it->second <= 0.0 || cps <= 0.0) continue;
    double ratio = cps / it->second;
    std::cout << "compare " << name << ": " << hlsav::fmt_double(100.0 * (ratio - 1.0), 2)
              << "%\n";
    log_sum += std::log(ratio);
    ++n;
  }
  if (n == 0) {
    std::cerr << "compare: no common workloads between " << json_path << " and "
              << baseline_path << "\n";
    return 1;
  }
  double geomean = std::exp(log_sum / n);
  std::cout << "geomean throughput vs baseline: "
            << hlsav::fmt_double(100.0 * (geomean - 1.0), 2) << "% (" << n
            << " workloads, tolerance -" << hlsav::fmt_double(tolerance_pct, 1) << "%)\n";
  if (geomean < 1.0 - tolerance_pct / 100.0) {
    std::cerr << "FAIL: throughput regressed beyond the " << hlsav::fmt_double(tolerance_pct, 1)
              << "% tolerance\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

/// Per-workload compiled/interpreter ratios for every "<name>_compiled"
/// row whose interpreter row was also measured. Printed as a table and
/// embedded in BENCH_sim.json; empty when either engine was skipped.
std::string speedup_summary(const std::vector<SimThroughput>& results) {
  std::map<std::string, double> cps;
  for (const SimThroughput& r : results) cps[r.name] = r.cycles_per_sec();
  TextTable t("Compiled-engine speedup (compiled cycles/sec over interpreter)");
  t.header({"workload", "interpreter", "compiled", "speedup"});
  std::string json = "{";
  double log_sum = 0.0;
  unsigned n = 0;
  for (const SimThroughput& r : results) {
    const std::string suffix = "_compiled";
    if (r.name.size() <= suffix.size() ||
        r.name.compare(r.name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    auto it = cps.find(r.name.substr(0, r.name.size() - suffix.size()));
    if (it == cps.end() || it->second <= 0.0) continue;
    double speedup = r.cycles_per_sec() / it->second;
    t.row({it->first, hlsav::fmt_double(it->second, 0), hlsav::fmt_double(r.cycles_per_sec(), 0),
           hlsav::fmt_double(speedup, 2) + "x"});
    json += (n == 0 ? "" : ", ") + ("\"" + it->first + "\": " + hlsav::fmt_double(speedup, 3));
    log_sum += std::log(speedup);
    ++n;
  }
  if (n == 0) return "";
  double geomean = std::exp(log_sum / n);
  t.row({"geomean", "", "", hlsav::fmt_double(geomean, 2) + "x"});
  json += ", \"geomean\": " + hlsav::fmt_double(geomean, 3) + "}";
  std::cout << t.render();
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim.json";
  std::string baseline_path;
  std::string engine = "interpreter";
  double min_seconds = 0.5;
  double tolerance_pct = 2.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--engine" && i + 1 < argc) arg = "--engine=" + std::string(argv[++i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--compare" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance_pct = std::stod(argv[++i]);
    } else if (arg == "--best-of" && i + 1 < argc) {
      g_best_of = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg.rfind("--engine=", 0) == 0) {
      engine = arg.substr(9);
      if (engine != "interpreter" && engine != "compiled" && engine != "both") {
        std::cerr << "unknown --engine '" << engine
                  << "' (expected interpreter, compiled, or both)\n";
        return 2;
      }
    } else if (arg == "--quick") {
      min_seconds = 0.1;
    } else {
      std::cerr << "usage: bench_sim_throughput [--json <path>] [--quick] [--best-of N]\n"
                   "                            [--engine interpreter|compiled|both]\n"
                   "                            [--compare <baseline.json> [--tolerance <pct>]]\n";
      return 2;
    }
  }
  const bool run_interp = engine != "compiled";
  const bool run_compiled = engine != "interpreter";
  hlsav::bench::print_provenance_banner("bench_sim_throughput");

  std::vector<SimThroughput> results;
  auto add = [&results](std::optional<SimThroughput> r) {
    if (r.has_value()) results.push_back(std::move(*r));
  };
  // Measure each workload on every requested engine back to back, so the
  // speedup ratio sees the same host conditions for both rows.
  auto both = [&](auto&& run) {
    if (run_interp) add(run(/*compiled=*/false));
    if (run_compiled) add(run(/*compiled=*/true));
  };
  constexpr unsigned kWords = 64;
  for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    both([&](bool compiled) {
      return loopback_throughput(n, kWords, assertions::Options::optimized(),
                                 "loopback_opt_n" + std::to_string(n), min_seconds,
                                 /*profiled=*/false, compiled);
    });
  }
  both([&](bool compiled) {
    return loopback_throughput(128, kWords, assertions::Options::unoptimized(),
                               "loopback_unopt_n128", min_seconds, /*profiled=*/false, compiled);
  });
  both([&](bool compiled) { return des_throughput(min_seconds, /*profiled=*/false, compiled); });
  both([&](bool compiled) { return edge_throughput(min_seconds, /*profiled=*/false, compiled); });
  if (run_interp) {
    // Armed-overhead rows: the same workloads with the profiler running
    // (interpreter only; an armed profiler declines the compiled engine).
    add(loopback_throughput(8, kWords, assertions::Options::optimized(), "loopback_opt_n8_prof",
                            min_seconds, /*profiled=*/true));
    add(des_throughput(min_seconds, /*profiled=*/true));
    add(edge_throughput(min_seconds, /*profiled=*/true));
  }

  TextTable t("Simulator throughput (cycles simulated per wall second)");
  t.header({"workload", "runs", "cycles/run", "wall s", "cycles/sec"});
  for (const SimThroughput& r : results) {
    t.row({r.name, std::to_string(r.runs), std::to_string(r.cycles_per_run),
           hlsav::fmt_double(r.wall_seconds, 3), hlsav::fmt_double(r.cycles_per_sec(), 0)});
  }
  std::cout << t.render();

  std::string speedup_json;
  if (run_interp && run_compiled) speedup_json = speedup_summary(results);

  hlsav::bench::write_bench_json(json_path, "sim_throughput", results,
                                 embedded_profile_json(kWords), speedup_json);
  std::cout << "wrote " << json_path << "\n";

  if (!baseline_path.empty()) {
    return compare_against_baseline(json_path, baseline_path, tolerance_pct);
  }
  return 0;
}
