// Simulator throughput harness: measures cycles-simulated/sec of the
// cycle-accurate FSMD simulator across the reproduction's workloads and
// writes BENCH_sim.json so the perf trajectory is tracked across PRs.
//
// Workloads:
//  * the Fig. 4/5 streaming-loopback chain at 1..128 processes
//    (optimized assertion synthesis, the paper's recommended config,
//    plus the unoptimized per-process-checker config at 128), and
//  * the Table 1/2 application pipelines: Triple-DES decrypt and the
//    5x5-window edge detector.
//
// Usage: bench_sim_throughput [--json <path>] [--quick]
#include "bench/common.h"

#include "apps/des.h"
#include "apps/edge.h"
#include "apps/loopback.h"

namespace {

using namespace hlsav;
using bench::SimThroughput;

struct PreparedSim {
  ir::Design design;
  sched::DesignSchedule schedule;
};

PreparedSim prepare(const ir::Design& lowered, const assertions::Options& opt,
                    const sched::SchedOptions& sched_opts = {}) {
  PreparedSim p{lowered.clone(), {}};
  assertions::synthesize(p.design, opt);
  ir::verify(p.design);
  p.schedule = sched::schedule_design(p.design, sched_opts);
  return p;
}

SimThroughput loopback_throughput(unsigned stages, unsigned words, const assertions::Options& opt,
                                  const std::string& name, double min_seconds) {
  auto app = apps::loopback::build(stages, words);
  PreparedSim p = prepare(app->design, opt);
  std::vector<std::uint64_t> data(words);
  for (unsigned i = 0; i < words; ++i) data[i] = i + 1;  // all > 0: no failures
  sim::ExternRegistry ext;
  return bench::time_simulation(
      name,
      [&] {
        sim::Simulator s(p.design, p.schedule, ext, {});
        s.feed(apps::loopback::input_stream(stages), data);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "loopback bench run misbehaved");
        return r.cycles;
      },
      min_seconds);
}

SimThroughput des_throughput(double min_seconds) {
  const std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                             0x456789ABCDEF0123ull};
  auto app = apps::compile_app("triple_des", "des3.c", apps::des::hlsc_decrypt_source(keys));
  sched::SchedOptions sched_opts;
  sched_opts.chain_depth = 6;
  PreparedSim p = prepare(app->design, assertions::Options::optimized(), sched_opts);
  std::string text = "In-circuit assertion-based verification throughput.";
  std::vector<std::uint64_t> cipher;
  for (std::uint64_t b : apps::des::pack_text(text)) {
    cipher.push_back(apps::des::triple_des_encrypt(b, keys));
  }
  std::vector<std::uint64_t> feed_words = apps::des::to_word_stream(cipher);
  sim::ExternRegistry ext;
  return bench::time_simulation(
      "tripledes_decrypt",
      [&] {
        sim::Simulator s(p.design, p.schedule, ext, {});
        s.feed("des3.in", feed_words);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "3DES bench run misbehaved");
        return r.cycles;
      },
      min_seconds);
}

SimThroughput edge_throughput(double min_seconds) {
  constexpr unsigned kW = 64;
  constexpr unsigned kH = 48;
  auto app = apps::compile_app("edge_detect", "edge.c", apps::edge::hlsc_source(kW, kH));
  sched::SchedOptions sched_opts;
  sched_opts.chain_depth = 16;
  PreparedSim p = prepare(app->design, assertions::Options::optimized(), sched_opts);
  apps::img::Image input = apps::img::synthetic_image(kW, kH, 7);
  std::vector<std::uint64_t> feed_words = apps::edge::to_word_stream(input);
  sim::ExternRegistry ext;
  return bench::time_simulation(
      "edge_detect_64x48",
      [&] {
        sim::Simulator s(p.design, p.schedule, ext, {});
        s.feed("edge.in", feed_words);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "edge bench run misbehaved");
        return r.cycles;
      },
      min_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim.json";
  double min_seconds = 0.5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quick") {
      min_seconds = 0.1;
    } else {
      std::cerr << "usage: bench_sim_throughput [--json <path>] [--quick]\n";
      return 2;
    }
  }

  std::vector<SimThroughput> results;
  constexpr unsigned kWords = 64;
  for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    results.push_back(loopback_throughput(n, kWords, assertions::Options::optimized(),
                                          "loopback_opt_n" + std::to_string(n), min_seconds));
  }
  results.push_back(loopback_throughput(128, kWords, assertions::Options::unoptimized(),
                                        "loopback_unopt_n128", min_seconds));
  results.push_back(des_throughput(min_seconds));
  results.push_back(edge_throughput(min_seconds));

  TextTable t("Simulator throughput (cycles simulated per wall second)");
  t.header({"workload", "runs", "cycles/run", "wall s", "cycles/sec"});
  for (const SimThroughput& r : results) {
    t.row({r.name, std::to_string(r.runs), std::to_string(r.cycles_per_run),
           hlsav::fmt_double(r.wall_seconds, 3), hlsav::fmt_double(r.cycles_per_sec(), 0)});
  }
  std::cout << t.render();

  hlsav::bench::write_bench_json(json_path, "sim_throughput", results);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
