// Simulator throughput harness: measures cycles-simulated/sec of the
// cycle-accurate FSMD simulator across the reproduction's workloads and
// writes BENCH_sim.json so the perf trajectory is tracked across PRs.
//
// Workloads:
//  * the Fig. 4/5 streaming-loopback chain at 1..128 processes
//    (optimized assertion synthesis, the paper's recommended config,
//    plus the unoptimized per-process-checker config at 128), and
//  * the Table 1/2 application pipelines: Triple-DES decrypt and the
//    5x5-window edge detector.
//
// The "_prof" rows re-run a workload with the cycle-attribution
// profiler armed, so the armed overhead is measured alongside; the
// disabled-profiler rows are the ones --compare guards.
//
// Usage: bench_sim_throughput [--json <path>] [--quick] [--best-of N]
//                             [--compare <baseline.json> [--tolerance <pct>]]
#include "bench/common.h"

#include <cmath>
#include <optional>

#include "apps/des.h"
#include "apps/edge.h"
#include "apps/loopback.h"
#include "metrics/profile.h"

namespace {

using namespace hlsav;
using bench::SimThroughput;

/// Timing windows per workload; the fastest wins (see time_simulation).
/// The CI guard runs --best-of 3 so host-load noise cannot trip the
/// throughput tolerance.
unsigned g_best_of = 1;

struct PreparedSim {
  ir::Design design;
  sched::DesignSchedule schedule;
};

PreparedSim prepare(const ir::Design& lowered, const assertions::Options& opt,
                    const sched::SchedOptions& sched_opts = {}) {
  PreparedSim p{lowered.clone(), {}};
  assertions::synthesize(p.design, opt);
  ir::verify(p.design);
  p.schedule = sched::schedule_design(p.design, sched_opts);
  return p;
}

/// A fresh armed Profiler per run when `profiled` (the same lifetime
/// `hlsavc profile` gives it), no profiler at all otherwise.
sim::SimOptions sim_options(const PreparedSim& p, bool profiled,
                            std::optional<metrics::Profiler>& prof) {
  sim::SimOptions so;
  if (profiled) {
    prof.emplace(p.design, p.schedule);
    so.profile = &*prof;
  }
  return so;
}

SimThroughput loopback_throughput(unsigned stages, unsigned words, const assertions::Options& opt,
                                  const std::string& name, double min_seconds,
                                  bool profiled = false) {
  auto app = apps::loopback::build(stages, words);
  PreparedSim p = prepare(app->design, opt);
  std::vector<std::uint64_t> data(words);
  for (unsigned i = 0; i < words; ++i) data[i] = i + 1;  // all > 0: no failures
  sim::ExternRegistry ext;
  return bench::time_simulation(
      name,
      [&] {
        std::optional<metrics::Profiler> prof;
        sim::Simulator s(p.design, p.schedule, ext, sim_options(p, profiled, prof));
        s.feed(apps::loopback::input_stream(stages), data);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "loopback bench run misbehaved");
        return r.cycles;
      },
      min_seconds, 3, g_best_of);
}

SimThroughput des_throughput(double min_seconds, bool profiled = false) {
  const std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                             0x456789ABCDEF0123ull};
  auto app = apps::compile_app("triple_des", "des3.c", apps::des::hlsc_decrypt_source(keys));
  sched::SchedOptions sched_opts;
  sched_opts.chain_depth = 6;
  PreparedSim p = prepare(app->design, assertions::Options::optimized(), sched_opts);
  std::string text = "In-circuit assertion-based verification throughput.";
  std::vector<std::uint64_t> cipher;
  for (std::uint64_t b : apps::des::pack_text(text)) {
    cipher.push_back(apps::des::triple_des_encrypt(b, keys));
  }
  std::vector<std::uint64_t> feed_words = apps::des::to_word_stream(cipher);
  sim::ExternRegistry ext;
  return bench::time_simulation(
      profiled ? "tripledes_decrypt_prof" : "tripledes_decrypt",
      [&] {
        std::optional<metrics::Profiler> prof;
        sim::Simulator s(p.design, p.schedule, ext, sim_options(p, profiled, prof));
        s.feed("des3.in", feed_words);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "3DES bench run misbehaved");
        return r.cycles;
      },
      min_seconds, 3, g_best_of);
}

SimThroughput edge_throughput(double min_seconds, bool profiled = false) {
  constexpr unsigned kW = 64;
  constexpr unsigned kH = 48;
  auto app = apps::compile_app("edge_detect", "edge.c", apps::edge::hlsc_source(kW, kH));
  sched::SchedOptions sched_opts;
  sched_opts.chain_depth = 16;
  PreparedSim p = prepare(app->design, assertions::Options::optimized(), sched_opts);
  apps::img::Image input = apps::img::synthetic_image(kW, kH, 7);
  std::vector<std::uint64_t> feed_words = apps::edge::to_word_stream(input);
  sim::ExternRegistry ext;
  return bench::time_simulation(
      profiled ? "edge_detect_64x48_prof" : "edge_detect_64x48",
      [&] {
        std::optional<metrics::Profiler> prof;
        sim::Simulator s(p.design, p.schedule, ext, sim_options(p, profiled, prof));
        s.feed("edge.in", feed_words);
        sim::RunResult r = s.run();
        HLSAV_CHECK(r.completed() && r.failures.empty(), "edge bench run misbehaved");
        return r.cycles;
      },
      min_seconds, 3, g_best_of);
}

/// One fully profiled loopback run whose report JSON is embedded in
/// BENCH_sim.json: the trajectory records where the cycles go, not just
/// how fast they pass.
std::string embedded_profile_json(unsigned words) {
  auto app = apps::loopback::build(4, words);
  PreparedSim p = prepare(app->design, assertions::Options::optimized());
  std::vector<std::uint64_t> data(words);
  for (unsigned i = 0; i < words; ++i) data[i] = i + 1;
  metrics::Profiler prof(p.design, p.schedule);
  sim::SimOptions so;
  so.profile = &prof;
  sim::ExternRegistry ext;
  sim::Simulator s(p.design, p.schedule, ext, so);
  s.feed(apps::loopback::input_stream(4), data);
  sim::RunResult r = s.run();
  HLSAV_CHECK(r.completed(), "profiled loopback run misbehaved");
  return prof.report().to_json();
}

/// The disabled-profiler throughput guard: geomean of current/baseline
/// over the workloads both files measured, excluding the armed "_prof"
/// rows (those measure armed overhead, not disabled cost).
int compare_against_baseline(const std::string& json_path, const std::string& baseline_path,
                             double tolerance_pct) {
  std::map<std::string, double> baseline = bench::read_bench_workloads(baseline_path);
  std::map<std::string, double> current = bench::read_bench_workloads(json_path);
  double log_sum = 0.0;
  unsigned n = 0;
  for (const auto& [name, cps] : current) {
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, "_prof") == 0) continue;
    auto it = baseline.find(name);
    if (it == baseline.end() || it->second <= 0.0 || cps <= 0.0) continue;
    double ratio = cps / it->second;
    std::cout << "compare " << name << ": " << hlsav::fmt_double(100.0 * (ratio - 1.0), 2)
              << "%\n";
    log_sum += std::log(ratio);
    ++n;
  }
  if (n == 0) {
    std::cerr << "compare: no common workloads between " << json_path << " and "
              << baseline_path << "\n";
    return 1;
  }
  double geomean = std::exp(log_sum / n);
  std::cout << "geomean throughput vs baseline: "
            << hlsav::fmt_double(100.0 * (geomean - 1.0), 2) << "% (" << n
            << " workloads, tolerance -" << hlsav::fmt_double(tolerance_pct, 1) << "%)\n";
  if (geomean < 1.0 - tolerance_pct / 100.0) {
    std::cerr << "FAIL: throughput regressed beyond the " << hlsav::fmt_double(tolerance_pct, 1)
              << "% tolerance\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim.json";
  std::string baseline_path;
  double min_seconds = 0.5;
  double tolerance_pct = 2.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--compare" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance_pct = std::stod(argv[++i]);
    } else if (arg == "--best-of" && i + 1 < argc) {
      g_best_of = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--quick") {
      min_seconds = 0.1;
    } else {
      std::cerr << "usage: bench_sim_throughput [--json <path>] [--quick] [--best-of N]\n"
                   "                            [--compare <baseline.json> [--tolerance <pct>]]\n";
      return 2;
    }
  }
  hlsav::bench::print_provenance_banner("bench_sim_throughput");

  std::vector<SimThroughput> results;
  constexpr unsigned kWords = 64;
  for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    results.push_back(loopback_throughput(n, kWords, assertions::Options::optimized(),
                                          "loopback_opt_n" + std::to_string(n), min_seconds));
  }
  results.push_back(loopback_throughput(128, kWords, assertions::Options::unoptimized(),
                                        "loopback_unopt_n128", min_seconds));
  results.push_back(des_throughput(min_seconds));
  results.push_back(edge_throughput(min_seconds));
  // Armed-overhead rows: the same workloads with the profiler running.
  results.push_back(loopback_throughput(8, kWords, assertions::Options::optimized(),
                                        "loopback_opt_n8_prof", min_seconds,
                                        /*profiled=*/true));
  results.push_back(des_throughput(min_seconds, /*profiled=*/true));
  results.push_back(edge_throughput(min_seconds, /*profiled=*/true));

  TextTable t("Simulator throughput (cycles simulated per wall second)");
  t.header({"workload", "runs", "cycles/run", "wall s", "cycles/sec"});
  for (const SimThroughput& r : results) {
    t.row({r.name, std::to_string(r.runs), std::to_string(r.cycles_per_run),
           hlsav::fmt_double(r.wall_seconds, 3), hlsav::fmt_double(r.cycles_per_sec(), 0)});
  }
  std::cout << t.render();

  hlsav::bench::write_bench_json(json_path, "sim_throughput", results,
                                 embedded_profile_json(kWords));
  std::cout << "wrote " << json_path << "\n";

  if (!baseline_path.empty()) {
    return compare_against_baseline(json_path, baseline_path, tolerance_pct);
  }
  return 0;
}
