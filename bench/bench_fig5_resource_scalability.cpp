// Reproduces Figure 5: ALUT overhead (% of the EP2S180) vs process count
// for the loopback application, unoptimized vs channel-shared
// assertions.
//
// Paper anchor: at 128 processes, unoptimized assertions cost 4.07% of
// the device's ALUTs; sharing 32 failure flags per stream reduces that
// to 1.34% -- over 3x.
#include "bench/common.h"

#include "apps/loopback.h"

namespace {

using namespace hlsav;
using assertions::Options;

Options shared_only() {
  Options o;
  o.share_channels = true;
  return o;
}

void print_fig5() {
  const fpga::Device dev = fpga::Device::ep2s180();
  TextTable t("Figure 5: Assertion ALUT overhead scalability (% of EP2S180 ALUTs)");
  t.header({"processes", "unoptimized ovh %", "optimized ovh %", "ratio", "paper anchor"});
  double last_ratio = 0;
  for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    auto app = apps::loopback::build(n, 8);
    bench::Characterized orig = bench::characterize(app->design, Options::ndebug());
    bench::Characterized unopt = bench::characterize(app->design, Options::unoptimized());
    bench::Characterized opt = bench::characterize(app->design, shared_only());
    double u = 100.0 *
               static_cast<double>(unopt.area.aluts - orig.area.aluts) /
               static_cast<double>(dev.aluts);
    double o = 100.0 *
               static_cast<double>(opt.area.aluts - orig.area.aluts) /
               static_cast<double>(dev.aluts);
    last_ratio = o > 0 ? u / o : 0;
    t.row({std::to_string(n), fmt_double(u, 2), fmt_double(o, 2), fmt_double(last_ratio, 2),
           n == 128 ? "4.07 / 1.34 (>3x)" : ""});
  }
  std::cout << t.render();
  std::cout << "measured 128-process reduction: " << fmt_double(last_ratio, 2)
            << "x (paper: over 3x)\n\n";

  // Ablation (DESIGN.md decision #3): sweep flags-per-stream.
  TextTable a("Ablation: failure flags packed per 32-bit stream (128 processes)");
  a.header({"flags/stream", "streams created", "optimized ALUT ovh %"});
  auto app = apps::loopback::build(128, 8);
  bench::Characterized orig = bench::characterize(app->design, Options::ndebug());
  for (unsigned w : {1u, 4u, 8u, 16u, 32u}) {
    Options o = shared_only();
    o.channel_width = w;
    bench::Characterized cfg = bench::characterize(app->design, o);
    double ovh = 100.0 *
                 static_cast<double>(cfg.area.aluts - orig.area.aluts) /
                 static_cast<double>(dev.aluts);
    a.row({std::to_string(w), std::to_string(cfg.synth.fail_streams_created),
           fmt_double(ovh, 2)});
  }
  std::cout << a.render() << '\n';
}

void BM_AreaEstimate128(benchmark::State& state) {
  auto app = apps::loopback::build(128, 8);
  bench::Characterized cfg = bench::characterize(app->design, Options::unoptimized());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpga::estimate_area(cfg.netlist));
  }
}
BENCHMARK(BM_AreaEstimate128);

void BM_BuildLoopbackDesign(benchmark::State& state) {
  unsigned n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::loopback::build(n, 8));
  }
}
BENCHMARK(BM_BuildLoopbackDesign)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  hlsav::bench::print_provenance_banner("bench_fig5_resource_scalability");
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
