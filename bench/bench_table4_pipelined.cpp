// Reproduces Table 4: pipelined single-comparison assertion overhead
// (latency and rate), plus the throughput-recovery claims of §5.4
// (100% for scalars, 33% for arrays) and an ablation of the stream-
// write controller occupancy that causes the rate degradation.
#include "bench/common.h"

namespace {

using namespace hlsav;
using assertions::Options;

const char* kScalarKernel = R"(
  void k(stream_in<32> in, stream_out<32> out) {
    uint32 x;
    x = stream_read(in);
    uint32 acc;
    acc = 0;
    #pragma HLS pipeline
    for (uint32 i = 0; i < 64; i++) {
      uint32 t;
      t = x * 23 + i;
      acc = acc + t;
      assert(t > 0);
    }
    stream_write(out, acc);
  }
)";

const char* kArrayKernel = R"(
  void k(stream_in<32> in, stream_out<32> out) {
    uint32 x;
    x = stream_read(in);
    uint32 acc;
    acc = 0;
    #pragma HLS replicate
    uint32 b[64];
    #pragma HLS pipeline
    for (uint32 i = 0; i < 64; i++) {
      acc = acc + b[i];
      b[i] = x + i;
      assert(b[i] > 0);
    }
    stream_write(out, acc);
  }
)";

sched::LoopPerf perf_of(const char* src, const Options& opt,
                        const sched::SchedOptions& so = {}) {
  auto app = apps::compile_app("t4", "t4.c", src);
  ir::Design d = app->design.clone();
  assertions::synthesize(d, opt);
  ir::verify(d);
  const ir::Process& p = *d.find_process("k");
  sched::ProcessSchedule s = sched::schedule_process(d, p, so);
  return sched::loop_perf(s, p.loops[0].body);
}

void print_table4() {
  sched::LoopPerf s_orig = perf_of(kScalarKernel, Options::ndebug());
  sched::LoopPerf s_unopt = perf_of(kScalarKernel, Options::unoptimized());
  sched::LoopPerf s_opt = perf_of(kScalarKernel, Options::optimized());
  sched::LoopPerf a_orig = perf_of(kArrayKernel, Options::ndebug());
  sched::LoopPerf a_unopt = perf_of(kArrayKernel, Options::unoptimized());
  sched::LoopPerf a_opt = perf_of(kArrayKernel, Options::optimized());

  TextTable t("Table 4: Pipelined single-comparison assertion overhead (latency/rate)");
  t.header({"Assertion data structure", "Original", "Unopt (paper lat/rate ovh)",
            "Unopt (measured)", "Opt (paper)", "Opt (measured)"});
  auto fmt = [](const sched::LoopPerf& base, const sched::LoopPerf& cfg) {
    return std::to_string(cfg.latency - base.latency) + "/" +
           std::to_string(cfg.rate - base.rate);
  };
  t.row({"Scalar variable",
         std::to_string(s_orig.latency) + "/" + std::to_string(s_orig.rate), "1/1",
         fmt(s_orig, s_unopt), "0/0", fmt(s_orig, s_opt)});
  t.row({"Array (replicated when optimized)",
         std::to_string(a_orig.latency) + "/" + std::to_string(a_orig.rate), "2/1",
         fmt(a_orig, a_unopt), "1/0", fmt(a_orig, a_opt)});
  std::cout << t.render();

  // §5.4 throughput-recovery claims: the paper reports the scalar case
  // as a 2x speedup (+100%) and the array case as a 33% rate improvement
  // (cycles per iteration 3 -> 2).
  double scalar_speedup =
      static_cast<double>(s_unopt.rate) / static_cast<double>(s_opt.rate) - 1.0;
  double array_rate_cut = 100.0 *
                          static_cast<double>(a_unopt.rate - a_opt.rate) /
                          static_cast<double>(a_unopt.rate);
  std::cout << "optimization gain vs unoptimized: scalar +" << fmt_double(100 * scalar_speedup, 0)
            << "% throughput (paper: +100%), array rate improved by "
            << fmt_double(array_rate_cut, 0) << "% (" << a_unopt.rate << " -> " << a_opt.rate
            << " cycles/iteration; paper: 33% via resource replication)\n";

  // Ablation (DESIGN.md decision #1): with a 1-slot stream-write
  // controller, the inlined failure send would NOT halve the rate.
  sched::SchedOptions occ1;
  occ1.stream_write_occupancy = 1;
  sched::LoopPerf abl = perf_of(kScalarKernel, Options::unoptimized(), occ1);
  std::cout << "ablation stream_write_occupancy=1: unoptimized scalar rate "
            << s_unopt.rate << " -> " << abl.rate
            << " (the 2-slot handshake is what reproduces the paper's 2x slowdown)\n";

  // Ablation (DESIGN.md decision #2): with both BRAM ports available to
  // the application, the array kernel's original rate halves and the
  // assertion's extra access no longer forces II=3.
  sched::SchedOptions ports2;
  ports2.mem_ports = 2;
  sched::LoopPerf a2_orig = perf_of(kArrayKernel, Options::ndebug(), ports2);
  sched::LoopPerf a2_unopt = perf_of(kArrayKernel, Options::unoptimized(), ports2);
  std::cout << "ablation mem_ports=2: array original rate " << a_orig.rate << " -> "
            << a2_orig.rate << ", unoptimized rate " << a_unopt.rate << " -> " << a2_unopt.rate
            << " (the single shared port is the paper's §3.2 contention)\n\n";
}

void BM_ModuloScheduleScalar(benchmark::State& state) {
  auto app = apps::compile_app("t4", "t4.c", kScalarKernel);
  ir::Design d = app->design.clone();
  assertions::synthesize(d, assertions::Options::unoptimized());
  const ir::Process& p = *d.find_process("k");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_process(d, p, {}));
  }
}
BENCHMARK(BM_ModuloScheduleScalar);

void BM_ModuloScheduleArray(benchmark::State& state) {
  auto app = apps::compile_app("t4", "t4.c", kArrayKernel);
  ir::Design d = app->design.clone();
  assertions::synthesize(d, assertions::Options::optimized());
  const ir::Process& p = *d.find_process("k");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_process(d, p, {}));
  }
}
BENCHMARK(BM_ModuloScheduleArray);

}  // namespace

int main(int argc, char** argv) {
  hlsav::bench::print_provenance_banner("bench_table4_pipelined");
  print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
