// Triple-DES in-circuit verification (the paper's Table 1 case study).
//
// The CPU encrypts a text file with 3DES, streams the ciphertext to the
// "FPGA" (our cycle simulator running the generated HLS-C decryptor),
// and the decryptor's two in-circuit assertions bound-check every
// decrypted character as printable ASCII. A corrupted ciphertext block
// shows the failure path: the assertion fires in circuit and the
// notification function names the file, line, function and expression.
#include <iostream>

#include "apps/appbuild.h"
#include "apps/des.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

int main() {
  using namespace hlsav;
  using namespace hlsav::apps;

  const std::array<std::uint64_t, 3> keys = {0x0123456789ABCDEFull, 0x23456789ABCDEF01ull,
                                             0x456789ABCDEF0123ull};
  const std::string text =
      "High-level synthesis lets software engineers target FPGAs; "
      "in-circuit assertions let them debug there too.";

  // Build the decryptor with optimized in-circuit assertions.
  auto app = compile_app("triple_des", "des3.c", des::hlsc_decrypt_source(keys));
  ir::Design design = app->design.clone();
  assertions::synthesize(design, assertions::Options::optimized());
  ir::verify(design);
  sched::DesignSchedule schedule = sched::schedule_design(design);
  sim::ExternRegistry externs;

  // Encrypt on the CPU.
  std::vector<std::uint64_t> blocks = des::pack_text(text);
  std::vector<std::uint64_t> cipher;
  for (std::uint64_t b : blocks) cipher.push_back(des::triple_des_encrypt(b, keys));
  std::cout << "encrypted " << blocks.size() << " blocks (" << text.size() << " chars)\n";

  // Decrypt in circuit.
  {
    sim::Simulator s(design, schedule, externs, {});
    s.feed("des3.in", des::to_word_stream(cipher));
    sim::RunResult r = s.run();
    std::string out;
    for (std::uint64_t c : s.received("des3.txt")) out.push_back(static_cast<char>(c));
    std::cout << "decrypted in " << r.cycles << " FPGA cycles, "
              << r.failures.size() << " assertion failures\n"
              << "plaintext: " << out.substr(0, 60) << "...\n"
              << "round-trip " << (out.substr(0, text.size()) == text ? "OK" : "FAILED") << "\n\n";
  }

  // Corrupt one ciphertext block: the decrypted garbage violates the
  // ASCII bounds and the in-circuit assertion halts the run.
  {
    std::vector<std::uint64_t> corrupted = cipher;
    corrupted[2] ^= 0x40000001ull;
    sim::Simulator s(design, schedule, externs, {});
    s.set_failure_sink([](const assertions::Failure& f) {
      std::cout << "in-circuit failure: " << f.message << "\n";
    });
    s.feed("des3.in", des::to_word_stream(corrupted));
    sim::RunResult r = s.run();
    std::cout << "corrupted run: "
              << (r.status == sim::RunStatus::kAborted ? "aborted (bug caught in circuit)"
                                                       : "completed (?)")
              << "\n";
  }
  return 0;
}
