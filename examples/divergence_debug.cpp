// Software simulation vs in-circuit execution (paper §5.1, Fig. 3).
//
// Two divergence sources the paper demonstrates:
//  (a) a hardware translation fault -- Impulse-C narrowed a 64-bit
//      comparison to 5 bits, so 4294967286 > 4294967296 evaluated true
//      in circuit -- modelled by the simulator's fault injection;
//  (b) an external HDL function whose C simulation model disagrees with
//      the silicon.
// In both cases the program passes software simulation and fails in
// circuit; in-circuit assertions are what surface the bug.
#include <iostream>

#include "apps/appbuild.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

namespace {

using namespace hlsav;

void report(const char* label, const sim::RunResult& r) {
  std::cout << label << ": ";
  switch (r.status) {
    case sim::RunStatus::kCompleted: std::cout << "completed, assertion passed"; break;
    case sim::RunStatus::kAborted:
      std::cout << "ABORTED -- " << r.failures[0].message;
      break;
    case sim::RunStatus::kHung: std::cout << "hung"; break;
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  // (a) The Fig. 3 kernel: a 64-bit guard protects a RAM address.
  const char* narrow_src = R"(
    void f(stream_in<32> in, stream_out<32> out) {
      uint64 c1;
      uint64 c2;
      c1 = 4294967296;
      c2 = stream_read(in);
      uint32 addr;
      addr = 0;
      if (c2 > c1) {
        addr = 99;
      }
      assert(addr < 32);
      stream_write(out, addr);
    }
  )";
  auto app = apps::compile_app("fig3", "fig3.c", narrow_src);
  sim::ExternRegistry externs;

  {
    // Software simulation executes source semantics: passes.
    ir::Design d = app->design.clone();
    sched::DesignSchedule sch = sched::schedule_design(d);
    sim::SimOptions so;
    so.mode = sim::SimMode::kSoftware;
    sim::Simulator s(d, sch, externs, so);
    s.feed("f.in", {4294967286u});
    report("(a) software simulation          ", s.run());
  }
  {
    // In circuit, with the translation fault injected on the guard
    // comparison (source line 9): 22 > 0 -- the guard misfires.
    ir::Design d = app->design.clone();
    assertions::synthesize(d, assertions::Options::unoptimized());
    ir::verify(d);
    sched::DesignSchedule sch = sched::schedule_design(d);
    sim::SimOptions so;
    so.faults.add_narrow_compare("f", 9, 5);
    sim::Simulator s(d, sch, externs, so);
    s.feed("f.in", {4294967286u});
    report("(a) in-circuit (narrowed compare)", s.run());
  }

  // (b) External HDL function with a divergent C model.
  const char* extern_src = R"(
    extern uint32 norm(uint32 v);
    void g(stream_in<32> in, stream_out<32> out) {
      uint32 r;
      r = norm(stream_read(in));
      assert(r <= 255);
      stream_write(out, r);
    }
  )";
  auto app2 = apps::compile_app("extdiv", "extdiv.c", extern_src);
  sim::ExternRegistry ext2;
  ext2.add("norm",
           [](const std::vector<BitVector>& a) {  // C model: clamps
             return BitVector::from_u64(32, std::min<std::uint64_t>(a[0].to_u64(), 255));
           },
           [](const std::vector<BitVector>& a) {  // HDL core: wraps instead
             return BitVector::from_u64(32, a[0].to_u64() & 0x3ff);
           });
  {
    ir::Design d = app2->design.clone();
    sched::DesignSchedule sch = sched::schedule_design(d);
    sim::SimOptions so;
    so.mode = sim::SimMode::kSoftware;
    sim::Simulator s(d, sch, ext2, so);
    s.feed("g.in", {600});
    report("(b) software simulation          ", s.run());
  }
  {
    ir::Design d = app2->design.clone();
    assertions::synthesize(d, assertions::Options::optimized());
    ir::verify(d);
    sched::DesignSchedule sch = sched::schedule_design(d);
    sim::Simulator s(d, sch, ext2, {});
    s.feed("g.in", {600});
    report("(b) in-circuit (real HDL core)   ", s.run());
  }

  std::cout << "\nboth bugs are invisible to software simulation and caught by the same\n"
               "source-level assert() once it executes in circuit.\n";
  return 0;
}
