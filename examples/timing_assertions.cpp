// Timing assertions: the paper's §6 future-work feature, implemented.
//
// `assert_cycles(N)` checks that no more than N cycles elapsed since the
// previous marker in the same process (or process start). The marker is
// free on the application's state machine -- a micro-checker process
// carries the counter, comparator and failure channel -- so performance
// contracts can be verified in circuit the same way value invariants are.
#include <iostream>

#include "apps/appbuild.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

int main() {
  using namespace hlsav;

  // The consumer contracts to produce each result within 24 cycles of
  // the previous one. A "slow path" in the kernel (the inner while loop
  // runs longer for large inputs) violates it.
  const char* source = R"(
    void worker(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 6; i++) {
        uint32 v;
        v = stream_read(in);
        uint32 r;
        r = 0;
        while (v > 0) {
          r = r + v;
          v = v - 1;
        }
        assert_cycles(24);
        stream_write(out, r);
      }
    }
  )";

  auto app = apps::compile_app("timing", "worker.c", source);
  ir::Design design = app->design.clone();
  assertions::Options opt = assertions::Options::unoptimized();
  opt.nabort = true;  // report every violation, keep running
  assertions::SynthesisReport rep = assertions::synthesize(design, opt);
  ir::verify(design);
  std::cout << "synthesis: " << rep.to_string() << "\n";
  sched::DesignSchedule schedule = sched::schedule_design(design);
  sim::ExternRegistry externs;

  // Small inputs meet the 24-cycle budget; 11 and 14 do not.
  sim::Simulator s(design, schedule, externs, {});
  s.set_failure_sink([](const assertions::Failure& f) {
    std::cout << "timing violation: " << f.message << " [cycle " << f.cycle << "]\n";
  });
  s.feed("worker.in", {2, 3, 11, 1, 14, 2});
  sim::RunResult r = s.run();
  std::cout << "run " << (r.completed() ? "completed" : "stopped") << " in " << r.cycles
            << " cycles with " << r.failures.size() << " timing violations\n"
            << "outputs:";
  for (std::uint64_t v : s.received("worker.out")) std::cout << ' ' << v;
  std::cout << "\n\nthe markers cost zero application states: the same design without\n"
               "them completes in exactly the same number of cycles.\n";
  return 0;
}
