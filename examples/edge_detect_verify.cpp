// Edge detection with image-size assertions (the paper's Table 2 case
// study).
//
// A synthetic grayscale image is written to edge_input.bmp, streamed
// through the fixed-size 5x5 window kernel, and the edge map comes back
// as edge_output.bmp. The kernel's two in-circuit assertions check that
// the streamed image's width and height match the hardware
// configuration; feeding a wrongly-sized image trips them.
#include <iostream>

#include "apps/appbuild.h"
#include "apps/edge.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

int main() {
  using namespace hlsav;
  using namespace hlsav::apps;

  constexpr unsigned kW = 64;
  constexpr unsigned kH = 48;

  auto app = compile_app("edge_detect", "edge.c", edge::hlsc_source(kW, kH));
  ir::Design design = app->design.clone();
  assertions::synthesize(design, assertions::Options::optimized());
  ir::verify(design);
  sched::DesignSchedule schedule = sched::schedule_design(design);
  sim::ExternRegistry externs;

  img::Image input = img::synthetic_image(kW, kH, 7);
  if (img::write_bmp_file("edge_input.bmp", input)) {
    std::cout << "wrote edge_input.bmp (" << kW << "x" << kH << ")\n";
  }

  // Matching image: clean run, output compared against the golden model.
  {
    sim::Simulator s(design, schedule, externs, {});
    s.feed("edge.in", edge::to_word_stream(input));
    sim::RunResult r = s.run();
    img::Image hw = edge::from_word_stream(s.received("edge.out"), kW, kH);
    img::Image gold = edge::golden_edge(input);
    std::cout << "edge map computed in " << r.cycles << " FPGA cycles; "
              << (hw.pixels == gold.pixels ? "matches golden model" : "MISMATCH") << "\n";
    // Scale the response into 0..255 for viewing.
    img::Image view = hw;
    for (auto& p : view.pixels) p = static_cast<std::uint16_t>(std::min<unsigned>(p, 255));
    if (img::write_bmp_file("edge_output.bmp", view)) {
      std::cout << "wrote edge_output.bmp\n";
    }
  }

  // Wrong-size image: the in-circuit size assertions catch it.
  {
    img::Image wrong = img::synthetic_image(kW * 2, kH, 9);
    sim::Simulator s(design, schedule, externs, {});
    s.set_failure_sink([](const assertions::Failure& f) {
      std::cout << "in-circuit failure: " << f.message << "\n";
    });
    s.feed("edge.in", edge::to_word_stream(wrong));
    sim::RunResult r = s.run();
    std::cout << "wrong-size run: "
              << (r.status == sim::RunStatus::kAborted ? "aborted (size mismatch caught)"
                                                       : "completed (?)")
              << "\n";
  }
  return 0;
}
