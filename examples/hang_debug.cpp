// Hang debugging with assert(0) trace markers and NABORT (paper §5.1).
//
// A modified streaming pipeline contains the paper's class of bug: a
// stage performs one extra blocking read (the original bug was a memory
// read where a write was intended). The application completes under
// idealized reasoning but hangs in circuit. assert(0) markers with
// NABORT act as a breadcrumb trail: the last marker reached, compared
// between runs, pinpoints the hanging statement -- no HDL needed.
#include <iostream>

#include "apps/appbuild.h"
#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

namespace {

using namespace hlsav;

// `extra_read` injects the bug.
std::string pipeline_source(bool extra_read) {
  std::string consumer_trip = extra_read ? "5" : "4";
  return R"(
    void feeder(stream_in<32> in, stream_out<32> link) {
      for (uint32 i = 0; i < 4; i++) {
        uint32 v;
        v = stream_read(in);
        stream_write(link, v + 1);
      }
    }
    void reducer(stream_in<32> link, stream_out<32> out) {
      uint32 acc;
      acc = 0;
      assert(0);
      for (uint32 i = 0; i < )" + consumer_trip + R"(; i++) {
        acc = acc + stream_read(link);
        assert(0);
      }
      assert(0);
      stream_write(out, acc);
    }
  )";
}

void run_pipeline(bool buggy) {
  auto app = apps::compile_app(buggy ? "buggy" : "correct", "pipeline.c",
                               pipeline_source(buggy));
  ir::StreamId link = app->design.find_process("feeder")->find_port("link")->stream;
  app->design.connect_consumer(link, "reducer", "link");

  ir::Design design = app->design.clone();
  assertions::Options opt = assertions::Options::unoptimized();
  opt.nabort = true;  // trace mode: report markers, never abort
  assertions::synthesize(design, opt);
  ir::verify(design);
  sched::DesignSchedule schedule = sched::schedule_design(design);
  sim::ExternRegistry externs;
  sim::Simulator s(design, schedule, externs, {});
  s.feed("feeder.in", {10, 20, 30, 40});
  sim::RunResult r = s.run();

  std::cout << (buggy ? "--- buggy pipeline ---\n" : "--- correct pipeline ---\n");
  std::cout << "status: "
            << (r.status == sim::RunStatus::kCompleted ? "completed"
                : r.status == sim::RunStatus::kHung    ? "HUNG"
                                                       : "aborted")
            << ", trace markers reached: " << r.failures.size() << "\n";
  for (const assertions::Failure& f : r.failures) {
    std::cout << "  marker at line "
              << design.find_assertion(f.assertion_id)->line << " (cycle " << f.cycle << ")\n";
  }
  if (r.status == sim::RunStatus::kHung) {
    std::cout << r.hang_report;
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  // Reference run: every marker fires, including the one after the loop.
  run_pipeline(/*buggy=*/false);
  // Buggy run: the post-loop marker never fires and the hang report
  // names the exact blocking statement -- the paper's methodology.
  run_pipeline(/*buggy=*/true);
  std::cout << "diagnosis: the marker after the loop was never reached in the buggy run,\n"
               "and the hang report points at the extra blocking stream_read -- the same\n"
               "procedure that located the read-instead-of-write bug in the paper's DES\n"
               "case study, without touching any HDL.\n";
  return 0;
}
