// Quickstart: the whole hlsav flow in one file.
//
// 1. Write an HLS-C process containing a plain ANSI-C assert.
// 2. Compile it (parse -> sema -> lower to IR).
// 3. Synthesize the assertion into in-circuit checkers (the paper's
//    optimized configuration: parallelized checker, shared channels).
// 4. Schedule the design and characterize area/Fmax on the EP2S180.
// 5. Run it in the cycle simulator: first a clean run, then one where
//    the assertion fires and the CPU-side notification function prints
//    the standard ANSI-C failure message.
#include <iostream>

#include "apps/appbuild.h"
#include "assertions/options.h"
#include "assertions/report.h"
#include "assertions/synthesize.h"
#include "fpga/area.h"
#include "fpga/timing.h"
#include "rtl/netlist.h"
#include "sched/schedule.h"
#include "sim/simulator.h"
#include "support/table.h"

int main() {
  using namespace hlsav;

  // 1. An HLS-C process: reads words, clamps them, asserts an invariant.
  const char* source = R"(
    void clamp(stream_in<32> in, stream_out<32> out) {
      for (uint32 i = 0; i < 8; i++) {
        uint32 v;
        v = stream_read(in);
        uint32 y;
        y = v;
        if (v > 1000) {
          y = 1000;
        }
        assert(y <= 1000);
        assert(v != 42);
        stream_write(out, y);
      }
    }
  )";

  // 2. Compile.
  auto app = apps::compile_app("quickstart", "clamp.c", source);
  std::cout << "compiled " << app->design.processes.size() << " process(es), "
            << app->design.assertions.size() << " assertion(s)\n";

  // 3. Synthesize assertions in circuit.
  ir::Design design = app->design.clone();
  assertions::SynthesisReport report =
      assertions::synthesize(design, assertions::Options::optimized());
  ir::verify(design);
  std::cout << "assertion synthesis: " << report.to_string() << "\n\n"
            << assertions::describe_framework(design) << "\n";

  // 4. Schedule + characterize.
  sched::DesignSchedule schedule = sched::schedule_design(design);
  rtl::Netlist netlist = rtl::build_netlist(design, schedule);
  fpga::Device device = fpga::Device::ep2s180();
  fpga::AreaReport area = fpga::estimate_area(netlist);
  fpga::TimingReport timing = fpga::estimate_fmax(netlist, device);
  std::cout << "area: " << area.to_string(device) << "\n"
            << "fmax: " << fmt_double(timing.fmax_mhz, 1) << " MHz\n\n";

  // 5a. Clean run.
  sim::ExternRegistry externs;
  {
    sim::Simulator s(design, schedule, externs, {});
    s.feed("clamp.in", {1, 2, 3, 4, 2000, 6, 7, 8});
    sim::RunResult r = s.run();
    std::cout << "clean run: " << (r.completed() ? "completed" : "failed") << " in "
              << r.cycles << " cycles; outputs:";
    for (std::uint64_t v : s.received("clamp.out")) std::cout << ' ' << v;
    std::cout << "\n";
  }

  // 5b. A run that trips the second assertion: the notification function
  // prints the ANSI-C message and halts the application.
  {
    sim::Simulator s(design, schedule, externs, {});
    s.set_failure_sink([](const assertions::Failure& f) {
      std::cout << "notification function: " << f.message << " [cycle " << f.cycle << "]\n";
    });
    s.feed("clamp.in", {1, 2, 42, 4, 5, 6, 7, 8});
    sim::RunResult r = s.run();
    std::cout << "failing run: " << (r.status == sim::RunStatus::kAborted ? "aborted" : "??")
              << " after " << r.failures.size() << " failure(s)\n";
  }
  return 0;
}
