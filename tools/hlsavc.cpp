// hlsavc -- command-line driver for the hlsav HLS flow.
//
//   hlsavc compile  file.c [options]   parse + synthesize, print a report
//   hlsavc verilog  file.c [options]   emit generated Verilog to stdout
//   hlsavc ir       file.c [options]   print the synthesized IR
//   hlsavc schedule file.c [options]   print per-process schedules
//   hlsavc simulate file.c [options] --feed stream=v1,v2,...
//                                      run the cycle simulator
//   hlsavc faultsim file.c [options] --feed stream=v1,v2,...
//                                      list fault sites; --site=N runs one
//                                      fault, --campaign sweeps them all
//
// Options:
//   --assertions=ndebug|unoptimized|optimized   (default optimized)
//   --no-parallelize --no-replicate --no-share  tweak individual passes
//   --nabort                                    keep running on failure
//   --chain-depth=N                             scheduler chaining budget
//   --sw                                        software-simulation mode
//   --site=N --campaign --seed=N --max-faults=N --max-cycles=N
//                                               faultsim controls
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "fpga/area.h"
#include "fpga/timing.h"
#include "ir/lower.h"
#include "ir/optimize.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "rtl/netlist.h"
#include "rtl/verilog.h"
#include "sched/schedule.h"
#include "sim/campaign.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "support/str.h"
#include "support/table.h"

namespace {

using namespace hlsav;

struct Args {
  std::string command;
  std::string file;
  assertions::Options assert_opts = assertions::Options::optimized();
  sched::SchedOptions sched_opts;
  bool software_mode = false;
  bool optimize_ir = false;
  bool trace = false;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
  // faultsim controls
  bool campaign = false;
  std::uint32_t site = sim::FaultSpec::kNoSite;
  sim::CampaignOptions campaign_opts;
};

int usage() {
  std::cerr << "usage: hlsavc <compile|verilog|ir|schedule|simulate|faultsim> <file.c> [options]\n"
               "  --assertions=ndebug|unoptimized|optimized\n"
               "  --no-parallelize --no-replicate --no-share --nabort\n"
               "  --chain-depth=N --sw --optimize --trace --feed stream=v1,v2,...\n"
               "  faultsim: --site=N | --campaign [--seed=N --max-faults=N --max-cycles=N]\n";
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 3) return false;
  args.command = argv[1];
  args.file = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--assertions=ndebug") {
      args.assert_opts = assertions::Options::ndebug();
    } else if (a == "--assertions=unoptimized") {
      args.assert_opts = assertions::Options::unoptimized();
    } else if (a == "--assertions=optimized") {
      args.assert_opts = assertions::Options::optimized();
    } else if (a == "--no-parallelize") {
      args.assert_opts.parallelize = false;
    } else if (a == "--no-replicate") {
      args.assert_opts.replicate = false;
    } else if (a == "--no-share") {
      args.assert_opts.share_channels = false;
    } else if (a == "--nabort") {
      args.assert_opts.nabort = true;
    } else if (a == "--sw") {
      args.software_mode = true;
    } else if (a == "--optimize" || a == "-O") {
      args.optimize_ir = true;
    } else if (a == "--trace") {
      args.trace = true;
    } else if (a == "--campaign") {
      args.campaign = true;
    } else if (starts_with(a, "--site=")) {
      args.site = static_cast<std::uint32_t>(std::stoul(a.substr(7)));
    } else if (starts_with(a, "--seed=")) {
      args.campaign_opts.seed = std::stoull(a.substr(7));
    } else if (starts_with(a, "--max-faults=")) {
      args.campaign_opts.max_faults = std::stoull(a.substr(13));
    } else if (starts_with(a, "--max-cycles=")) {
      args.campaign_opts.max_cycles = std::stoull(a.substr(13));
    } else if (starts_with(a, "--chain-depth=")) {
      args.sched_opts.chain_depth = static_cast<unsigned>(std::stoul(a.substr(14)));
    } else if (a == "--feed" && i + 1 < argc) {
      std::string spec = argv[++i];
      std::size_t eq = spec.find('=');
      if (eq == std::string::npos) return false;
      std::vector<std::uint64_t> values;
      for (const std::string& v : split(spec.substr(eq + 1), ',')) {
        if (!v.empty()) values.push_back(std::stoull(v));
      }
      args.feeds[spec.substr(0, eq)] = values;
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return false;
    }
  }
  return true;
}

int run(const Args& args) {
  SourceManager sm;
  DiagnosticEngine diags(&sm);
  FileId file = sm.load_file(args.file);
  if (file == 0) {
    std::cerr << "hlsavc: cannot open " << args.file << "\n";
    return 1;
  }
  lang::Parser parser(sm, file, diags);
  auto program = parser.parse_program();
  if (diags.has_errors()) {
    std::cerr << diags.render();
    return 1;
  }
  lang::SemaResult sema = lang::analyze(*program, sm, diags);
  if (!sema.ok) {
    std::cerr << diags.render();
    return 1;
  }
  ir::Design design;
  design.name = args.file;
  if (!ir::lower_all_processes(design, *program, sm, diags)) {
    std::cerr << diags.render();
    return 1;
  }
  std::cerr << diags.render();  // warnings, if any
  if (args.optimize_ir) {
    ir::OptReport opt = ir::optimize(design);
    std::cerr << "optimizer: " << opt.to_string() << "\n";
  }

  // In software mode the design is simulated pre-synthesis (assert
  // statements evaluated in place), as Impulse-C does.
  assertions::SynthesisReport synth;
  if (!(args.command == "simulate" && args.software_mode)) {
    synth = assertions::synthesize(design, args.assert_opts);
  }
  ir::verify(design);
  sched::DesignSchedule schedule = sched::schedule_design(design, args.sched_opts);

  if (args.command == "ir") {
    std::cout << ir::print_design(design);
    return 0;
  }
  if (args.command == "verilog") {
    std::cout << rtl::emit_verilog(design, schedule);
    return 0;
  }
  if (args.command == "schedule") {
    for (const auto& p : design.processes) {
      std::cout << sched::print_schedule(design, *schedule.find(p->name));
    }
    return 0;
  }
  if (args.command == "compile") {
    rtl::Netlist netlist = rtl::build_netlist(design, schedule);
    fpga::Device dev = fpga::Device::ep2s180();
    fpga::AreaReport area = fpga::estimate_area(netlist);
    fpga::TimingReport timing = fpga::estimate_fmax(netlist, dev);
    std::cout << "design: " << design.name << "\n"
              << "assertion synthesis: " << synth.to_string() << "\n"
              << rtl::describe(netlist) << "area: " << area.to_string(dev) << "\n"
              << "fmax: " << fmt_double(timing.fmax_mhz, 1) << " MHz (critical process "
              << timing.critical_process << ", " << fmt_double(timing.critical_path_ns, 2)
              << " ns)\n";
    return 0;
  }
  if (args.command == "simulate") {
    sim::ExternRegistry externs;
    sim::SimOptions so;
    so.mode = args.software_mode ? sim::SimMode::kSoftware : sim::SimMode::kHardware;
    so.trace = args.trace;
    sim::Simulator simulator(design, schedule, externs, so);
    simulator.set_failure_sink([](const assertions::Failure& f) {
      std::cerr << f.message << "  [cycle " << f.cycle << "]\n";
    });
    for (const auto& [stream, values] : args.feeds) simulator.feed(stream, values);
    sim::RunResult r = simulator.run();
    switch (r.status) {
      case sim::RunStatus::kCompleted:
        std::cout << "completed in " << r.cycles << " cycles\n";
        break;
      case sim::RunStatus::kAborted:
        std::cout << "aborted by assertion failure at cycle "
                  << (r.failures.empty() ? 0 : r.failures.back().cycle) << "\n";
        break;
      case sim::RunStatus::kHung:
        std::cout << r.hang_report;
        break;
    }
    for (const ir::Stream& s : design.streams) {
      if (s.dead || s.consumer.kind != ir::StreamEndpoint::Kind::kCpu) continue;
      if (s.role != ir::StreamRole::kData) continue;
      std::vector<std::uint64_t> out = simulator.received(s.name);
      if (out.empty()) continue;
      std::cout << s.name << ":";
      for (std::uint64_t v : out) std::cout << ' ' << v;
      std::cout << '\n';
    }
    if (args.trace) std::cerr << simulator.render_trace(&sm);
    return r.status == sim::RunStatus::kCompleted ? 0 : 1;
  }
  if (args.command == "faultsim") {
    sim::ExternRegistry externs;
    std::vector<sim::FaultSpec> sites = sim::enumerate_fault_sites(design, schedule);

    if (args.campaign) {
      sim::CampaignOptions copt = args.campaign_opts;
      sim::CampaignReport rep = sim::run_campaign(design, schedule, externs, args.feeds, copt);
      std::cout << rep.render(design);
      return 0;
    }

    if (args.site != sim::FaultSpec::kNoSite) {
      if (args.site >= sites.size()) {
        std::cerr << "hlsavc: site " << args.site << " out of range (design has " << sites.size()
                  << " fault sites)\n";
        return 1;
      }
      const sim::FaultSpec& fault = sites[args.site];
      std::cout << "injecting s" << fault.id << ": " << fault.describe(design) << "\n";
      sim::SimOptions so;
      so.mode = sim::SimMode::kHardware;  // faults model circuit behaviour
      so.trace = args.trace;
      if (args.campaign_opts.max_cycles != 0) so.max_cycles = args.campaign_opts.max_cycles;
      so.faults.add(fault);
      sim::Simulator simulator(design, schedule, externs, so);
      simulator.set_failure_sink([](const assertions::Failure& f) {
        std::cerr << f.message << "  [cycle " << f.cycle << "]\n";
      });
      for (const auto& [stream, values] : args.feeds) simulator.feed(stream, values);
      sim::RunResult r = simulator.run();
      switch (r.status) {
        case sim::RunStatus::kCompleted:
          std::cout << "completed in " << r.cycles << " cycles\n";
          break;
        case sim::RunStatus::kAborted:
          std::cout << "aborted by assertion failure at cycle "
                    << (r.failures.empty() ? 0 : r.failures.back().cycle) << "\n";
          break;
        case sim::RunStatus::kHung:
          std::cout << r.hang_report;
          break;
      }
      for (const ir::Stream& s : design.streams) {
        if (s.dead || s.consumer.kind != ir::StreamEndpoint::Kind::kCpu) continue;
        if (s.role != ir::StreamRole::kData) continue;
        std::vector<std::uint64_t> out = simulator.received(s.name);
        if (out.empty()) continue;
        std::cout << s.name << ":";
        for (std::uint64_t v : out) std::cout << ' ' << v;
        std::cout << '\n';
      }
      if (args.trace) std::cerr << simulator.render_trace(&sm);
      return r.status == sim::RunStatus::kCompleted ? 0 : 1;
    }

    TextTable t("fault sites: " + design.name + " (" + std::to_string(sites.size()) + ")");
    t.header({"site", "kind", "description"});
    for (const sim::FaultSpec& f : sites) {
      std::string site = "s";
      site += std::to_string(f.id);
      t.row({site, sim::fault_kind_name(f.kind), f.describe(design)});
    }
    std::cout << t.render();
    return 0;
  }
  std::cerr << "unknown command: " << args.command << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    return run(args);
  } catch (const InternalError& e) {
    std::cerr << "hlsavc: " << e.what() << "\n";
    return 1;
  }
}
