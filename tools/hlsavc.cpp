// hlsavc -- command-line driver for the hlsav HLS flow.
//
//   hlsavc compile  file.c [options]   parse + synthesize, print a report
//   hlsavc verilog  file.c [options]   emit generated Verilog to stdout
//   hlsavc ir       file.c [options]   print the synthesized IR
//   hlsavc schedule file.c [options]   print per-process schedules
//   hlsavc simulate file.c [options] --feed stream=v1,v2,...
//                                      run the cycle simulator
//   hlsavc faultsim file.c [options] --feed stream=v1,v2,...
//                                      list fault sites; --site=N runs one
//                                      fault, --campaign sweeps them all
//   hlsavc trace    file.c [options] --feed stream=v1,v2,...
//                                      run with the ELA armed, export a VCD
//                                      and a source-level replay
//   hlsavc profile  file.c [options] --feed stream=v1,v2,...
//                                      run with the cycle-attribution profiler
//                                      armed: source-level tables to stdout
//                                      plus a Perfetto-loadable Chrome trace
//   hlsavc mine     file.c [options] --feed stream=v1,v2,...
//                                      mine candidate invariants from a golden
//                                      trace, synthesize each as a checker,
//                                      rank by measured kill-rate per area
//   hlsavc checktrace trace.json       validate a Chrome trace-event file
//   hlsavc --version                   print git sha + build type
//
// Options:
//   --assertions=ndebug|unoptimized|optimized   (default optimized)
//   --no-parallelize --no-replicate --no-share  tweak individual passes
//   --nabort                                    keep running on failure
//   --chain-depth=N                             scheduler chaining budget
//   --sw                                        software-simulation mode
//   --site=N --campaign --seed=N --max-faults=N --max-cycles=N --threads=N
//                                               faultsim controls
//   --journal=FILE --resume --site-wall-ms=N    campaign crash recovery and
//                                               per-site watchdog budgets
//   --trace-site=N --trace-nonbenign --trace-dir=DIR
//                                               faultsim trace reruns
//   --vcd=FILE --bin=FILE --last-cycles=N --trace-capacity=N
//   --trace-procs=p1,p2 --trace-max-sites=N     trace controls
//   --trace-out=FILE --profile-json=FILE        profile outputs
//   --progress --profile                        faultsim campaign extras
//   --min-support=N --candidates=N --top=K      mine controls
//   --emit=FILE --trace-in=FILE
//
// Exit codes: 0 success, 1 compile/internal error, 2 bad usage,
//             3 halted by an assertion failure, 4 hang,
//             5 wall-clock budget exceeded,
//             6 campaign interrupted by SIGINT/SIGTERM (journal flushed;
//               resumable with --resume).
//
// Robustness contract: whatever the input -- malformed source, junk
// flag values, unwritable outputs -- hlsavc exits with one of the codes
// above and a rendered diagnostic. The frontend runs through
// pipeline::compile_file (Status-carrying, no stage throws for user
// errors) and main() backstops any residual exception.
#include <atomic>
#include <charconv>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <optional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "assertions/options.h"
#include "assertions/synthesize.h"
#include "codegen/engine.h"
#include "fpga/area.h"
#include "fpga/ela.h"
#include "fpga/timing.h"
#include "metrics/chrometrace.h"
#include "metrics/profile.h"
#include "mine/emit.h"
#include "mine/miner.h"
#include "mine/score.h"
#include "pipeline/compile.h"
#include "rtl/netlist.h"
#include "rtl/verilog.h"
#include "sched/schedule.h"
#include "sim/campaign.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "support/str.h"
#include "support/table.h"
#include "trace/binary.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/trace.h"
#include "trace/vcd.h"

// Provenance injected by the build (tools/CMakeLists.txt); the
// fallbacks keep ad-hoc compiles working.
#ifndef HLSAV_GIT_SHA
#define HLSAV_GIT_SHA "unknown"
#endif
#ifndef HLSAV_BUILD_TYPE
#define HLSAV_BUILD_TYPE "unspecified"
#endif

namespace {

using namespace hlsav;

// Cooperative-cancel flag for --campaign: the handler only stores an
// atomic (async-signal-safe); the sweep polls it between sites.
std::atomic<bool> g_interrupted{false};

void handle_interrupt(int) { g_interrupted.store(true, std::memory_order_relaxed); }

struct Args {
  std::string command;
  std::string file;
  assertions::Options assert_opts = assertions::Options::optimized();
  sched::SchedOptions sched_opts;
  sim::SimEngine engine = sim::SimEngine::kInterpreter;
  bool software_mode = false;
  bool optimize_ir = false;
  bool trace = false;
  std::map<std::string, std::vector<std::uint64_t>> feeds;
  // faultsim controls
  bool campaign = false;
  std::uint32_t site = sim::FaultSpec::kNoSite;
  sim::CampaignOptions campaign_opts;
  // trace controls (the `trace` command and faultsim trace reruns)
  std::uint32_t trace_site = sim::FaultSpec::kNoSite;
  bool trace_nonbenign = false;
  std::string vcd_path;
  std::string bin_path;
  std::string trace_dir = "traces";
  std::size_t last_cycles = 16;
  std::size_t trace_capacity = 1024;
  bool trace_capacity_set = false;
  std::vector<std::string> trace_procs;
  std::size_t trace_max_sites = 0;
  // mine controls
  std::uint64_t min_support = 2;
  std::size_t mine_candidates = 0;  // 0 = score every candidate
  std::size_t mine_top = 5;
  std::string emit_path;
  std::string trace_in;
  // profile outputs
  std::string trace_out = "profile.trace.json";
  std::string profile_json;
  // wall-clock watchdog (simulate/profile/trace runs and campaign sites)
  double site_wall_ms = 0.0;
};

// ---- flag-value parsing. std::sto* throws on junk; a malformed flag
// ---- value is a usage error (exit 2), never a crash, so every numeric
// ---- flag goes through these.

bool parse_u64_flag(std::string_view text, std::uint64_t& out) {
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && p == text.data() + text.size() && !text.empty();
}

bool parse_u32_flag(std::string_view text, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64_flag(text, v) || v > std::numeric_limits<std::uint32_t>::max()) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_size_flag(std::string_view text, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64_flag(text, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_unsigned_flag(std::string_view text, unsigned& out) {
  std::uint64_t v = 0;
  if (!parse_u64_flag(text, v) || v > std::numeric_limits<unsigned>::max()) return false;
  out = static_cast<unsigned>(v);
  return true;
}

bool parse_double_flag(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

void print_usage(std::ostream& os) {
  os << "usage: hlsavc <compile|verilog|ir|schedule|simulate|faultsim|trace|profile|mine> "
        "<file.c> [options]\n"
        "       hlsavc checktrace <trace.json>\n"
        "       hlsavc --version\n"
        "  --assertions=ndebug|unoptimized|optimized\n"
        "  --no-parallelize --no-replicate --no-share --nabort\n"
        "  --chain-depth=N --sw --optimize --trace --feed stream=v1,v2,...\n"
        "  --engine=interpreter|compiled|auto: simulation engine (default\n"
        "            interpreter). compiled AOT-translates the scheduled design\n"
        "            to native code via the host C compiler; configurations the\n"
        "            backend cannot serve fall back to the interpreter with a\n"
        "            logged reason, never an error\n"
        "  faultsim: --site=N | --trace-site=N |\n"
        "            --campaign [--seed=N --max-faults=N --max-cycles=N --threads=N\n"
        "                        --trace-nonbenign --progress --profile\n"
        "                        --journal=FILE --resume --site-wall-ms=N]\n"
        "  --journal=FILE: append-only crash-recovery journal; --resume skips\n"
        "            sites it already classified. --site-wall-ms=N caps each\n"
        "            site's wall-clock budget (also caps simulate/profile/trace\n"
        "            runs; an exceeded budget exits 5)\n"
        "  trace:    run with the embedded-logic-analyzer capture armed, write a VCD\n"
        "            (--vcd=FILE, default trace.vcd) plus a source-level replay of the\n"
        "            last captured cycles; --site=N injects one fault first\n"
        "  trace options: --vcd=FILE --bin=FILE --last-cycles=N --trace-capacity=N\n"
        "                 --trace-procs=p1,p2 --trace-dir=DIR --trace-max-sites=N\n"
        "  profile:  run with the cycle-attribution profiler armed, print source-level\n"
        "            tables and write a Chrome trace (--trace-out=FILE, default\n"
        "            profile.trace.json; load it in Perfetto or chrome://tracing);\n"
        "            --profile-json=FILE also dumps the full report as JSON\n"
        "  mine:     capture a golden trace (or load one with --trace-in=FILE),\n"
        "            mine candidate invariants, synthesize each as a checker and\n"
        "            rank survivors by newly-detected fault sites per unit area;\n"
        "            --emit=FILE writes the top --top=K (default 5) back into the\n"
        "            source as assert() lines (validated by a recompile)\n"
        "  mine options: --min-support=N (default 2) --candidates=N (cap scored)\n"
        "                --top=K --emit=FILE --trace-in=FILE plus the faultsim\n"
        "                campaign controls (--seed --max-faults --max-cycles\n"
        "                --threads) and --trace-capacity for the live capture\n"
        "  checktrace: validate a Chrome trace-event JSON file (exit 0 valid, 1 not)\n"
        "exit codes: 0 ok, 1 compile/internal error, 2 bad usage,\n"
        "            3 assertion failure halted the run, 4 hang,\n"
        "            5 wall-clock budget exceeded,\n"
        "            6 campaign interrupted by SIGINT/SIGTERM (journal\n"
        "              flushed; re-run with --resume to continue)\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

/// Maps a finished run onto the documented exit codes. A completed run
/// is 0 even with NABORT-reported failures (the design ran to the end).
int run_exit_code(const sim::RunResult& r) {
  switch (r.status) {
    case sim::RunStatus::kCompleted: return 0;
    case sim::RunStatus::kAborted: return 3;
    case sim::RunStatus::kHung: return 4;
    case sim::RunStatus::kDeadline: return 5;
  }
  return 1;
}

/// Shared per-command report of how a run ended.
void print_run_status(const sim::RunResult& r) {
  switch (r.status) {
    case sim::RunStatus::kCompleted:
      std::cout << "completed in " << r.cycles << " cycles\n";
      break;
    case sim::RunStatus::kAborted:
      std::cout << "aborted by assertion failure at cycle "
                << (r.failures.empty() ? 0 : r.failures.back().cycle) << "\n";
      break;
    case sim::RunStatus::kHung:
      std::cout << r.hang_report;
      break;
    case sim::RunStatus::kDeadline:
      std::cout << "stopped: wall-clock budget exceeded after " << r.cycles << " cycles\n";
      break;
  }
}

bool bad_value(const std::string& flag) {
  std::cerr << "malformed value in option: " << flag << "\n";
  return false;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 3) return false;
  args.command = argv[1];
  args.file = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--assertions=ndebug") {
      args.assert_opts = assertions::Options::ndebug();
    } else if (a == "--assertions=unoptimized") {
      args.assert_opts = assertions::Options::unoptimized();
    } else if (a == "--assertions=optimized") {
      args.assert_opts = assertions::Options::optimized();
    } else if (a == "--no-parallelize") {
      args.assert_opts.parallelize = false;
    } else if (a == "--no-replicate") {
      args.assert_opts.replicate = false;
    } else if (a == "--no-share") {
      args.assert_opts.share_channels = false;
    } else if (a == "--nabort") {
      args.assert_opts.nabort = true;
    } else if (a == "--engine=interpreter") {
      args.engine = sim::SimEngine::kInterpreter;
    } else if (a == "--engine=compiled") {
      args.engine = sim::SimEngine::kCompiled;
    } else if (a == "--engine=auto") {
      args.engine = sim::SimEngine::kAuto;
    } else if (starts_with(a, "--engine=")) {
      std::cerr << "unknown engine (use interpreter, compiled or auto): " << a << "\n";
      return false;
    } else if (a == "--sw") {
      args.software_mode = true;
    } else if (a == "--optimize" || a == "-O") {
      args.optimize_ir = true;
    } else if (a == "--trace") {
      args.trace = true;
    } else if (a == "--campaign") {
      args.campaign = true;
    } else if (a == "--trace-nonbenign") {
      args.trace_nonbenign = true;
    } else if (a == "--progress") {
      args.campaign_opts.progress = true;
    } else if (a == "--profile") {
      args.campaign_opts.profile = true;
    } else if (a == "--resume") {
      args.campaign_opts.resume = true;
    } else if (starts_with(a, "--journal=")) {
      args.campaign_opts.journal = a.substr(10);
    } else if (starts_with(a, "--trace-out=")) {
      args.trace_out = a.substr(12);
    } else if (starts_with(a, "--profile-json=")) {
      args.profile_json = a.substr(15);
    } else if (starts_with(a, "--site=")) {
      if (!parse_u32_flag(a.substr(7), args.site)) return bad_value(a);
    } else if (starts_with(a, "--trace-site=")) {
      if (!parse_u32_flag(a.substr(13), args.trace_site)) return bad_value(a);
    } else if (starts_with(a, "--seed=")) {
      if (!parse_u64_flag(a.substr(7), args.campaign_opts.seed)) return bad_value(a);
    } else if (starts_with(a, "--max-faults=")) {
      if (!parse_size_flag(a.substr(13), args.campaign_opts.max_faults)) return bad_value(a);
    } else if (starts_with(a, "--max-cycles=")) {
      if (!parse_u64_flag(a.substr(13), args.campaign_opts.max_cycles)) return bad_value(a);
    } else if (starts_with(a, "--threads=")) {
      if (!parse_unsigned_flag(a.substr(10), args.campaign_opts.threads)) return bad_value(a);
    } else if (starts_with(a, "--site-wall-ms=")) {
      if (!parse_double_flag(a.substr(15), args.site_wall_ms) || args.site_wall_ms < 0) {
        return bad_value(a);
      }
      args.campaign_opts.site_wall_ms = args.site_wall_ms;
    } else if (starts_with(a, "--vcd=")) {
      args.vcd_path = a.substr(6);
    } else if (starts_with(a, "--bin=")) {
      args.bin_path = a.substr(6);
    } else if (starts_with(a, "--trace-dir=")) {
      args.trace_dir = a.substr(12);
    } else if (starts_with(a, "--last-cycles=")) {
      if (!parse_size_flag(a.substr(14), args.last_cycles)) return bad_value(a);
    } else if (starts_with(a, "--trace-capacity=")) {
      if (!parse_size_flag(a.substr(17), args.trace_capacity)) return bad_value(a);
      args.trace_capacity_set = true;
    } else if (starts_with(a, "--min-support=")) {
      if (!parse_u64_flag(a.substr(14), args.min_support)) return bad_value(a);
    } else if (starts_with(a, "--candidates=")) {
      if (!parse_size_flag(a.substr(13), args.mine_candidates)) return bad_value(a);
    } else if (starts_with(a, "--top=")) {
      if (!parse_size_flag(a.substr(6), args.mine_top)) return bad_value(a);
    } else if (starts_with(a, "--emit=")) {
      args.emit_path = a.substr(7);
    } else if (starts_with(a, "--trace-in=")) {
      args.trace_in = a.substr(11);
    } else if (starts_with(a, "--trace-max-sites=")) {
      if (!parse_size_flag(a.substr(18), args.trace_max_sites)) return bad_value(a);
    } else if (starts_with(a, "--trace-procs=")) {
      for (const std::string& p : split(a.substr(14), ',')) {
        if (!p.empty()) args.trace_procs.push_back(p);
      }
    } else if (starts_with(a, "--chain-depth=")) {
      if (!parse_unsigned_flag(a.substr(14), args.sched_opts.chain_depth)) return bad_value(a);
    } else if (a == "--feed" && i + 1 < argc) {
      std::string spec = argv[++i];
      std::size_t eq = spec.find('=');
      if (eq == std::string::npos) return false;
      std::vector<std::uint64_t> values;
      for (const std::string& v : split(spec.substr(eq + 1), ',')) {
        if (v.empty()) continue;
        std::uint64_t value = 0;
        if (!parse_u64_flag(v, value)) return bad_value("--feed " + spec);
        values.push_back(value);
      }
      args.feeds[spec.substr(0, eq)] = values;
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return false;
    }
  }
  return true;
}

int run(const Args& args) {
  if (args.command == "checktrace") {
    // The operand is a trace file, not a source file: validate and stop
    // before any source loading happens.
    metrics::ChromeTraceCheck check = metrics::validate_chrome_trace_file(args.file);
    if (!check.ok) {
      std::cerr << "hlsavc: " << args.file << ": " << check.error << "\n";
      return 1;
    }
    std::cout << args.file << ": valid Chrome trace (" << check.events << " events)\n";
    return 0;
  }

  SourceManager sm;
  DiagnosticEngine diags(&sm);
  pipeline::CompileOptions copts;
  copts.assert_opts = args.assert_opts;
  copts.sched_opts = args.sched_opts;
  copts.optimize_ir = args.optimize_ir;
  // In software mode the design is simulated pre-synthesis (assert
  // statements evaluated in place), as Impulse-C does. The miner also
  // wants the pre-synthesis design: register/stream ids mined from the
  // golden window must match the design each candidate is instrumented
  // into, and the scorer synthesizes its own configurations.
  copts.synthesize_assertions =
      args.command != "mine" && !(args.command == "simulate" && args.software_mode);

  StatusOr<pipeline::Compiled> compiled = pipeline::compile_file(sm, diags, args.file, copts);
  std::cerr << diags.render();  // every collected diagnostic, errors and warnings
  if (!compiled.ok()) {
    std::cerr << "hlsavc: " << compiled.status().to_string() << "\n";
    return 1;
  }
  ir::Design& design = compiled->design;
  sched::DesignSchedule& schedule = compiled->schedule;
  assertions::SynthesisReport& synth = compiled->synth;
  if (args.optimize_ir) {
    std::cerr << "optimizer: " << compiled->opt_report.to_string() << "\n";
  }

  // A --site-wall-ms budget arms the simulator watchdog on direct runs
  // too (simulate/profile/trace); campaigns hand it to each site.
  std::optional<sim::Deadline> run_deadline;
  auto arm_deadline = [&](sim::SimOptions& so) {
    if (args.site_wall_ms <= 0.0) return;
    run_deadline = sim::Deadline::in_ms(args.site_wall_ms);
    so.deadline = &*run_deadline;
  };

  // --engine=compiled/auto: AOT-compile the scheduled design once and
  // attach the handle to every run this invocation makes. Preparation
  // failures (no host compiler, unwritable cache, every process
  // declined) log a reason and leave the interpreter in charge -- the
  // fallback contract says engine selection never turns a runnable
  // design into an error exit.
  std::unique_ptr<codegen::CompiledDesign> compiled_design;
  auto arm_engine = [&](sim::SimOptions& so) {
    so.engine = args.engine;
    if (args.engine == sim::SimEngine::kInterpreter) return;
    if (compiled_design == nullptr) {
      StatusOr<std::unique_ptr<codegen::CompiledDesign>> prep =
          codegen::prepare(design, schedule);
      if (!prep.ok()) {
        std::cerr << "hlsavc: compiled engine unavailable (" << prep.status().to_string()
                  << "); interpreting\n";
        return;
      }
      compiled_design = std::move(*prep);
      for (const codegen::ProcEmit& pe : compiled_design->procs()) {
        if (!pe.decline_reason.empty()) {
          std::cerr << "hlsavc: codegen declined process '" << pe.process
                    << "': " << pe.decline_reason << " -- interpreting it\n";
        }
      }
    }
    so.compiled = compiled_design->handle();
  };
  auto report_engine = [](const sim::Simulator& s) {
    if (!s.engine_note().empty()) std::cerr << "hlsavc: " << s.engine_note() << "\n";
  };

  if (args.command == "ir") {
    std::cout << ir::print_design(design);
    return 0;
  }
  if (args.command == "verilog") {
    std::cout << rtl::emit_verilog(design, schedule);
    return 0;
  }
  if (args.command == "schedule") {
    for (const auto& p : design.processes) {
      std::cout << sched::print_schedule(design, *schedule.find(p->name));
    }
    return 0;
  }
  if (args.command == "compile") {
    rtl::Netlist netlist = rtl::build_netlist(design, schedule);
    fpga::Device dev = fpga::Device::ep2s180();
    fpga::AreaReport area = fpga::estimate_area(netlist);
    fpga::TimingReport timing = fpga::estimate_fmax(netlist, dev);
    std::cout << "design: " << design.name << "\n"
              << "assertion synthesis: " << synth.to_string() << "\n"
              << rtl::describe(netlist) << "area: " << area.to_string(dev) << "\n"
              << "fmax: " << fmt_double(timing.fmax_mhz, 1) << " MHz (critical process "
              << timing.critical_process << ", " << fmt_double(timing.critical_path_ns, 2)
              << " ns)\n";
    return 0;
  }
  if (args.command == "simulate") {
    sim::ExternRegistry externs;
    sim::SimOptions so;
    so.mode = args.software_mode ? sim::SimMode::kSoftware : sim::SimMode::kHardware;
    so.trace = args.trace;
    arm_deadline(so);
    arm_engine(so);
    sim::Simulator simulator(design, schedule, externs, so);
    report_engine(simulator);
    simulator.set_failure_sink([](const assertions::Failure& f) {
      std::cerr << f.message << "  [cycle " << f.cycle << "]\n";
    });
    for (const auto& [stream, values] : args.feeds) {
      Status st = simulator.try_feed(stream, values);
      if (!st.ok()) {
        std::cerr << "hlsavc: " << st.to_string() << "\n";
        return 1;
      }
    }
    sim::RunResult r = simulator.run();
    print_run_status(r);
    for (const ir::Stream& s : design.streams) {
      if (s.dead || s.consumer.kind != ir::StreamEndpoint::Kind::kCpu) continue;
      if (s.role != ir::StreamRole::kData) continue;
      std::vector<std::uint64_t> out = simulator.received(s.name);
      if (out.empty()) continue;
      std::cout << s.name << ":";
      for (std::uint64_t v : out) std::cout << ' ' << v;
      std::cout << '\n';
    }
    if (args.trace) std::cerr << simulator.render_trace(&sm);
    return run_exit_code(r);
  }
  if (args.command == "profile") {
    sim::ExternRegistry externs;
    metrics::Profiler prof(design, schedule);
    sim::SimOptions so;
    so.mode = args.software_mode ? sim::SimMode::kSoftware : sim::SimMode::kHardware;
    so.profile = &prof;
    if (args.campaign_opts.max_cycles != 0) so.max_cycles = args.campaign_opts.max_cycles;
    arm_deadline(so);
    arm_engine(so);
    sim::Simulator simulator(design, schedule, externs, so);
    report_engine(simulator);
    simulator.set_failure_sink([](const assertions::Failure& f) {
      std::cerr << f.message << "  [cycle " << f.cycle << "]\n";
    });
    for (const auto& [stream, values] : args.feeds) {
      Status st = simulator.try_feed(stream, values);
      if (!st.ok()) {
        std::cerr << "hlsavc: " << st.to_string() << "\n";
        return 1;
      }
    }
    sim::RunResult r = simulator.run();
    print_run_status(r);
    metrics::ProfileReport rep = prof.report(&sm);
    std::cout << rep.render_table();
    std::string error;
    if (!metrics::write_chrome_trace_file(rep, args.trace_out, &error)) {
      std::cerr << "hlsavc: " << error << "\n";
      return 1;
    }
    std::cout << "chrome trace: " << args.trace_out
              << " (load in Perfetto or chrome://tracing)\n";
    if (!args.profile_json.empty()) {
      std::ofstream os(args.profile_json);
      if (!os) {
        std::cerr << "hlsavc: cannot write " << args.profile_json << "\n";
        return 1;
      }
      os << rep.to_json() << "\n";
      std::cout << "profile json: " << args.profile_json << "\n";
    }
    return run_exit_code(r);
  }
  if (args.command == "trace") {
    sim::ExternRegistry externs;
    trace::TraceConfig tc;
    tc.capacity = args.trace_capacity;
    tc.filter.processes = args.trace_procs;
    trace::TraceEngine engine(design, tc);

    sim::SimOptions so;
    so.mode = args.software_mode ? sim::SimMode::kSoftware : sim::SimMode::kHardware;
    so.ela = &engine;
    if (args.campaign_opts.max_cycles != 0) so.max_cycles = args.campaign_opts.max_cycles;
    arm_deadline(so);
    if (args.site != sim::FaultSpec::kNoSite) {
      std::vector<sim::FaultSpec> sites = sim::enumerate_fault_sites(design, schedule);
      if (args.site >= sites.size()) {
        std::cerr << "hlsavc: site " << args.site << " out of range (design has " << sites.size()
                  << " fault sites)\n";
        return 1;
      }
      so.mode = sim::SimMode::kHardware;
      so.faults.add(sites[args.site]);
      std::cout << "injecting s" << sites[args.site].id << ": "
                << sites[args.site].describe(design) << "\n";
    }
    arm_engine(so);
    sim::Simulator simulator(design, schedule, externs, so);
    report_engine(simulator);
    simulator.set_failure_sink([](const assertions::Failure& f) {
      std::cerr << f.message << "  [cycle " << f.cycle << "]\n";
    });
    for (const auto& [stream, values] : args.feeds) {
      Status st = simulator.try_feed(stream, values);
      if (!st.ok()) {
        std::cerr << "hlsavc: " << st.to_string() << "\n";
        return 1;
      }
    }
    sim::RunResult r = simulator.run();
    print_run_status(r);

    std::vector<trace::TraceRecord> window = engine.window();
    std::string vcd = args.vcd_path.empty() ? "trace.vcd" : args.vcd_path;
    trace::VcdWriter writer(design, tc.filter);
    writer.write_file(vcd, window);
    std::cout << "vcd: " << vcd << " (" << writer.signal_count() << " signals, " << window.size()
              << " events retained, " << engine.dropped() << " overwritten)\n";
    if (engine.capacity_clamped()) {
      std::cerr << "hlsavc: trace capacity clamped to " << engine.config().capacity
                << " entries/process (hard cap)\n";
    }
    if (!args.bin_path.empty()) {
      trace::write_binary_trace_file(args.bin_path, window);
      std::cout << "binary trace: " << args.bin_path << "\n";
    }
    trace::ReplayOptions ro;
    ro.last_cycles = args.last_cycles;
    ro.sm = &sm;
    std::cout << trace::render_replay(design, window, ro);
    std::cout << fpga::estimate_ela(engine).to_string(fpga::Device::ep2s180());
    return run_exit_code(r);
  }
  if (args.command == "faultsim") {
    sim::ExternRegistry externs;
    std::vector<sim::FaultSpec> sites = sim::enumerate_fault_sites(design, schedule);

    sim::TraceRerunOptions topt;
    topt.config.capacity = args.trace_capacity;
    topt.config.filter.processes = args.trace_procs;
    topt.dir = args.trace_dir;
    topt.last_cycles = args.last_cycles;
    topt.max_sites = args.trace_max_sites;
    topt.write_binary = true;
    topt.sm = &sm;

    if (args.campaign) {
      sim::CampaignOptions copt = args.campaign_opts;
      // The compiled engine serves the campaign's golden runs; faulted
      // sites arm fault injection, which the engine auto-declines, so
      // they interpret as before.
      arm_engine(copt.sim);
      // SIGINT/SIGTERM stop the sweep cooperatively: the in-flight site
      // finishes, its journal line is fsync'd, and we exit 6 with a
      // resume hint instead of tearing the journal mid-append.
      copt.cancel = &g_interrupted;
      std::signal(SIGINT, handle_interrupt);
      std::signal(SIGTERM, handle_interrupt);
      StatusOr<sim::CampaignReport> rep_or =
          sim::run_campaign_st(design, schedule, externs, args.feeds, copt);
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      if (!rep_or.ok()) {
        std::cerr << "hlsavc: " << rep_or.status().to_string() << "\n";
        return 1;
      }
      sim::CampaignReport rep = *std::move(rep_or);
      if (rep.interrupted) {
        std::cerr << "hlsavc: campaign interrupted by signal after " << rep.results.size()
                  << " classified site(s)";
        if (!copt.journal.empty()) {
          std::cerr << "; journal '" << copt.journal
                    << "' is flushed -- re-run with --resume to continue";
        }
        std::cerr << "\n";
        return 6;
      }
      std::cout << rep.render(design);
      if (args.trace_nonbenign) {
        std::vector<sim::TraceArtifact> arts =
            sim::trace_nonbenign_sites(design, schedule, externs, args.feeds, rep, copt, topt);
        std::cout << "traced " << arts.size() << " non-benign site(s) into " << args.trace_dir
                  << "/\n";
        for (const sim::TraceArtifact& art : arts) {
          std::cout << "--- " << art.vcd_path << " ---\n" << art.replay;
        }
      }
      return 0;
    }

    if (args.trace_site != sim::FaultSpec::kNoSite) {
      if (args.trace_site >= sites.size()) {
        std::cerr << "hlsavc: site " << args.trace_site << " out of range (design has "
                  << sites.size() << " fault sites)\n";
        return 1;
      }
      // Classify the one site against the golden run, then re-run it
      // with the ELA armed -- the same path --campaign --trace-nonbenign
      // takes, for a single site.
      sim::CampaignOptions copt = args.campaign_opts;
      arm_engine(copt.sim);
      sim::GoldenRef golden =
          sim::golden_run(design, schedule, externs, args.feeds, copt.sim);
      std::uint64_t max_cycles = copt.max_cycles != 0
                                     ? copt.max_cycles
                                     : std::max<std::uint64_t>(10'000, 16 * golden.cycles);
      sim::CampaignReport rep;
      rep.results.push_back(sim::run_fault(design, schedule, externs, args.feeds, golden,
                                           sites[args.trace_site], copt.sim, max_cycles));
      std::cout << "injecting s" << sites[args.trace_site].id << ": "
                << sites[args.trace_site].describe(design) << "\n";
      std::vector<sim::TraceArtifact> arts =
          sim::trace_nonbenign_sites(design, schedule, externs, args.feeds, rep, copt, topt);
      if (arts.empty()) {
        std::cout << "site s" << sites[args.trace_site].id
                  << " is benign (outputs match golden); no trace emitted\n";
        return 0;
      }
      for (const sim::TraceArtifact& art : arts) {
        std::cout << "vcd: " << art.vcd_path << "\n";
        if (!art.bin_path.empty()) std::cout << "binary trace: " << art.bin_path << "\n";
        std::cout << art.replay;
      }
      return 0;
    }

    if (args.site != sim::FaultSpec::kNoSite) {
      if (args.site >= sites.size()) {
        std::cerr << "hlsavc: site " << args.site << " out of range (design has " << sites.size()
                  << " fault sites)\n";
        return 1;
      }
      const sim::FaultSpec& fault = sites[args.site];
      std::cout << "injecting s" << fault.id << ": " << fault.describe(design) << "\n";
      sim::SimOptions so;
      so.mode = sim::SimMode::kHardware;  // faults model circuit behaviour
      so.trace = args.trace;
      if (args.campaign_opts.max_cycles != 0) so.max_cycles = args.campaign_opts.max_cycles;
      so.faults.add(fault);
      arm_deadline(so);
      arm_engine(so);
      sim::Simulator simulator(design, schedule, externs, so);
      report_engine(simulator);
      simulator.set_failure_sink([](const assertions::Failure& f) {
        std::cerr << f.message << "  [cycle " << f.cycle << "]\n";
      });
      for (const auto& [stream, values] : args.feeds) {
        Status st = simulator.try_feed(stream, values);
        if (!st.ok()) {
          std::cerr << "hlsavc: " << st.to_string() << "\n";
          return 1;
        }
      }
      sim::RunResult r = simulator.run();
      print_run_status(r);
      for (const ir::Stream& s : design.streams) {
        if (s.dead || s.consumer.kind != ir::StreamEndpoint::Kind::kCpu) continue;
        if (s.role != ir::StreamRole::kData) continue;
        std::vector<std::uint64_t> out = simulator.received(s.name);
        if (out.empty()) continue;
        std::cout << s.name << ":";
        for (std::uint64_t v : out) std::cout << ' ' << v;
        std::cout << '\n';
      }
      if (args.trace) std::cerr << simulator.render_trace(&sm);
      return run_exit_code(r);
    }

    TextTable t("fault sites: " + design.name + " (" + std::to_string(sites.size()) + ")");
    t.header({"site", "kind", "description"});
    for (const sim::FaultSpec& f : sites) {
      std::string site = "s";
      site += std::to_string(f.id);
      t.row({site, sim::fault_kind_name(f.kind), f.describe(design)});
    }
    std::cout << t.render();
    return 0;
  }
  if (args.command == "mine") {
    sim::ExternRegistry externs;

    // ---- golden window: recorded file or live capture ----
    std::vector<trace::TraceRecord> window;
    if (!args.trace_in.empty()) {
      StatusOr<std::vector<trace::TraceRecord>> w = trace::read_trace_file(args.trace_in);
      if (!w.ok()) {
        std::cerr << "hlsavc: " << w.status().to_string() << "\n";
        return 1;
      }
      Status valid = trace::validate_window(design, *w);
      if (!valid.ok()) {
        std::cerr << "hlsavc: '" << args.trace_in
                  << "' does not describe this design: " << valid.to_string() << "\n";
        return 1;
      }
      window = *std::move(w);
      std::cout << "trace window: " << args.trace_in << " (" << window.size()
                << " record(s))\n";
    } else {
      trace::TraceConfig tc;
      // Mining wants the whole run, not a crash-triage tail; default far
      // above the trace command's ring size unless the user chose one.
      tc.capacity = args.trace_capacity_set ? args.trace_capacity : std::size_t{1} << 16;
      trace::TraceEngine engine(design, tc);
      sim::SimOptions so;
      so.mode = sim::SimMode::kSoftware;  // pre-synthesis run, asserts in place
      so.ela = &engine;
      if (args.campaign_opts.max_cycles != 0) so.max_cycles = args.campaign_opts.max_cycles;
      arm_deadline(so);
      sim::Simulator simulator(design, schedule, externs, so);
      simulator.set_failure_sink([](const assertions::Failure& f) {
        std::cerr << f.message << "  [cycle " << f.cycle << "]\n";
      });
      for (const auto& [stream, values] : args.feeds) {
        Status st = simulator.try_feed(stream, values);
        if (!st.ok()) {
          std::cerr << "hlsavc: " << st.to_string() << "\n";
          return 1;
        }
      }
      sim::RunResult r = simulator.run();
      if (r.status != sim::RunStatus::kCompleted || !r.failures.empty()) {
        std::cerr << "hlsavc: the golden run must complete cleanly before anything can "
                     "be mined from it\n";
        print_run_status(r);
        int code = run_exit_code(r);
        return code == 0 ? 3 : code;
      }
      window = engine.window();
      if (engine.dropped() != 0) {
        std::cerr << "hlsavc: capture overwrote " << engine.dropped()
                  << " event(s); mined bounds only see the retained window "
                     "(raise --trace-capacity)\n";
      }
      std::cout << "trace window: golden run, " << r.cycles << " cycles, " << window.size()
                << " record(s)\n";
    }

    // ---- mine -> score ----
    mine::MineOptions mopt;
    mopt.min_support = args.min_support;
    mine::MineResult mined = mine::mine_invariants(design, window, mopt);
    std::cout << "mined " << mined.candidates.size() << " candidate(s) from "
              << mined.records << " record(s) (" << mined.reg_signals
              << " register signal(s), " << mined.stream_signals << " stream side(s))\n";
    if (mined.candidates.empty()) return 0;

    mine::ScoreOptions sopt;
    sopt.assert_opts = args.assert_opts;
    sopt.sched = args.sched_opts;
    sopt.seed = args.campaign_opts.seed;
    sopt.max_faults = args.campaign_opts.max_faults;
    sopt.max_cycles = args.campaign_opts.max_cycles;
    sopt.threads = args.campaign_opts.threads;
    sopt.max_candidates = args.mine_candidates;
    sopt.sm = &sm;
    StatusOr<mine::ScoreReport> rep =
        mine::score_candidates(design, externs, args.feeds, mined.candidates, sopt);
    if (!rep.ok()) {
      std::cerr << "hlsavc: " << rep.status().to_string() << "\n";
      return 1;
    }
    std::cout << rep->render();

    // ---- --emit: write the top-K back into the source ----
    if (!args.emit_path.empty()) {
      std::ifstream is(args.file, std::ios::binary);
      if (!is) {
        std::cerr << "hlsavc: cannot reread " << args.file << "\n";
        return 1;
      }
      std::ostringstream buf;
      buf << is.rdbuf();
      mine::EmitResult er = mine::emit_assertions(buf.str(), design, rep->ranked,
                                                  args.mine_top);
      // The emitted program must still compile -- with assertion
      // synthesis on, so every inserted assert goes through the real
      // checker path -- before it is allowed to replace anything.
      SourceManager vsm;
      DiagnosticEngine vdiags(&vsm);
      pipeline::CompileOptions vopts = copts;
      vopts.synthesize_assertions = true;
      StatusOr<pipeline::Compiled> check =
          pipeline::compile_source(vsm, vdiags, args.emit_path, er.source, vopts);
      if (!check.ok()) {
        std::cerr << vdiags.render();
        std::cerr << "hlsavc: emitted source does not recompile ("
                  << check.status().to_string() << "); nothing written\n";
        return 1;
      }
      std::ofstream os(args.emit_path, std::ios::binary);
      if (!os) {
        std::cerr << "hlsavc: cannot write " << args.emit_path << "\n";
        return 1;
      }
      os << er.source;
      std::cout << "emitted " << er.emitted << " assertion(s) into " << args.emit_path
                << " (recompile: " << check->synth.to_string() << ")\n";
      for (const std::string& s : er.skipped) std::cout << "  skipped " << s << "\n";
    }
    return 0;
  }
  std::cerr << "unknown command: " << args.command << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h")) {
    print_usage(std::cout);
    return 0;
  }
  if (argc >= 2 && std::string(argv[1]) == "--version") {
    std::cout << "hlsavc " << HLSAV_GIT_SHA << " (" << HLSAV_BUILD_TYPE << ")\n";
    return 0;
  }
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    return run(args);
  } catch (const InternalError& e) {
    std::cerr << "hlsavc: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Residual backstop: no input may crash the driver. Anything that
    // escapes the Status-carrying pipeline still exits with a rendered
    // diagnostic and the documented code.
    std::cerr << "hlsavc: internal error: " << e.what() << "\n";
    return 1;
  }
}
