// hlsavd -- the crash-contained fault-campaign service.
//
//   hlsavd serve    --socket=PATH [options]   run the daemon
//   hlsavd submit   --socket=PATH --design=FILE [options]
//                                             submit a campaign, stream
//                                             progress, print the report
//   hlsavd watch    --socket=PATH --job=N     attach to a job: snapshot,
//                                             then its live frame stream
//   hlsavd status   --socket=PATH             daemon status (aggregate +
//                                             queue depths + worker tallies)
//   hlsavd metrics  --socket=PATH             one-shot JSON metrics snapshot
//   hlsavd trace-out --socket=PATH --job=N    Chrome trace JSON of the
//                                             job's span tree (0 = all jobs)
//   hlsavd shutdown --socket=PATH             graceful daemon shutdown
//   hlsavd worker   ...                       internal: one journal shard
//                                             of one campaign (spawned by
//                                             the supervisor, not by hand)
//
// serve options:
//   --queue-cap=N            bounded job queue; a full queue rejects with
//                            a typed error (default 4)
//   --jobs=N                 concurrent campaigns (default 1)
//   --workers=N              default worker subprocesses per job (default 2)
//   --quarantine-cap=N       crashes one site may cause before it is
//                            classified worker-crashed (default 3)
//   --heartbeat-timeout-ms=N SIGKILL a silent worker after N ms; 0 off
//                            (default 10000)
//   --work-dir=DIR           shard journals land in DIR/job_<id>/
//   --events-out=FILE        append-only JSONL event log (monotonic seq,
//                            ts_ms since daemon start)
//   --spool-dir=DIR          write-ahead job spool (default
//                            WORK_DIR/spool); a restarted daemon
//                            re-adopts every unfinished spooled job
//   --no-spool               disable the spool: jobs are in-memory
//                            only, exactly the pre-spool behaviour
//   --die-at=PHASE           test-only crash injection: SIGKILL the
//                            daemon the first time it reaches PHASE
//                            (accept | spooled | shard-spawned |
//                            pre-merge | pre-done); a durable token in
//                            WORK_DIR makes the restart immune
//
// watch options:
//   --job=N                  the job to attach to
//   --wait-ms=T              retry an unknown job id for T ms (a watcher
//                            racing its own submit)
//   --stall-reads-ms=T       test hook: sleep T ms before reading frames
//                            (deliberately slow subscriber)
//   --out=FILE --quiet       report destination / suppress narration
//
// submit options:
//   --design=FILE --feed stream=v1,v2,... --assertions=MODE --seed=N
//   --max-faults=N --max-cycles=N --site-wall-ms=N --workers=N
//   --priority=N --out=FILE --quiet
//   --crash-at-site=N --crash-limit=K --stall-at-site=N
//                            test-only worker fault schedule (documented
//                            for the kill tests; compiled in always)
//   --key=K                  idempotency key: resubmitting the same
//                            key+spec never double-runs -- the daemon
//                            returns the original job (replaying its
//                            report if already done)
//   --retry[=N]              retry a refused/aborted submit up to N
//                            times (default 5) with capped exponential
//                            backoff; auto-generates a key when none
//                            was given so retries stay idempotent
//   --retry-base-ms=T        first backoff delay (default 200ms)
//   --deadline-ms=T          give up if the job is still queued T ms
//                            after accept; the daemon marks it
//                            deadline-expired (exit 8), never runs it
//
// Exit codes: 0 ok, 1 error, 2 bad usage,
//             6 job drained (daemon shut down mid-job; shard journals
//               are flushed and resumable),
//             7 rejected (back-pressure or validation) -- typed, resubmit
//               later,
//             8 deadline-expired (--deadline-ms passed while queued).
// Worker exit codes (internal contract with the supervisor): 0 shard
// complete, 1 error, 21 drained on SIGTERM after flushing the journal.
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/compile.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "sim/campaign.h"
#include "support/str.h"

#ifndef HLSAV_GIT_SHA
#define HLSAV_GIT_SHA "unknown"
#endif
#ifndef HLSAV_BUILD_TYPE
#define HLSAV_BUILD_TYPE "unspecified"
#endif

namespace {

using namespace hlsav;

constexpr int kWorkerDrainedExit = 21;

std::atomic<bool> g_cancel{false};

void handle_signal(int) { g_cancel.store(true, std::memory_order_relaxed); }

bool parse_u64_flag(std::string_view text, std::uint64_t& out) {
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && p == text.data() + text.size() && !text.empty();
}

bool parse_u32_flag(std::string_view text, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64_flag(text, v) || v > std::numeric_limits<std::uint32_t>::max()) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_unsigned_flag(std::string_view text, unsigned& out) {
  std::uint64_t v = 0;
  if (!parse_u64_flag(text, v) || v > std::numeric_limits<unsigned>::max()) return false;
  out = static_cast<unsigned>(v);
  return true;
}

bool parse_double_flag(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

void print_usage(std::ostream& os) {
  os << "usage: hlsavd serve    --socket=PATH [--queue-cap=N --jobs=N --workers=N\n"
        "                        --quarantine-cap=N --heartbeat-timeout-ms=N --work-dir=DIR\n"
        "                        --events-out=FILE --spool-dir=DIR --no-spool --die-at=PHASE]\n"
        "       hlsavd submit   --socket=PATH --design=FILE [--feed stream=v1,v2,...\n"
        "                        --assertions=MODE --seed=N --max-faults=N --max-cycles=N\n"
        "                        --site-wall-ms=N --workers=N --priority=N --out=FILE --quiet\n"
        "                        --key=K --retry[=N] --retry-base-ms=T --deadline-ms=T\n"
        "                        --crash-at-site=N --crash-limit=K --stall-at-site=N]\n"
        "       hlsavd watch    --socket=PATH --job=N [--wait-ms=T --stall-reads-ms=T\n"
        "                        --out=FILE --quiet]\n"
        "       hlsavd status   --socket=PATH\n"
        "       hlsavd metrics  --socket=PATH\n"
        "       hlsavd trace-out --socket=PATH --job=N [--out=FILE]   (job 0 = all jobs)\n"
        "       hlsavd shutdown --socket=PATH\n"
        "       hlsavd --version\n"
        "exit codes: 0 ok, 1 error, 2 bad usage, 6 job drained by daemon\n"
        "            shutdown (journals resumable), 7 rejected (typed\n"
        "            back-pressure; resubmit later), 8 deadline-expired\n"
        "            (--deadline-ms passed while the job was queued)\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

/// The running binary's own path: workers must be the exact same build
/// as the supervisor or simulation determinism (and therefore shard
/// byte-identity) is void.
std::string self_binary(const char* argv0) {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

// ------------------------------------------------------------- worker --

/// Reads the decimal trigger count in `path` (0 when absent/garbled).
std::uint32_t read_token_count(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  unsigned long count = 0;
  if (std::fscanf(f, "%lu", &count) != 1) count = 0;
  std::fclose(f);
  return static_cast<std::uint32_t>(count);
}

/// Durably bumps the trigger count: the token must survive the SIGKILL
/// this process is about to deliver to itself, or the site would crash
/// its worker on every respawn forever.
void write_token_count(const std::string& path, std::uint32_t count) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return;
  std::string text = std::to_string(count);
  (void)!::write(fd, text.data(), text.size());
  (void)::fsync(fd);
  (void)::close(fd);
}

struct WorkerArgs {
  std::string design;
  std::string journal;
  std::vector<std::uint32_t> sites;
  std::uint64_t seed = 1;
  std::uint64_t max_faults = 0;
  std::uint64_t max_cycles = 0;
  std::uint64_t golden_cycles = 0;
  double site_wall_ms = 0.0;
  std::string assertions = "optimized";
  std::string feed_spec;
  std::string fault_token_dir;
  std::uint32_t crash_limit = 1;
  std::set<std::uint32_t> crash_at;
  std::set<std::uint32_t> stall_at;
};

int run_worker(const WorkerArgs& args) {
  if (args.design.empty() || args.journal.empty() || args.sites.empty()) return usage();

  // SIGTERM = drain: finish (and journal) the in-flight site, then exit
  // 21 so the supervisor knows this was a flush, not a crash.
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  SourceManager sm;
  DiagnosticEngine diags(&sm);
  pipeline::CompileOptions copts;
  if (args.assertions == "ndebug") {
    copts.assert_opts = assertions::Options::ndebug();
  } else if (args.assertions == "unoptimized") {
    copts.assert_opts = assertions::Options::unoptimized();
  } else if (args.assertions != "optimized") {
    std::cerr << "hlsavd worker: unknown assertions mode '" << args.assertions << "'\n";
    return 2;
  }
  StatusOr<pipeline::Compiled> compiled = pipeline::compile_file(sm, diags, args.design, copts);
  if (!compiled.ok()) {
    std::cerr << diags.render();
    std::cerr << "hlsavd worker: " << compiled.status().to_string() << "\n";
    return 1;
  }

  StatusOr<std::map<std::string, std::vector<std::uint64_t>>> feeds =
      serve::parse_feed_spec(args.feed_spec);
  if (!feeds.ok()) {
    std::cerr << "hlsavd worker: " << feeds.status().to_string() << "\n";
    return 1;
  }

  sim::CampaignOptions copt;
  copt.seed = args.seed;
  copt.max_faults = args.max_faults;
  copt.max_cycles = args.max_cycles;
  copt.threads = 1;
  copt.site_wall_ms = args.site_wall_ms;
  copt.journal = args.journal;
  copt.resume = true;  // a respawned worker continues its own shard
  copt.only_sites = args.sites;
  copt.cancel = &g_cancel;
  // Heartbeats: one line the moment a site starts (the supervisor's
  // blame target if this process dies) and one once it is durably
  // journaled. fflush after each -- a SIGKILL must not eat them.
  copt.site_start_hook = [&](std::uint32_t site) {
    std::fputs((serve::encode_worker_starting(site) + "\n").c_str(), stdout);
    std::fflush(stdout);
    if (!args.fault_token_dir.empty()) {
      if (args.crash_at.count(site) != 0) {
        std::string token = args.fault_token_dir + "/crash_" + std::to_string(site) + ".token";
        std::uint32_t count = read_token_count(token);
        if (count < args.crash_limit) {
          write_token_count(token, count + 1);
          // True kill -9 semantics: no atexit, no stack unwind, no
          // journal flush beyond what already hit disk.
          (void)::raise(SIGKILL);
        }
      }
      if (args.stall_at.count(site) != 0) {
        std::string token = args.fault_token_dir + "/stall_" + std::to_string(site) + ".token";
        if (read_token_count(token) < 1) {
          write_token_count(token, 1);
          // Stall forever: heartbeat watchdog fodder. The supervisor's
          // SIGKILL is the only way out.
          for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
        }
      }
    }
  };
  copt.site_sink = [](const sim::FaultResult& r) {
    std::fputs(
        (serve::encode_worker_site(r.site.id, sim::fault_outcome_name(r.outcome)) + "\n").c_str(),
        stdout);
    std::fflush(stdout);
  };

  sim::ExternRegistry externs;
  StatusOr<sim::CampaignReport> report = sim::run_campaign_st(
      compiled->design, compiled->schedule, externs, *feeds, copt);
  if (!report.ok()) {
    std::cerr << "hlsavd worker: " << report.status().to_string() << "\n";
    return 1;
  }
  if (args.golden_cycles != 0 && report->golden_cycles != args.golden_cycles) {
    std::cerr << "hlsavd worker: golden run took " << report->golden_cycles
              << " cycles but the supervisor measured " << args.golden_cycles
              << " -- nondeterministic simulation, refusing to journal\n";
    return 1;
  }
  return report->interrupted ? kWorkerDrainedExit : 0;
}

// -------------------------------------------------------------- serve --

serve::Service* g_service = nullptr;

void handle_serve_signal(int) {
  if (g_service != nullptr) g_service->shutdown_flag().store(true, std::memory_order_relaxed);
}

int run_serve(const serve::ServiceOptions& opt) {
  StatusOr<std::unique_ptr<serve::Service>> service = serve::Service::start(opt);
  if (!service.ok()) {
    std::cerr << "hlsavd: " << service.status().to_string() << "\n";
    return 1;
  }
  g_service = service->get();
  std::signal(SIGTERM, handle_serve_signal);
  std::signal(SIGINT, handle_serve_signal);
  std::cerr << "hlsavd: listening on " << opt.socket_path << "\n";
  Status st = (*service)->serve();
  g_service = nullptr;
  if (!st.ok()) {
    std::cerr << "hlsavd: " << st.to_string() << "\n";
    return 1;
  }
  std::cerr << "hlsavd: drained and shut down\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h")) {
    print_usage(std::cout);
    return 0;
  }
  if (argc >= 2 && std::string(argv[1]) == "--version") {
    std::cout << "hlsavd " << HLSAV_GIT_SHA << " (" << HLSAV_BUILD_TYPE << ")\n";
    return 0;
  }
  if (argc < 2) return usage();
  std::string command = argv[1];

  std::string socket_path;
  serve::ServiceOptions sopt;
  serve::CampaignSpec spec;
  WorkerArgs wargs;
  std::string out_path;
  bool quiet = false;
  bool no_spool = false;
  serve::SubmitOptions subopt;
  std::vector<std::string> feed_parts;
  std::uint64_t watch_job_id = 0;
  bool have_job_id = false;
  serve::WatchOptions wopt;

  auto bad_value = [](const std::string& flag) {
    std::cerr << "hlsavd: bad value for " << flag << "\n";
    return false;
  };
  auto parse = [&](int i, char** argv_) -> bool {
    std::string a = argv_[i];
    auto val = [&](const char* prefix) { return a.substr(std::strlen(prefix)); };
    if (a.rfind("--socket=", 0) == 0) {
      socket_path = val("--socket=");
    } else if (a.rfind("--queue-cap=", 0) == 0) {
      std::uint64_t v = 0;
      if (!parse_u64_flag(val("--queue-cap="), v) || v == 0) return bad_value(a);
      sopt.queue_cap = static_cast<std::size_t>(v);
    } else if (a.rfind("--jobs=", 0) == 0) {
      if (!parse_unsigned_flag(val("--jobs="), sopt.executors) || sopt.executors == 0) {
        return bad_value(a);
      }
    } else if (a.rfind("--workers=", 0) == 0) {
      unsigned v = 0;
      if (!parse_unsigned_flag(val("--workers="), v)) return bad_value(a);
      sopt.default_workers = std::max(1u, v);
      spec.workers = v;
    } else if (a.rfind("--quarantine-cap=", 0) == 0) {
      if (!parse_unsigned_flag(val("--quarantine-cap="), sopt.quarantine_cap) ||
          sopt.quarantine_cap == 0) {
        return bad_value(a);
      }
    } else if (a.rfind("--heartbeat-timeout-ms=", 0) == 0) {
      if (!parse_double_flag(val("--heartbeat-timeout-ms="), sopt.heartbeat_timeout_ms)) {
        return bad_value(a);
      }
    } else if (a.rfind("--backoff-base-ms=", 0) == 0) {
      if (!parse_u64_flag(val("--backoff-base-ms="), sopt.backoff_base_ms)) return bad_value(a);
    } else if (a.rfind("--backoff-cap-ms=", 0) == 0) {
      if (!parse_u64_flag(val("--backoff-cap-ms="), sopt.backoff_cap_ms)) return bad_value(a);
    } else if (a.rfind("--work-dir=", 0) == 0) {
      sopt.work_dir = val("--work-dir=");
    } else if (a.rfind("--design=", 0) == 0) {
      spec.design_path = val("--design=");
      wargs.design = spec.design_path;
    } else if (a.rfind("--journal=", 0) == 0) {
      wargs.journal = val("--journal=");
    } else if (a.rfind("--sites=", 0) == 0) {
      for (const std::string& tok : split(val("--sites="), ',')) {
        std::uint32_t id = 0;
        if (!parse_u32_flag(tok, id)) return bad_value(a);
        wargs.sites.push_back(id);
      }
    } else if (a.rfind("--seed=", 0) == 0) {
      if (!parse_u64_flag(val("--seed="), spec.seed)) return bad_value(a);
      wargs.seed = spec.seed;
    } else if (a.rfind("--max-faults=", 0) == 0) {
      if (!parse_u64_flag(val("--max-faults="), spec.max_faults)) return bad_value(a);
      wargs.max_faults = spec.max_faults;
    } else if (a.rfind("--max-cycles=", 0) == 0) {
      if (!parse_u64_flag(val("--max-cycles="), spec.max_cycles)) return bad_value(a);
      wargs.max_cycles = spec.max_cycles;
    } else if (a.rfind("--golden-cycles=", 0) == 0) {
      if (!parse_u64_flag(val("--golden-cycles="), wargs.golden_cycles)) return bad_value(a);
    } else if (a.rfind("--site-wall-ms=", 0) == 0) {
      if (!parse_double_flag(val("--site-wall-ms="), spec.site_wall_ms)) return bad_value(a);
      wargs.site_wall_ms = spec.site_wall_ms;
    } else if (a.rfind("--assertions=", 0) == 0) {
      spec.assertions = val("--assertions=");
      wargs.assertions = spec.assertions;
    } else if (a.rfind("--feed=", 0) == 0) {
      feed_parts.push_back(val("--feed="));
    } else if (a.rfind("--priority=", 0) == 0) {
      std::string v = val("--priority=");
      errno = 0;
      char* end = nullptr;
      long prio = std::strtol(v.c_str(), &end, 10);
      if (end != v.c_str() + v.size() || v.empty() || errno != 0) return bad_value(a);
      spec.priority = static_cast<int>(prio);
    } else if (a.rfind("--crash-at-site=", 0) == 0) {
      std::uint32_t id = 0;
      if (!parse_u32_flag(val("--crash-at-site="), id)) return bad_value(a);
      spec.crash_at.push_back(id);
      wargs.crash_at.insert(id);
    } else if (a.rfind("--crash-limit=", 0) == 0) {
      if (!parse_u32_flag(val("--crash-limit="), spec.crash_limit)) return bad_value(a);
      wargs.crash_limit = spec.crash_limit;
    } else if (a.rfind("--stall-at-site=", 0) == 0) {
      std::uint32_t id = 0;
      if (!parse_u32_flag(val("--stall-at-site="), id)) return bad_value(a);
      spec.stall_at.push_back(id);
      wargs.stall_at.insert(id);
    } else if (a.rfind("--fault-token-dir=", 0) == 0) {
      wargs.fault_token_dir = val("--fault-token-dir=");
    } else if (a.rfind("--events-out=", 0) == 0) {
      sopt.events_out = val("--events-out=");
    } else if (a.rfind("--spool-dir=", 0) == 0) {
      sopt.spool_dir = val("--spool-dir=");
    } else if (a == "--no-spool") {
      no_spool = true;
    } else if (a.rfind("--die-at=", 0) == 0) {
      sopt.die_at = val("--die-at=");
    } else if (a.rfind("--key=", 0) == 0) {
      spec.key = val("--key=");
    } else if (a.rfind("--deadline-ms=", 0) == 0) {
      if (!parse_u64_flag(val("--deadline-ms="), spec.deadline_ms)) return bad_value(a);
    } else if (a == "--retry") {
      subopt.retries = 5;
    } else if (a.rfind("--retry=", 0) == 0) {
      std::uint64_t v = 0;
      if (!parse_u64_flag(val("--retry="), v) || v > 1000) return bad_value(a);
      subopt.retries = static_cast<int>(v);
    } else if (a.rfind("--retry-base-ms=", 0) == 0) {
      if (!parse_u64_flag(val("--retry-base-ms="), subopt.retry_base_ms) ||
          subopt.retry_base_ms == 0) {
        return bad_value(a);
      }
    } else if (a.rfind("--job=", 0) == 0) {
      if (!parse_u64_flag(val("--job="), watch_job_id)) return bad_value(a);
      have_job_id = true;
    } else if (a.rfind("--wait-ms=", 0) == 0) {
      unsigned v = 0;
      if (!parse_unsigned_flag(val("--wait-ms="), v)) return bad_value(a);
      wopt.wait_ms = static_cast<int>(v);
    } else if (a.rfind("--stall-reads-ms=", 0) == 0) {
      unsigned v = 0;
      if (!parse_unsigned_flag(val("--stall-reads-ms="), v)) return bad_value(a);
      wopt.stall_reads_ms = static_cast<int>(v);
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = val("--out=");
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "hlsavd: unknown option " << a << "\n";
      return false;
    }
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    // --feed with a separate value argument, hlsavc-style.
    if (std::string(argv[i]) == "--feed" && i + 1 < argc) {
      feed_parts.push_back(argv[++i]);
      continue;
    }
    if (!parse(i, argv)) return usage();
  }
  spec.feeds = join(feed_parts, ";");
  wargs.feed_spec = spec.feeds;

  try {
    if (command == "worker") return run_worker(wargs);
    if (command == "serve") {
      if (socket_path.empty()) return usage();
      sopt.socket_path = socket_path;
      sopt.worker_binary = self_binary(argv[0]);
      // The spool defaults on (WORK_DIR/spool); --no-spool wins over an
      // explicit --spool-dir so wrapper scripts can force it off.
      if (sopt.spool_dir.empty()) sopt.spool_dir = sopt.work_dir + "/spool";
      if (no_spool) sopt.spool_dir.clear();
      return run_serve(sopt);
    }
    if (command == "submit") {
      if (socket_path.empty() || spec.design_path.empty()) return usage();
      subopt.out_path = out_path;
      subopt.quiet = quiet;
      return serve::submit_job(socket_path, spec, subopt);
    }
    if (command == "watch") {
      if (socket_path.empty() || !have_job_id || watch_job_id == 0) return usage();
      wopt.out_path = out_path;
      wopt.quiet = quiet;
      return serve::watch_job(socket_path, watch_job_id, wopt);
    }
    if (command == "metrics") {
      if (socket_path.empty()) return usage();
      StatusOr<std::string> snap = serve::query_metrics(socket_path);
      if (!snap.ok()) {
        std::cerr << "hlsavd: " << snap.status().to_string() << "\n";
        return 1;
      }
      std::cout << *snap << "\n";
      return 0;
    }
    if (command == "trace-out") {
      if (socket_path.empty() || !have_job_id) return usage();
      StatusOr<std::string> trace = serve::fetch_trace(socket_path, watch_job_id);
      if (!trace.ok()) {
        std::cerr << "hlsavd: " << trace.status().to_string() << "\n";
        return 1;
      }
      if (out_path.empty()) {
        std::cout << *trace;
      } else {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
          std::cerr << "hlsavd: cannot open " << out_path << "\n";
          return 1;
        }
        out << *trace;
      }
      return 0;
    }
    if (command == "status") {
      if (socket_path.empty()) return usage();
      StatusOr<std::string> status = serve::query_status(socket_path);
      if (!status.ok()) {
        std::cerr << "hlsavd: " << status.status().to_string() << "\n";
        return 1;
      }
      std::cout << *status << "\n";
      return 0;
    }
    if (command == "shutdown") {
      if (socket_path.empty()) return usage();
      Status st = serve::request_shutdown(socket_path);
      if (!st.ok()) {
        std::cerr << "hlsavd: " << st.to_string() << "\n";
        return 1;
      }
      return 0;
    }
  } catch (const InternalError& e) {
    std::cerr << "hlsavd: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "hlsavd: internal error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "hlsavd: unknown command '" << command << "'\n";
  return usage();
}
